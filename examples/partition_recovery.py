#!/usr/bin/env python3
"""Partitions and graceful degradation (paper S2.7, Requirement 4).

REBOUND cannot promise global consistency when the adversary partitions
the network -- no protocol can.  Its weaker guarantee: within bounded time,
every correct node either receives the evidence or concludes the issuer is
unreachable, so *each partition knows its own extent* and makes local
decisions independently.

This example builds a barbell topology (two controller clusters joined by
two bridge links), cuts both bridges, and shows each side settling into a
mode that keeps the flows whose sensors and actuators it can still reach.

It also contrasts REBOUND's f+1 replication with the PBFT baseline, which
simply stalls when a partition denies it a 2f+1 quorum.

Run:  python examples/partition_recovery.py
"""

from repro.bft.pbft import PBFTCluster
from repro.core import ReboundConfig, ReboundSystem
from repro.net.topology import ROLE_ACTUATOR, ROLE_SENSOR, Topology
from repro.sched.task import CRITICALITY_HIGH, CRITICALITY_MEDIUM, MS, Flow, Task, Workload


def barbell_topology() -> Topology:
    """Controllers 0-2 (west) and 3-5 (east), bridged by 2-3 and 1-4.

    Each side has its own sensor and actuator.
    """
    topo = Topology()
    for i in range(6):
        topo.add_node(i)
    topo.add_node(6, role=ROLE_SENSOR, name="S-west")
    topo.add_node(7, role=ROLE_ACTUATOR, name="A-west")
    topo.add_node(8, role=ROLE_SENSOR, name="S-east")
    topo.add_node(9, role=ROLE_ACTUATOR, name="A-east")
    for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3), (1, 4)]:
        topo.add_link(a, b)
    topo.add_bus([6, 7, 0, 1, 2], name="west-bus")
    topo.add_bus([8, 9, 3, 4, 5], name="east-bus")
    return topo


def barbell_workload() -> Workload:
    def task(tid, fid):
        return Task(task_id=tid, flow_id=fid, name=f"T{tid}",
                    period_us=40 * MS, wcet_us=8 * MS, deadline_us=40 * MS)

    west = Flow(flow_id=0, name="west-control", criticality=CRITICALITY_HIGH,
                tasks=(task(1, 0),), sensors=(6,), actuators=(7,))
    east = Flow(flow_id=1, name="east-control", criticality=CRITICALITY_MEDIUM,
                tasks=(task(2, 1),), sensors=(8,), actuators=(9,))
    return Workload([west, east])


def main() -> None:
    topo = barbell_topology()
    config = ReboundConfig(fmax=2, fconc=1, variant="multi", rsa_bits=256)
    system = ReboundSystem(topo, barbell_workload(), config, seed=1)

    print("Warm-up: both flows running across the barbell...")
    system.run(12)
    print(f"  modes: {dict(system.mode_census())}")

    print(f"\nRound {system.round_no}: cutting both bridge links (2-3, 1-4)")
    system.cut_link_now(2, 3)
    system.cut_link_now(1, 4)
    system.run(14)

    print("  per-node failure patterns after stabilization:")
    for node_id in system.correct_controllers():
        node = system.nodes[node_id]
        pattern = node.fault_pattern
        schedule = node.current_schedule
        active = sorted(
            system.workload.flows[f].name for f in schedule.active_flows
        )
        print(f"   node {node_id}: links_out={sorted(pattern.links)} "
              f"active flows={active}")

    west_nodes = [0, 1, 2]
    east_nodes = [3, 4, 5]
    west_active = {
        f for n in west_nodes
        for f in system.nodes[n].current_schedule.active_flows
    }
    east_active = {
        f for n in east_nodes
        for f in system.nodes[n].current_schedule.active_flows
    }
    print(f"\n  west side keeps flow(s): "
          f"{sorted(system.workload.flows[f].name for f in west_active)}")
    print(f"  east side keeps flow(s): "
          f"{sorted(system.workload.flows[f].name for f in east_active)}")
    print("  -> each partition keeps serving what it can reach; neither "
          "blocks waiting for the other.")

    print("\nThe PBFT baseline under the same stress (f=1, so n=4, "
          "quorum 3): partition 2+2 and it stalls:")
    cluster = PBFTCluster(f=1, view_change_timeout=3)
    cluster.crash(2)
    cluster.crash(3)  # a 2-replica "partition" has no 2f+1 quorum
    rid = cluster.submit(b"west-command")
    cluster.run(20)
    print(f"   request executed by the surviving pair: "
          f"{cluster.all_executed(rid)} (masking needs the quorum REBOUND "
          f"deliberately does without)")


if __name__ == "__main__":
    main()
