#!/usr/bin/env python3
"""The Fig. 1/11 chemical plant in closed loop, under a Byzantine attack.

A reactor vessel is regulated by four flows (pressure alarm, burner
control, valve control, telemetry monitor) running on four controllers.
The adversary compromises N4 and feeds random data to its downstream tasks
-- the paper's testbed attack, worst-case for latency because only a
deterministic-replay audit can catch it.

Watch: the actuator signals get disrupted, the replica audit produces a
proof of misbehavior, every node independently switches modes, the plant
recovers within ~5 rounds (~200 ms), and the reactor never gets anywhere
near its alarm threshold -- thermal inertia is the BTR window.

Run:  python examples/chemical_plant.py
"""

from repro.core.config import ReboundConfig
from repro.experiments.common import ChemicalPlantLoop
from repro.faults.adversary import RandomOutputBehavior
from repro.plant.fixedpoint import MICRO


def main() -> None:
    config = ReboundConfig(
        fmax=3, fconc=1, variant="multi", round_length_us=40_000, rsa_bits=256
    )
    loop = ChemicalPlantLoop(config=config, seed=1)
    system = loop.system
    reactor = loop.reactor

    print("Closed-loop warm-up (20 rounds = 0.8 s)...")
    loop.run(20)
    print(f"  reactor: {reactor.temperature_k:.1f} K, "
          f"{reactor.pressure_kpa:.1f} kPa (alarm at 250 kPa)")

    victim = system.topology.node_by_name("N4")
    fault_round = system.round_no + 1
    print(f"\nRound {fault_round}: compromising N4 "
          f"(feeds random data downstream)")
    system.inject_now(victim, RandomOutputBehavior(seed=7))

    for _ in range(12):
        loop.run(1)
        poms = sum(
            n.auditing.poms_emitted
            for nid, n in system.nodes.items()
            if nid in system.correct_controllers()
        )
        status = []
        if poms:
            status.append(f"{poms} PoM(s) emitted")
        if system.converged():
            status.append("mode switch complete")
        print(f"  round {system.round_no}: pressure {reactor.pressure_kpa:6.1f} kPa"
              f"  {'; '.join(status)}")

    print("\nActuator traces (PWM, per the paper's oscilloscope):")
    for name, trace in sorted(loop.traces.items()):
        disrupted = trace.disrupted_rounds(fault_round, system.round_no, (0, MICRO))
        recovery = trace.recovery_round(fault_round, (0, MICRO))
        starved = trace.starved_rounds(system.round_no - 4, system.round_no)
        if len(starved) >= 4:
            verdict = "flat line (flow dropped to conserve resources)"
        elif disrupted:
            verdict = (f"disrupted rounds {disrupted[:4]}..., "
                       f"normal again from round {recovery}")
        else:
            verdict = "undisturbed"
        print(f"  {name}: {verdict}")

    schedule = system.nodes[system.correct_controllers()[0]].current_schedule
    names = {f: system.workload.flows[f].name for f in system.workload.flows}
    print(f"\nFinal mode: failed={sorted(schedule.failed_nodes)} "
          f"active={[names[f] for f in sorted(schedule.active_flows)]} "
          f"dropped={[names[f] for f in sorted(schedule.dropped_flows)]}")
    print(f"Reactor stayed safe: peak pressure "
          f"{max(p for _t, _k, p in reactor.history):.1f} kPa < 250 kPa alarm")


if __name__ == "__main__":
    main()
