#!/usr/bin/env python3
"""The Fig. 10 case study: sudden unintended acceleration on a Volvo XC90.

The cruise controller (PI, 65 mph setpoint) runs on the ECM, one of 38
ECUs on the car's real bus topology (HCAN/LCAN/MOST/LIN).  The adversary
compromises the ECM and commands full throttle.  Three runs:

* normal operation -- speed holds 65 mph;
* no defense      -- the car runs away toward 100 mph;
* with REBOUND    -- a replica replays the ECM's own signed inputs,
  catches the lie within a few 10 ms rounds, and cruise control moves to
  another ECU; the blip is ~0.3 mph, unnoticeable to the driver.

Run:  python examples/cruise_control_attack.py
"""

from repro.experiments.fig10_xc90 import TARGET_MPH, run_all


def sparkline(series, width: int = 64, lo: float = 60.0, hi: float = 100.0) -> str:
    """Render (t, mph) samples as a one-line ASCII chart."""
    blocks = " .:-=+*#%@"
    if not series:
        return ""
    step = max(1, len(series) // width)
    samples = [series[i][1] for i in range(0, len(series), step)]
    out = []
    for v in samples:
        frac = (min(max(v, lo), hi) - lo) / (hi - lo)
        out.append(blocks[min(len(blocks) - 1, int(frac * (len(blocks) - 1)))])
    return "".join(out)


def main() -> None:
    print("Simulating 3 s of driving on the XC90 network "
          "(38 ECUs + speed sensor + engine, 10 ms rounds)...\n")
    results = run_all(duration_s=3.0)

    for name, label in (
        ("normal", "(a) normal operation"),
        ("attack_unprotected", "(b) attack, no defense"),
        ("attack_rebound", "(c) attack, with REBOUND"),
    ):
        r = results[name]
        print(f"{label}:")
        print(f"   speed 60..100 mph | {sparkline(r['series'])} |")
        print(f"   peak {r['peak_mph']:.2f} mph, final {r['final_mph']:.2f} mph")
        if r["recovery_ms"] is not None:
            print(f"   detected + recovered {r['recovery_ms']:.0f} ms after the attack")
        print()

    protected = results["attack_rebound"]
    print(f"(d) detail: the REBOUND excursion is "
          f"{protected['excursion_mph']:.3f} mph above the {TARGET_MPH:.0f} mph "
          f"setpoint -- bounded by the XC90's 4.96 m/s^2 acceleration cap "
          f"times the ~{protected['recovery_ms']:.0f} ms recovery window.")


if __name__ == "__main__":
    main()
