#!/usr/bin/env python3
"""Quickstart: bounded-time recovery in ~60 lines.

Builds the paper's Fig. 1 chemical-plant system (2 sensors, 4 controllers,
4 actuators, 4 criticality-ranked data flows), runs it fault-free, then
crashes a controller and watches REBOUND detect the fault, flood evidence,
and switch every correct node to a precomputed mode that excludes the dead
node -- dropping the least-critical flow because the system no longer has
the resources to run everything.

Run:  python examples/quickstart.py
"""

from repro.core import ReboundConfig, ReboundSystem
from repro.faults.adversary import CrashBehavior
from repro.net.topology import chemical_plant_topology
from repro.sched.task import chemical_plant_workload


def main() -> None:
    topology = chemical_plant_topology()
    workload = chemical_plant_workload()
    config = ReboundConfig(
        fmax=3,        # plan modes for up to 3 faults
        fconc=1,       # at most 1 fault per recovery window -> 1 replica/task
        variant="multi",  # REBOUND-MULTI (multisignature aggregation)
        round_length_us=40_000,  # the testbed's 40 ms rounds
        rsa_bits=256,  # smaller keys keep the demo snappy
    )
    system = ReboundSystem(topology, workload, config, seed=1)

    print("Fault-free warm-up (15 rounds)...")
    system.run(15)
    print(f"  evidence on each controller: "
          f"{[len(n.evidence) for n in system.nodes.values()]}")
    print(f"  all nodes in mode (KN, KL) = (empty, empty): "
          f"{dict(system.mode_census())}")

    victim = topology.node_by_name("N2")
    print(f"\nRound {system.round_no}: crashing controller N2 (id {victim})")
    system.inject_now(victim, CrashBehavior())

    for _ in range(8):
        system.run_round()
        marks = []
        if system.detected():
            marks.append("detected")
        if system.converged():
            marks.append("recovered")
        print(f"  round {system.round_no}: "
              f"{', '.join(marks) if marks else 'normal operation'}")
        if system.converged() and system.schedules_agree():
            break

    schedule = system.nodes[system.correct_controllers()[0]].current_schedule
    active = sorted(workload.flows[f].name for f in schedule.active_flows)
    dropped = sorted(workload.flows[f].name for f in schedule.dropped_flows)
    recovery_rounds = system.round_no - system.fault_rounds[0]
    print(f"\nRecovered in {recovery_rounds} rounds "
          f"({recovery_rounds * config.round_length_ms:.0f} ms of simulated time).")
    print(f"  surviving flows: {active}")
    print(f"  dropped (least critical first): {dropped}")
    print(f"  N2 hosts no tasks in the new mode: "
          f"{victim not in schedule.placements.values()}")


if __name__ == "__main__":
    main()
