#!/usr/bin/env python3
"""REBOUND outside CPS: a stream-processing pipeline (paper S2.1).

The paper argues BTR applies to any setting that (1) needs non-crash fault
tolerance, (2) cares about timeliness, (3) has some synchrony, and (4) can
tolerate brief bad outputs -- e.g. stock-market feeds, where corrections of
previously processed data arrive naturally via revision records.

Here a windowed-aggregation pipeline (ingest -> aggregate -> publish) runs
over a small cluster.  A compromised worker corrupts the aggregation stage;
REBOUND's replica replays the stage, proves the corruption, and the stage
migrates.  The sink sees a brief glitch of a few windows and then --
because downstream consumers keep revision records -- retroactively repairs
the glitched windows once correct values flow again.

Run:  python examples/stream_processing.py
"""

from typing import Dict, List

from repro.core import ReboundConfig, ReboundSystem
from repro.core.auditing import TaskLogic, TaskRegistry
from repro.faults.adversary import RandomOutputBehavior
from repro.net.topology import ROLE_ACTUATOR, ROLE_SENSOR, Topology
from repro.plant.fixedpoint import decode_micro, encode_micro
from repro.sched.task import CRITICALITY_HIGH, MS, Flow, Task, Workload

INGEST, AGGREGATE = 1, 2


class IngestTask(TaskLogic):
    """Validates ticks and stamps them (here: passthrough of the feed)."""

    def compute(self, state, inputs, round_no):
        value = decode_micro(inputs[0][1]) if inputs else 0
        return b"", encode_micro(value)


class WindowedSum(TaskLogic):
    """Aggregates the last 4 ticks (state = the sliding window)."""

    WINDOW = 4

    def initial_state(self) -> bytes:
        return b""

    def compute(self, state, inputs, round_no):
        window = [
            decode_micro(state[i : i + 8]) for i in range(0, len(state), 8)
        ]
        tick = decode_micro(inputs[0][1]) if inputs else 0
        window = (window + [tick])[-self.WINDOW :]
        new_state = b"".join(encode_micro(v) for v in window)
        return new_state, encode_micro(sum(window))


def cluster_topology() -> Topology:
    topo = Topology()
    for i in range(4):  # four workers
        topo.add_node(i)
    topo.add_node(4, role=ROLE_SENSOR, name="feed")
    topo.add_node(5, role=ROLE_ACTUATOR, name="sink")
    topo.add_bus(range(6), name="cluster-switch")
    return topo


def pipeline_workload() -> Workload:
    def task(tid):
        return Task(task_id=tid, flow_id=0, name=f"stage{tid}",
                    period_us=10 * MS, wcet_us=2 * MS, deadline_us=10 * MS)

    flow = Flow(
        flow_id=0, name="ticker-aggregation", criticality=CRITICALITY_HIGH,
        tasks=(task(INGEST), task(AGGREGATE)), edges=((INGEST, AGGREGATE),),
        sensors=(4,), actuators=(5,),
    )
    return Workload([flow])


def main() -> None:
    feed: List[int] = []

    def read_feed(round_no: int) -> bytes:
        value = 100 + (round_no * 7) % 13  # a deterministic "ticker"
        feed.append(value)
        return encode_micro(value)

    published: Dict[int, int] = {}  # window id (round) -> published sum

    def publish(round_no: int, payload: bytes, origin: int) -> None:
        published[round_no] = decode_micro(payload)

    registry = TaskRegistry()
    registry.register(INGEST, IngestTask())
    registry.register(AGGREGATE, WindowedSum())

    config = ReboundConfig(fmax=2, fconc=1, variant="multi",
                           round_length_us=10_000, rsa_bits=256)
    system = ReboundSystem(
        cluster_topology(), pipeline_workload(), config,
        registry=registry,
        sensor_reads={4: read_feed},
        actuator_applies={5: publish},
        seed=1,
    )

    print("Streaming 20 windows fault-free...")
    system.run(20)
    aggregator = system.nodes[0].current_schedule.primary_of(AGGREGATE)
    print(f"  aggregation stage runs on worker {aggregator}")

    print(f"\nRound {system.round_no}: compromising worker {aggregator} "
          f"(corrupts the aggregate)")
    system.inject_now(aggregator, RandomOutputBehavior(seed=13))
    fault_round = system.round_no
    system.run(14)

    # Which published windows were corrupted?  A consumer with revision
    # records recomputes them once correct data flows again (paper S2.1:
    # "corrections ... can then be used to quickly update the processed
    # data").
    def expected_sum(window_round: int) -> int:
        # Reconstruct what the correct pipeline would publish for window w:
        # the 3-round pipeline latency (sensor -> ingest -> aggregate ->
        # sink) means publish[w] covers ticks w-6 .. w-3.
        return sum(
            100 + (r * 7) % 13 for r in range(window_round - 6, window_round - 2)
        )

    glitched = [
        r for r, v in sorted(published.items())
        if r > fault_round and v != expected_sum(r)
    ]
    recovered_from = None
    for r in sorted(published):
        if r > fault_round and published[r] == expected_sum(r):
            if all(published.get(x, -1) == expected_sum(x)
                   for x in sorted(published) if x >= r):
                recovered_from = r
                break

    print(f"  glitched windows: {glitched} "
          f"({len(glitched)} windows of bad output)")
    print(f"  correct output resumed from window {recovered_from}")
    print(f"  new aggregation host: "
          f"{system.nodes[0].current_schedule.primary_of(AGGREGATE)}")

    revisions = {r: expected_sum(r) for r in glitched}
    for r in glitched:
        published[r] = revisions[r]
    print(f"  revision records applied retroactively: {revisions}")
    print("\nBTR's pitch for streams: a bounded glitch plus standard "
          "revision records, at f+1 replication instead of BFT's 3f+1.")


if __name__ == "__main__":
    main()
