"""Figure 9: supported useful workload, REBOUND vs PBFT.

Paper shape: REBOUND admits at least ~2x PBFT's workload on the same
hardware, closely tracking (3f+1)/(f+1), which approaches 3 for large f.
"""

import pytest

from conftest import scale
from repro.experiments import fig9_pbft
from repro.experiments.common import print_table

F_VALUES = (1, 2, 3)
NODE_COUNTS = scale((25, 50), (25, 50, 75))
WORKLOADS = scale(8, 25)


@pytest.fixture(scope="module")
def rows():
    return fig9_pbft.run(
        f_values=F_VALUES,
        node_counts=NODE_COUNTS,
        workloads_per_cell=WORKLOADS,
    )


def test_fig9_pbft(benchmark, rows):
    benchmark.pedantic(
        fig9_pbft.run,
        kwargs={"f_values": (1,), "node_counts": (25,), "workloads_per_cell": 3},
        rounds=1,
        iterations=1,
    )
    print_table(rows, "Figure 9: supported workload normalized to PBFT")
    checks = fig9_pbft.check_shape(rows)
    print(f"shape checks: {checks}")
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"Fig. 9 shape checks failed: {failed}"
