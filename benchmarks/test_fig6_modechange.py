"""Figure 6: mode-change dynamics (45-node net, fault in round 50).

Regenerates both panels: fraction of nodes per mode and per-link bandwidth
around the worst-case fault (LFD storm from the highest-degree node).
Paper shape: brief splintering into several modes, a bandwidth spike, and
convergence to the final mode within a few rounds.
"""

import pytest

from conftest import scale
from repro.experiments import fig6_modechange
from repro.experiments.common import print_table

N = scale(30, 45)
FAULT_ROUND = scale(35, 50)
TOTAL_ROUNDS = scale(60, 100)


@pytest.fixture(scope="module")
def rows():
    return fig6_modechange.run(
        n=N, fault_round=FAULT_ROUND, total_rounds=TOTAL_ROUNDS
    )


def test_fig6_modechange(benchmark, rows):
    benchmark.pedantic(
        fig6_modechange.run,
        kwargs={"n": 15, "fault_round": 15, "total_rounds": 25},
        rounds=1,
        iterations=1,
    )
    window = [
        r for r in rows if FAULT_ROUND - 4 <= r["round"] <= FAULT_ROUND + 10
    ]
    print_table(window, "Figure 6: rounds around the fault")
    summary = fig6_modechange.summarize(rows, fault_round=FAULT_ROUND)
    print(f"summary: {summary}")
    assert summary["converged_round"] is not None, "system never converged"
    assert summary["rounds_to_converge"] <= 15
    assert summary["bandwidth_spike_factor"] > 1.5
