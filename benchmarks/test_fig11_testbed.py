"""Figure 11: testbed attack scenarios on the chemical plant.

Paper shape: the unprotected system sends bad data indefinitely; with
REBOUND, outputs return to normal in ~5 rounds (~200 ms at 40 ms rounds),
dropping the least-critical flow; a second fault drops one more, leaving
the two most critical flows alive.
"""

import pytest

from conftest import scale
from repro.experiments import fig11_testbed

POST_ROUNDS = scale(25, 40)


@pytest.fixture(scope="module")
def results():
    return fig11_testbed.run_all(post_rounds=POST_ROUNDS)


def test_fig11_testbed(benchmark, results):
    benchmark.pedantic(
        fig11_testbed.run_scenario,
        kwargs={"victims": ["N4"], "post_rounds": 10},
        rounds=1,
        iterations=1,
    )
    for name, r in results.items():
        traces = {
            a: {
                "recovered_after": t["recovery_rounds_after_fault"],
                "flat": t["flat_at_end"],
            }
            for a, t in r["traces"].items()
            if t["disrupted_rounds"] or t["flat_at_end"]
        }
        print(f"{name}: active={r['active_flows']} dropped={r['dropped_flows']} "
              f"affected traces={traces}")
    checks = fig11_testbed.check_shape(results)
    print(f"shape checks: {checks}")
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"Fig. 11 shape checks failed: {failed}"
