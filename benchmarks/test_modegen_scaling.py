"""Mode-tree generation scaling: seed serial path vs the optimized engine.

Runs the ``bench_modegen`` sweep (the same driver behind
``python -m repro bench-modegen``) under pytest-benchmark and asserts the
engine's contract: the parallel tree is identical to the serial tree, the
optimized flow sets match the seed path, and the optimized engine is
faster end-to-end.  Small-scale by default; ``REPRO_FULL=1`` runs the full
ILP cells (tens of seconds of seed-path branch-and-bound per cell).
"""

from conftest import scale


def test_modegen_speedup_and_identity(benchmark):
    from repro.experiments.bench_modegen import run_modegen_bench

    result = benchmark.pedantic(
        lambda: run_modegen_bench(
            workers=2,
            quick=scale(True, False),
            output_path=None,
        ),
        rounds=1,
        iterations=1,
    )
    for cell in result["cells"]:
        assert cell["parallel_identical_to_serial"], cell["name"]
        assert cell["same_flow_sets_as_seed"], cell["name"]
        if cell["method"] == "greedy":
            assert cell["identical_to_seed"], cell["name"]
    assert result["all_parallel_identical"]
    assert result["all_flow_sets_match_seed"]
    # ILP cells dominate both sweeps; warm starts + batch admission +
    # the placement memo must beat the seed path end to end.
    assert result["speedup_end_to_end"] > 1.0
    print(
        f"modegen: seed {result['total_seed_s']:.2f}s, "
        f"optimized serial {result['total_opt_serial_s']:.2f}s, "
        f"parallel {result['total_opt_parallel_s']:.2f}s, "
        f"end-to-end speedup {result['speedup_end_to_end']:.1f}x"
    )


def test_parallel_workers_sweep(benchmark):
    """Exact generation at a fixed size across worker counts: identical
    trees whatever the pool size."""
    from repro.net.topology import erdos_renyi_topology
    from repro.sched.modegen import ModeTreeGenerator
    from repro.sched.workload import WorkloadGenerator

    n, fmax = scale((10, 2), (14, 2))
    topology = erdos_renyi_topology(n, seed=2)
    workload = WorkloadGenerator(seed=2, chain_length_range=(1, 2)).workload(
        target_utilization=2.0
    )

    def sweep():
        trees = {}
        for workers in (1, 2, 4):
            gen = ModeTreeGenerator(topology, workload, fmax=fmax)
            trees[workers] = gen.generate(workers=workers)
        return trees

    trees = benchmark.pedantic(sweep, rounds=1, iterations=1)
    serial = trees[1]
    for workers, tree in trees.items():
        assert tree.schedules == serial.schedules
        assert tree.parents == serial.parents
        assert tree.children == serial.children
        assert tree.serialized_size() == serial.serialized_size()
