"""Figure 5: protocol overhead (bandwidth / storage / crypto ops) vs n.

Regenerates the three panels' series for REBOUND-BASIC and REBOUND-MULTI.
Paper shape: BASIC linear in n on all axes; MULTI levels off (bandwidth
tracks the max-fail distance; storage stays tens of KB; verifications grow
sub-linearly).
"""

import pytest

from conftest import scale
from repro.experiments import fig5_overhead
from repro.experiments.common import print_table

SIZES = scale((4, 10, 20, 35, 50), (4, 10, 20, 35, 50, 75, 100))
ROUNDS = scale(25, 50)
SEEDS = scale((0,), (0, 1, 2))


@pytest.fixture(scope="module")
def rows():
    return fig5_overhead.run(sizes=SIZES, rounds=ROUNDS, seeds=SEEDS)


def test_fig5_overhead(benchmark, rows):
    """Times one mid-size cell; the sweep itself runs once via the fixture."""
    benchmark.pedantic(
        fig5_overhead.run_one,
        kwargs={"n": SIZES[len(SIZES) // 2], "variant": "multi", "rounds": 10},
        rounds=1,
        iterations=1,
    )
    print_table(rows, "Figure 5: protocol overhead vs system size")
    checks = fig5_overhead.check_shape(rows)
    print(f"shape checks: {checks}")
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"Fig. 5 shape checks failed: {failed}"
