"""Recovery latency: the BTR bound, measured (paper S2.7, S5.8).

Not a single paper figure, but the claim behind all of them: for every
attack class, Tdet + Tstab + Tswitch stays within a bound that depends on
the topology (D_max) and the audit latency -- never on what the adversary
does.  This bench sweeps behaviours x topology sizes and reports the
detection and recovery milestones in rounds; with the testbed's 40 ms
rounds, the chemical-plant numbers land on the paper's ~200 ms.
"""

import pytest

from conftest import scale
from repro.analysis.recovery import measure_recovery
from repro.core import ReboundConfig, ReboundSystem
from repro.experiments.common import print_table
from repro.faults.adversary import (
    CrashBehavior,
    EquivocateBehavior,
    RandomOutputBehavior,
    SilenceBehavior,
)
from repro.net.topology import erdos_renyi_topology
from repro.sched.workload import WorkloadGenerator

SIZES = scale((8, 14), (8, 14, 24))
BEHAVIORS = [
    ("crash", CrashBehavior),
    ("silence", SilenceBehavior),
    ("random-output", lambda: RandomOutputBehavior(seed=9)),
    ("equivocate", EquivocateBehavior),
]


def _measure(n: int, behavior_name: str, factory) -> dict:
    topology = erdos_renyi_topology(n, seed=2)
    workload = WorkloadGenerator(seed=2, chain_length_range=(2, 2)).workload(
        target_utilization=n * 0.25
    )
    config = ReboundConfig(fmax=2, fconc=1, variant="multi", rsa_bits=256)
    system = ReboundSystem(topology, workload, config, seed=2)
    system.run(12)
    victim = max(
        system.topology.controllers,
        key=lambda c: len(system.nodes[c].auditing.primaries),
    )
    timeline = measure_recovery(
        system, lambda: system.inject_now(victim, factory()), max_rounds=25
    )
    return {
        "n": n,
        "behavior": behavior_name,
        "d_max": config.d_max,
        "detect_rounds": timeline.detection_rounds,
        "recover_rounds": timeline.recovery_rounds,
        "recovered": timeline.recovered,
    }


@pytest.fixture(scope="module")
def rows():
    return [
        _measure(n, name, factory)
        for n in SIZES
        for name, factory in BEHAVIORS
    ]


def test_recovery_latency(benchmark, rows):
    benchmark.pedantic(
        _measure, args=(8, "crash", CrashBehavior), rounds=1, iterations=1
    )
    print_table(rows, "Recovery latency by behaviour and system size")
    for row in rows:
        assert row["recovered"], f"{row} never recovered"
        # The bound: detection within a small constant for direct omissions,
        # within the audit latency for commissions; recovery adds the
        # evidence-flood (<= D_max) and the switch.
        bound = 2 * row["d_max"] + 10
        assert row["recover_rounds"] <= bound, (
            f"{row['behavior']} at n={row['n']}: recovery "
            f"{row['recover_rounds']} rounds exceeds bound {bound}"
        )
