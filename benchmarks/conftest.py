"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's evaluation.
Default parameters are laptop-scale (minutes total); set ``REPRO_FULL=1``
for paper-scale sweeps (much longer).
"""

import os

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def scale(small, full):
    """Pick the small or full-scale parameter set."""
    return full if FULL else small
