"""Figure 8: per-node runtime costs of REBOUND + auditing vs fconc.

Paper shape: the unprotected system has payload traffic only; enabling
REBOUND adds a roughly fconc-independent protocol overhead; auditing costs
(traffic, RSA operations, replica storage) grow with fconc.
"""

import pytest

from conftest import scale
from repro.experiments import fig8_casestudy
from repro.experiments.common import print_table

N = scale(18, 26)
ROUNDS = scale(40, 100)
FCONC_VALUES = (None, 1, 2, 3)


@pytest.fixture(scope="module")
def rows():
    return fig8_casestudy.run(fconc_values=FCONC_VALUES, n=N, rounds=ROUNDS)


def test_fig8_casestudy(benchmark, rows):
    benchmark.pedantic(
        fig8_casestudy.run_one,
        kwargs={"fconc": 1, "n": 10, "rounds": 10},
        rounds=1,
        iterations=1,
    )
    print_table(rows, "Figure 8: per-node runtime costs in the case study")
    checks = fig8_casestudy.check_shape(rows)
    print(f"shape checks: {checks}")
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"Fig. 8 shape checks failed: {failed}"
