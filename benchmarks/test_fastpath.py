"""Fast-path speedup benchmark (ISSUE 1 acceptance criteria).

Excluded from the default test run (``pytest`` with testpaths=tests); run
explicitly with ``pytest benchmarks/test_fastpath.py`` or select by marker
with ``pytest -m bench benchmarks``.  Writes ``BENCH_fastpath.json``.
"""

import json
import os

import pytest

from repro.experiments.bench_fastpath import run_fastpath_bench

pytestmark = pytest.mark.bench


def test_fastpath_speedup_and_transcript_identity(tmp_path):
    out = str(tmp_path / "BENCH_fastpath.json")
    result = run_fastpath_bench(output_path=out)

    # Disabling every cache yields byte-identical observable behavior:
    # same per-node evidence digests and the same mode switches per round.
    assert result["transcripts_identical"]

    # CRT signatures are bit-identical to the plain path.
    assert result["crt_microbench"]["identical"]

    # >= 2x end-to-end on the 20-node, 30-round REBOUND-BASIC grid run.
    assert result["nodes"] == 20 and result["rounds"] == 30
    assert result["variant"] == "basic"
    assert result["speedup"] >= 2.0, (
        f"fast path only {result['speedup']:.2f}x "
        f"({result['baseline_run_s']:.3f}s -> {result['fast_run_s']:.3f}s)"
    )

    # The artifact exists and round-trips; keep a copy at the repo root so
    # the before/after numbers are diffable across commits.
    with open(out) as fh:
        persisted = json.load(fh)
    assert persisted["speedup"] == result["speedup"]
    root_artifact = os.path.join(os.path.dirname(__file__), "..", "BENCH_fastpath.json")
    with open(root_artifact, "w") as fh:
        json.dump(persisted, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # The verification cache did real work and stayed within its bound.
    cache = result["fast_stats"]["verify_cache"]
    assert cache["hits"] > cache["misses"]
    assert cache["entries"] <= cache["capacity"]
