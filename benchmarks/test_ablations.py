"""Ablations of the design choices the paper calls out (S3.5-3.6, S3.9).

Not paper figures, but each isolates one optimization/choice:

* message expiry (second S3.5 refinement) -> bounded storage;
* bus broadcast (third S3.5 refinement) -> bandwidth on bus topologies;
* signature spot-checking (third S3.5 refinement) -> verification counts;
* ILP vs greedy placement -> mode-transition (migration) cost;
* key rotation (S4) -> certificate overhead per epoch.
"""

import pytest

from conftest import scale
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.net.topology import Topology, chemical_plant_topology, erdos_renyi_topology
from repro.sched.assign import ScheduleBuilder
from repro.sched.task import Workload, chemical_plant_workload
from repro.sched.workload import WorkloadGenerator

ROUNDS = scale(25, 60)


def _bare_system(topology, **config_kwargs):
    config = ReboundConfig(fmax=1, fconc=1, rsa_bits=256, **config_kwargs)
    return ReboundSystem(topology, Workload([]), config, seed=1)


def _bus_heavy_topology(n: int = 12) -> Topology:
    """One big bus plus a few point-to-point stragglers."""
    topo = Topology()
    for i in range(n):
        topo.add_node(i)
    topo.add_bus(range(n - 2))
    topo.add_link(n - 3, n - 2)
    topo.add_link(n - 2, n - 1)
    return topo


def test_ablation_expiry(benchmark):
    """Without D_max expiry, BASIC storage grows without bound."""

    def run_pair():
        results = {}
        for expiry in (True, False):
            system = _bare_system(
                erdos_renyi_topology(15, seed=3),
                variant="basic",
                expiry_optimization=expiry,
            )
            system.run(ROUNDS)
            results[expiry] = system.mean_storage_bytes()
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"storage with expiry: {results[True]:.0f} B, without: {results[False]:.0f} B")
    assert results[False] > 1.5 * results[True]


def test_ablation_bus_broadcast(benchmark):
    """Broadcasting heartbeats on buses saves bandwidth vs unicasting."""

    def run_pair():
        results = {}
        for broadcast in (True, False):
            system = _bare_system(
                _bus_heavy_topology(),
                variant="basic",
                bus_broadcast=broadcast,
                signature_spot_checking=False,
            )
            system.run(ROUNDS)
            results[broadcast] = system.mean_link_bytes_in_round()
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"bus bytes with broadcast: {results[True]:.0f}, without: {results[False]:.0f}")
    assert results[True] < results[False] / 2


def test_ablation_spot_checking(benchmark):
    """Having only fmax+1 bus members verify each broadcast signature cuts
    the per-node verification count."""

    def run_pair():
        results = {}
        for spot in (True, False):
            system = _bare_system(
                _bus_heavy_topology(),
                variant="basic",
                signature_spot_checking=spot,
            )
            system.run(ROUNDS)
            total = system.total_crypto_counters()
            results[spot] = total.total_verifications()
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"verifications with spot-checking: {results[True]}, without: {results[False]}")
    assert results[True] < 0.7 * results[False]


def test_ablation_ilp_vs_greedy(benchmark):
    """The exact ILP never migrates more task copies than the greedy
    first-fit when both admit the same flows (S3.9's transition-cost
    objective)."""
    topo = chemical_plant_topology()
    wl = chemical_plant_workload()

    def compare():
        greedy = ScheduleBuilder(topo, wl, fconc=1, method="greedy")
        ilp = ScheduleBuilder(topo, wl, fconc=1, method="ilp")
        root = greedy.build()
        rows = []
        # Two victims keep the exact-ILP runtime reasonable; the comparison
        # is identical for the remaining single-fault modes.
        for victim in topo.controllers[:2]:
            child_g = greedy.build(failed_nodes=[victim], parent=root)
            child_i = ilp.build(failed_nodes=[victim], parent=root)
            if child_g.active_flows == child_i.active_flows:
                rows.append(
                    (victim, child_g.migration_cost(root), child_i.migration_cost(root))
                )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert rows
    for victim, greedy_cost, ilp_cost in rows:
        print(f"fail N{victim}: greedy migrates {greedy_cost}, ILP migrates {ilp_cost}")
        assert ilp_cost <= greedy_cost


def test_ablation_key_rotation(benchmark):
    """Key rotation (S4): per-epoch cost is one strong signature + one
    strong verification per peer; working-key operations dominate."""
    from repro.crypto.rotation import KeyRotationManager

    def rotate_epochs():
        alice = KeyRotationManager(0, permanent_bits=512, working_bits=256, seed=1)
        bob = KeyRotationManager(1, permanent_bits=512, working_bits=256, seed=2)
        bob.register_peer(0, alice.permanent.public_key)
        accepted = 0
        for _ in range(5):
            cert = alice.rotate()
            accepted += bob.accept_rotation(cert)
            for i in range(20):
                sig = alice.sign(bytes([i]))
                assert bob.verify_from(0, bytes([i]), sig)
        return accepted

    accepted = benchmark.pedantic(rotate_epochs, rounds=1, iterations=1)
    assert accepted == 5
