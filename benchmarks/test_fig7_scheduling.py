"""Figure 7: mode-tree size and generation time vs system size and fmax.

Paper shape: both grow combinatorially (sum C(n, i), i <= fmax); trees stay
small enough for embedded flash; generation is offline.  Large cells use the
layer-sampling estimator (see DESIGN.md); the cross-check below validates
the estimator against exact generation where both are feasible.
"""

import pytest

from conftest import scale
from repro.experiments import fig7_scheduling
from repro.experiments.common import print_table

SIZES = scale((15, 30, 60), (20, 50, 100, 200))
FMAX_VALUES = scale((1, 2), (1, 2, 3))


@pytest.fixture(scope="module")
def rows():
    return fig7_scheduling.run(
        sizes=SIZES, fmax_values=FMAX_VALUES, samples_per_layer=4
    )


def test_fig7_scheduling(benchmark, rows):
    benchmark.pedantic(
        fig7_scheduling.run_cell,
        kwargs={"n": 12, "fmax": 1},
        rounds=1,
        iterations=1,
    )
    print_table(rows, "Figure 7: scheduling trees (size + generation time)")
    checks = fig7_scheduling.check_shape(rows)
    print(f"shape checks: {checks}")
    failed = [k for k, ok in checks.items() if not ok]
    assert not failed, f"Fig. 7 shape checks failed: {failed}"


def test_fig7_estimator_cross_check(benchmark):
    """The sampling estimator agrees with exact generation at small n."""
    import time

    from repro.net.topology import erdos_renyi_topology
    from repro.sched.modegen import ModeTreeGenerator
    from repro.sched.workload import WorkloadGenerator

    topo = erdos_renyi_topology(14, seed=2)
    wl = WorkloadGenerator(seed=2).workload(target_utilization=4.0)

    def both():
        gen = ModeTreeGenerator(topo, wl, fmax=2, fconc=1)
        start = time.perf_counter()
        tree = gen.generate()
        exact_time = time.perf_counter() - start
        stats = gen.estimate(samples_per_layer=8, seed=3)
        return tree, exact_time, stats

    tree, exact_time, stats = benchmark.pedantic(both, rounds=1, iterations=1)
    assert stats.estimated_total_modes == tree.num_modes
    # The estimator extrapolates flat per-mode encodings, so compare
    # against the flat (non-deduplicated) serialization.
    size_ratio = stats.estimated_size_bytes / tree.serialized_size(dedup=False)
    time_ratio = stats.estimated_total_time_s / max(1e-9, exact_time)
    print(
        f"estimator cross-check: size ratio {size_ratio:.2f}, "
        f"time ratio {time_ratio:.2f}"
    )
    assert 0.5 < size_ratio < 2.0
    assert 0.2 < time_ratio < 5.0
