"""Figure 10: XC90 cruise-control attack (velocity traces).

Paper shape: (a) normal operation holds 65 mph; (b) unprotected attack runs
away toward ~100 mph within seconds; (c) REBOUND detects and reassigns
cruise control within ~50 ms; (d) the excursion is ~0.3 mph.
"""

import pytest

from conftest import scale
from repro.experiments import fig10_xc90

DURATION_S = scale(1.5, 3.0)


@pytest.fixture(scope="module")
def results():
    return fig10_xc90.run_all(duration_s=DURATION_S)


def test_fig10_xc90(benchmark, results):
    benchmark.pedantic(
        fig10_xc90.XC90Scenario(
            "bench", protected=True, attack_at_s=0.2, duration_s=0.5
        ).run,
        rounds=1,
        iterations=1,
    )
    for name, r in results.items():
        print(
            f"{name}: peak {r['peak_mph']:.2f} mph, final {r['final_mph']:.2f},"
            f" excursion {r['excursion_mph']:.3f} mph,"
            f" recovery {r['recovery_ms']} ms"
        )
    protected = results["attack_rebound"]
    unprotected = results["attack_unprotected"]
    normal = results["normal"]
    assert abs(normal["final_mph"] - 65.0) < 2.0
    assert protected["excursion_mph"] < 2.0
    assert protected["recovery_ms"] is not None
    assert protected["recovery_ms"] <= 100.0
    assert unprotected["excursion_mph"] > 10 * protected["excursion_mph"]
