"""Scheduling cost models for the Fig. 9 comparison (paper S5.6).

The paper derives scheduling constraints for PBFT analogous to REBOUND's
(S3.9 / [51, SF]), packs randomly generated workloads onto node sets under
either defense (allowing the scheduler to drop excess tasks), and measures
the median *useful* utilization -- the total utilization of the admitted
tasks not counting their replicas.

The key structural difference is the number of executing copies per task:

* asynchronous BFT (PBFT): 3f + 1
* synchronous BFT:         2f + 1
* REBOUND:                  f + 1   (fconc = f replicas + the primary)

All three share the same packing machinery (:class:`ScheduleBuilder` with
the appropriate copy count), so the comparison isolates exactly the
replication factor, as the paper's does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.topology import Topology, fully_connected_topology
from repro.sched.assign import ScheduleBuilder
from repro.sched.task import Workload


@dataclass(frozen=True)
class ReplicationSchedulingModel:
    """A defense's replication requirement for the packing comparison.

    Attributes:
        name: label for reports.
        copies_for: executing copies per task as a function of f.
    """

    name: str
    extra_copies_for_f: int  # copies = 1 + extra_copies_for_f * something

    def copies(self, f: int) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class _LinearModel(ReplicationSchedulingModel):
    slope: int = 1
    intercept: int = 1

    def copies(self, f: int) -> int:
        return self.slope * f + self.intercept


def pbft_model() -> ReplicationSchedulingModel:
    """Asynchronous BFT: 3f + 1 executing copies."""
    return _LinearModel(name="pbft", extra_copies_for_f=3, slope=3, intercept=1)


def sync_bft_model() -> ReplicationSchedulingModel:
    """Synchronous BFT (e.g. Sync HotStuff): 2f + 1 executing copies."""
    return _LinearModel(name="sync-bft", extra_copies_for_f=2, slope=2, intercept=1)


def rebound_model() -> ReplicationSchedulingModel:
    """REBOUND: the primary plus fconc = f replicas."""
    return _LinearModel(name="rebound", extra_copies_for_f=1, slope=1, intercept=1)


def useful_utilization(
    workload: Workload,
    n_nodes: int,
    f: int,
    model: ReplicationSchedulingModel,
    utilization_cap: float = 0.9,
    topology: Optional[Topology] = None,
) -> float:
    """Pack ``workload`` under ``model`` and return the admitted useful
    utilization (replica-free), the Fig. 9 metric.

    The scheduler drops excess flows (least critical first), exactly like
    the paper's setup where systems are packed with more tasks than they
    can handle.
    """
    copies = model.copies(f)
    if copies > n_nodes:
        return 0.0  # cannot even place one task's copy set
    topo = topology or fully_connected_topology(n_nodes)
    builder = ScheduleBuilder(
        topo,
        workload,
        fconc=copies - 1,
        utilization_cap=utilization_cap,
        method="greedy",
    )
    schedule = builder.build()
    return sum(
        workload.flows[flow_id].utilization for flow_id in schedule.active_flows
    )
