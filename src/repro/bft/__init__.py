"""Byzantine fault tolerance baselines (paper S5.6, Fig. 9).

Two artifacts:

* :mod:`repro.bft.pbft` -- an executable, simplified PBFT (pre-prepare /
  prepare / commit with view changes) over the round-synchronous network,
  used to demonstrate the masking alternative REBOUND is compared against.
* :mod:`repro.bft.replication` -- the *scheduling* cost models used by the
  Fig. 9 comparison: a BFT-protected task needs 3f+1 executing copies
  (asynchronous PBFT) or 2f+1 (synchronous BFT), against REBOUND's f+1;
  workloads are packed onto a node set under EDF capacity and the useful
  (replica-free) utilization is measured.
"""

from repro.bft.pbft import PBFTCluster, PBFTReplica
from repro.bft.replication import (
    ReplicationSchedulingModel,
    pbft_model,
    rebound_model,
    sync_bft_model,
)

__all__ = [
    "PBFTCluster",
    "PBFTReplica",
    "ReplicationSchedulingModel",
    "pbft_model",
    "sync_bft_model",
    "rebound_model",
]
