"""A simplified, executable PBFT (Castro & Liskov) baseline.

Implements the normal-case three-phase protocol (pre-prepare, prepare,
commit) and a view-change mechanism over the round-synchronous network
simulator, with n = 3f+1 replicas and quorums of 2f+1.  Checkpointing and
the full new-view proof machinery are elided (requests are retained in
full); signatures are modeled as authenticated channels (the simulator's
sender identities are unforgeable for correct nodes), which matches PBFT's
MAC-based variant.

This is the baseline REBOUND is compared against: it *masks* up to f
Byzantine replicas entirely, but needs 3f+1 executing copies and multiple
message rounds per decision -- the costs Fig. 9 quantifies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.net.message import register_message
from repro.net.network import NodeProtocol, RoundNetwork
from repro.net.topology import fully_connected_topology


@register_message
@dataclass(frozen=True)
class ClientRequest:
    request_id: int
    payload: bytes


@register_message
@dataclass(frozen=True)
class PrePrepare:
    view: int
    sequence: int
    request: ClientRequest


@register_message
@dataclass(frozen=True)
class Prepare:
    view: int
    sequence: int
    digest: bytes
    replica: int


@register_message
@dataclass(frozen=True)
class Commit:
    view: int
    sequence: int
    digest: bytes
    replica: int


@register_message
@dataclass(frozen=True)
class ViewChange:
    new_view: int
    replica: int
    last_executed: int


@register_message
@dataclass(frozen=True)
class NewView:
    view: int
    leader: int


def _digest(request: ClientRequest) -> bytes:
    from repro.crypto.hashing import hash_bytes

    return hash_bytes(request.request_id.to_bytes(8, "big"), request.payload)


class PBFTReplica(NodeProtocol):
    """One PBFT replica.

    Args:
        n: cluster size (3f+1).
        f: fault threshold.
        view_change_timeout: rounds a pending request may wait before this
            replica votes to change the view.
    """

    def __init__(self, n: int, f: int, view_change_timeout: int = 6):
        self.n = n
        self.f = f
        self.view = 0
        self.view_change_timeout = view_change_timeout
        self.sequence = 0  # next sequence this replica assigns as leader
        self.executed: List[Tuple[int, bytes]] = []  # (request_id, payload)
        self.last_executed = 0
        self._pending: Dict[int, ClientRequest] = {}  # request_id -> request
        self._pending_since: Dict[int, int] = {}
        self._preprepares: Dict[Tuple[int, int], PrePrepare] = {}
        self._prepares: Dict[Tuple[int, int, bytes], Set[int]] = defaultdict(set)
        self._commits: Dict[Tuple[int, int, bytes], Set[int]] = defaultdict(set)
        self._prepared: Set[Tuple[int, int, bytes]] = set()
        self._committed_seqs: Dict[int, ClientRequest] = {}
        self._view_votes: Dict[int, Set[int]] = defaultdict(set)
        self._outbox: List[Any] = []
        self.byzantine = False
        self.equivocating_leader = False

    # -- helpers -------------------------------------------------------------

    @property
    def leader(self) -> int:
        return self.view % self.n

    @property
    def is_leader(self) -> bool:
        return self.node_id == self.leader

    def _broadcast(self, msg: Any) -> None:
        self._outbox.append(msg)

    def submit(self, request: ClientRequest, round_no: int) -> None:
        """Client entry point: hand a request to this replica."""
        if request.request_id not in self._pending:
            self._pending[request.request_id] = request
            self._pending_since[request.request_id] = round_no

    # -- protocol ---------------------------------------------------------------

    def on_receive(self, round_no: int, sender: int, payload: Any) -> None:
        if self.byzantine:
            return
        if isinstance(payload, ClientRequest):
            self.submit(payload, round_no)
        elif isinstance(payload, PrePrepare):
            self._on_preprepare(sender, payload)
        elif isinstance(payload, Prepare):
            self._on_prepare(payload)
        elif isinstance(payload, Commit):
            self._on_commit(payload)
        elif isinstance(payload, ViewChange):
            self._on_view_change(payload)
        elif isinstance(payload, NewView):
            if payload.view > self.view:
                self.view = payload.view

    def _on_preprepare(self, sender: int, msg: PrePrepare) -> None:
        if msg.view != self.view or sender != self.leader:
            return
        key = (msg.view, msg.sequence)
        if key in self._preprepares:
            return  # a leader equivocating on a sequence is simply ignored
        self._preprepares[key] = msg
        digest = _digest(msg.request)
        # The pre-prepare doubles as the leader's prepare.
        self._prepares[(msg.view, msg.sequence, digest)].add(sender)
        self._prepares[(msg.view, msg.sequence, digest)].add(self.node_id)
        self._broadcast(
            Prepare(view=msg.view, sequence=msg.sequence, digest=digest,
                    replica=self.node_id)
        )
        self._maybe_prepared(msg.view, msg.sequence, digest)

    def _on_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view:
            return
        key = (msg.view, msg.sequence, msg.digest)
        self._prepares[key].add(msg.replica)
        self._maybe_prepared(msg.view, msg.sequence, msg.digest)

    def _maybe_prepared(self, view: int, sequence: int, digest: bytes) -> None:
        """prepared(m, v, n): pre-prepare + 2f+1 matching prepare votes
        (the pre-prepare counting as the leader's vote)."""
        key = (view, sequence, digest)
        if (
            len(self._prepares[key]) >= 2 * self.f + 1
            and (view, sequence) in self._preprepares
            and key not in self._prepared
        ):
            self._prepared.add(key)
            self._commits[key].add(self.node_id)
            self._broadcast(
                Commit(view=view, sequence=sequence, digest=digest,
                       replica=self.node_id)
            )

    def _on_commit(self, msg: Commit) -> None:
        key = (msg.view, msg.sequence, msg.digest)
        self._commits[key].add(msg.replica)
        if len(self._commits[key]) >= 2 * self.f + 1 and key in self._prepared:
            preprepare = self._preprepares.get((msg.view, msg.sequence))
            if preprepare is not None:
                self._committed_seqs.setdefault(msg.sequence, preprepare.request)
                self._try_execute()

    def _try_execute(self) -> None:
        while self.last_executed + 1 in self._committed_seqs:
            seq = self.last_executed + 1
            request = self._committed_seqs[seq]
            self.executed.append((request.request_id, request.payload))
            self._pending.pop(request.request_id, None)
            self._pending_since.pop(request.request_id, None)
            self.last_executed = seq
            self.sequence = max(self.sequence, seq)

    def _on_view_change(self, msg: ViewChange) -> None:
        if msg.new_view <= self.view:
            return
        self._view_votes[msg.new_view].add(msg.replica)
        if len(self._view_votes[msg.new_view]) >= 2 * self.f + 1:
            self.view = msg.new_view
            self.sequence = max(self.sequence, self.last_executed)
            self._prepared = {k for k in self._prepared if k[0] >= self.view}
            if self.is_leader:
                self._broadcast(NewView(view=self.view, leader=self.node_id))

    def on_round_end(self, round_no: int) -> None:
        if self.byzantine:
            return
        if self.equivocating_leader and self.is_leader:
            self._equivocate_round()
            return
        # Leader: assign sequence numbers to pending requests.
        if self.is_leader:
            for request_id in sorted(self._pending):
                request = self._pending[request_id]
                already = any(
                    pp.request.request_id == request_id
                    for pp in self._preprepares.values()
                    if pp.view == self.view
                )
                if already:
                    continue
                self.sequence += 1
                msg = PrePrepare(view=self.view, sequence=self.sequence, request=request)
                self._preprepares[(self.view, self.sequence)] = msg
                digest = _digest(request)
                self._prepares[(self.view, self.sequence, digest)].add(self.node_id)
                self._broadcast(msg)
        # Backup: vote for a view change when requests starve.
        else:
            for request_id, since in list(self._pending_since.items()):
                if round_no - since > self.view_change_timeout:
                    vote = ViewChange(
                        new_view=self.view + 1,
                        replica=self.node_id,
                        last_executed=self.last_executed,
                    )
                    self._view_votes[self.view + 1].add(self.node_id)
                    self._broadcast(vote)
                    self._pending_since[request_id] = round_no  # back off
                    break
        # Flush.
        outbox, self._outbox = self._outbox, []
        for msg in outbox:
            for peer in range(self.n):
                if peer != self.node_id:
                    self.network.send(self.node_id, peer, msg)


    def _equivocate_round(self) -> None:
        """Byzantine leader: propose *different* requests for the same
        sequence number to different backups.  Safety must hold: no two
        correct replicas may execute different requests at one sequence."""
        if not self._pending:
            return
        self.sequence += 1
        requests = sorted(self._pending.values(), key=lambda r: r.request_id)
        for idx, peer in enumerate(p for p in range(self.n) if p != self.node_id):
            request = requests[idx % len(requests)]
            # A different payload per *peer*: no two backups hold the same
            # digest, so no prepare quorum can form for any of them.
            fake = ClientRequest(
                request_id=request.request_id,
                payload=request.payload + bytes([idx % 256]),
            )
            msg = PrePrepare(view=self.view, sequence=self.sequence, request=fake)
            self.network.send(self.node_id, peer, msg)


class PBFTCluster:
    """A 3f+1 PBFT cluster over a fully connected round network."""

    def __init__(self, f: int = 1, view_change_timeout: int = 6):
        self.f = f
        self.n = 3 * f + 1
        self.topology = fully_connected_topology(self.n)
        self.network = RoundNetwork(self.topology)
        self.replicas: List[PBFTReplica] = []
        for node in range(self.n):
            replica = PBFTReplica(self.n, f, view_change_timeout)
            self.network.attach(node, replica)
            self.replicas.append(replica)
        self._next_request = 0

    def submit(self, payload: bytes) -> int:
        """Submit a client request to every replica (clients multicast)."""
        self._next_request += 1
        request = ClientRequest(request_id=self._next_request, payload=payload)
        for replica in self.replicas:
            if not self.network.is_crashed(replica.node_id):
                replica.submit(request, self.network.round_no)
        return self._next_request

    def run(self, rounds: int) -> None:
        self.network.run(rounds)

    def crash(self, node_id: int) -> None:
        self.network.crash_node(node_id)

    def make_byzantine_silent(self, node_id: int) -> None:
        """A Byzantine replica that participates in nothing."""
        self.replicas[node_id].byzantine = True

    def make_byzantine_equivocating_leader(self, node_id: int) -> None:
        """A Byzantine leader that proposes conflicting requests."""
        self.replicas[node_id].equivocating_leader = True

    def correct_replicas(self) -> List[PBFTReplica]:
        return [
            r
            for r in self.replicas
            if not r.byzantine
            and not r.equivocating_leader
            and not self.network.is_crashed(r.node_id)
        ]

    def executed_logs_consistent(self) -> bool:
        """Safety: correct replicas' executed logs are prefixes of another."""
        logs = [r.executed for r in self.correct_replicas()]
        longest = max(logs, key=len, default=[])
        return all(log == longest[: len(log)] for log in logs)

    def all_executed(self, request_id: int) -> bool:
        return all(
            any(rid == request_id for rid, _p in r.executed)
            for r in self.correct_replicas()
        )
