"""Round-synchronous network simulator.

The simulator embodies the system model of paper S2.2-S2.3: a synchronous
network of buses and point-to-point links whose capacities are known, with a
hardware bandwidth guardian that prevents any node from exceeding its share,
and negligible link-layer loss (the paper's testbed saw zero losses in 1e9
packets).  Unreliability comes only from *faulty nodes and links*, which are
driven by the adversary hooks.

Execution model (one round ``r``):

1. every message sent during round ``r-1`` is delivered (deterministic
   order: sorted by (sender, destination, sequence));
2. each node's protocol gets ``on_round_start`` / ``on_receive`` /
   ``on_round_end`` callbacks;
3. bytes are accounted per channel per round.

Protocols send via the :class:`RoundNetwork` handle passed to them; payloads
are serialized through :mod:`repro.net.message` so sizes are real.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.frames import decode_frame
from repro.net.message import Frame, encoded_size
from repro.net.topology import Topology

# An outgoing message as (sender, destination, payload, serialized bytes).
Delivery = Tuple[int, int, Any, int]

# Adversary hook: (round, sender, destination, payload) -> payload' or None.
# Returning None drops the message; returning a different object tampers with
# it.  Only installed for faulty nodes/links -- correct infrastructure never
# loses messages in this model.
TamperHook = Callable[[int, int, int, Any], Optional[Any]]


@dataclass
class ChannelStats:
    """Per-channel byte/message accounting.

    Long campaigns can :meth:`trim` old rounds to bound memory; trimmed
    rounds stay included in the running totals, so ``total_bytes()`` /
    ``total_messages()`` are invariant under trimming.
    """

    bytes_by_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_by_round: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _trimmed_bytes: int = 0
    _trimmed_messages: int = 0

    def bytes_in_round(self, round_no: int) -> int:
        return self.bytes_by_round.get(round_no, 0)

    def messages_in_round(self, round_no: int) -> int:
        return self.messages_by_round.get(round_no, 0)

    def total_bytes(self) -> int:
        return self._trimmed_bytes + sum(self.bytes_by_round.values())

    def total_messages(self) -> int:
        return self._trimmed_messages + sum(self.messages_by_round.values())

    def trim(self, before_round: int) -> int:
        """Drop per-round entries older than ``before_round``; returns how
        many rounds were dropped.  Totals are preserved."""
        stale = [r for r in self.bytes_by_round if r < before_round]
        for r in stale:
            self._trimmed_bytes += self.bytes_by_round.pop(r)
        stale_msgs = [r for r in self.messages_by_round if r < before_round]
        for r in stale_msgs:
            self._trimmed_messages += self.messages_by_round.pop(r)
        return len(set(stale) | set(stale_msgs))


class NodeProtocol:
    """Base class for per-node protocol logic.

    Subclasses override the three callbacks.  ``self.node_id`` and
    ``self.network`` are injected by :meth:`RoundNetwork.attach`.
    """

    node_id: int
    network: "RoundNetwork"

    def on_round_start(self, round_no: int) -> None:
        """Called before any deliveries of ``round_no``."""

    def on_receive(self, round_no: int, sender: int, payload: Any) -> None:
        """Called once per delivered message."""

    def on_round_end(self, round_no: int) -> None:
        """Called after all deliveries; sends made here arrive next round."""


class RoundNetwork:
    """The synchronous network engine.

    Args:
        topology: the physical network.
        guardian_share: fraction of a channel's capacity any single node may
            consume per round (the bus-guardian mechanism of S2.2).  ``None``
            disables enforcement.
    """

    def __init__(self, topology: Topology, guardian_share: Optional[float] = None):
        self.topology = topology
        self.guardian_share = guardian_share
        self.round_no = 0
        self._protocols: Dict[int, NodeProtocol] = {}
        self._outbox: List[Delivery] = []
        self._inbox: List[Delivery] = []
        self._failed_links: Set[FrozenSet[int]] = set()
        self._crashed: Set[int] = set()
        self._tamper_hooks: Dict[int, TamperHook] = {}
        self._seq = 0
        self.channel_stats: Dict[Tuple[str, object], ChannelStats] = {
            chan: ChannelStats() for chan in topology.channels()
        }
        self._guardian_usage: Dict[Tuple[Tuple[str, object], int], int] = defaultdict(int)
        self.dropped_by_guardian = 0
        self.dropped_by_adversary = 0
        # When set, send()/broadcast() append ("u"/"b", sender, target,
        # payload) intents here instead of entering the network, *before*
        # any crash/adversary/guardian processing.  The sharded round engine
        # (repro.net.shard) captures intents in workers and replays them
        # through the real send path in the parent, in ascending node order,
        # so sequence numbers, guardian charging, tamper hooks, and byte
        # accounting are identical to serial execution.
        self._intent_sink: Optional[List[Tuple[str, int, int, Any]]] = None
        self._engine: Optional[Any] = None

    def set_engine(self, engine: Optional[Any]) -> None:
        """Install a round engine (see :class:`repro.net.shard.ShardedRoundEngine`).

        ``None`` restores the default serial execution of :meth:`run_round`."""
        self._engine = engine

    # -- setup --------------------------------------------------------------

    def attach(self, node_id: int, protocol: NodeProtocol) -> None:
        if node_id not in self.topology.nodes:
            raise ValueError(f"unknown node {node_id}")
        protocol.node_id = node_id
        protocol.network = self
        self._protocols[node_id] = protocol

    def protocol(self, node_id: int) -> NodeProtocol:
        return self._protocols[node_id]

    # -- adversary / fault controls ------------------------------------------

    def _check_endpoints(self, *node_ids: int) -> None:
        """Fault injections must name real nodes; a typo'd id would
        otherwise record a silent no-op fault and skew every downstream
        detection/recovery measurement."""
        for node_id in node_ids:
            if not self.topology.has_node(node_id):
                raise ValueError(f"unknown node {node_id}")

    def fail_link(self, a: int, b: int) -> None:
        """Cut the direct connection between two nodes (link fault)."""
        self._check_endpoints(a, b)
        self._failed_links.add(frozenset((a, b)))

    def heal_link(self, a: int, b: int) -> None:
        self._check_endpoints(a, b)
        self._failed_links.discard(frozenset((a, b)))

    def crash_node(self, node_id: int) -> None:
        """Silence a node entirely (crash fault)."""
        self._check_endpoints(node_id)
        self._crashed.add(node_id)

    def revive_node(self, node_id: int) -> None:
        """Bring a crashed node back (operator repair)."""
        self._check_endpoints(node_id)
        self._crashed.discard(node_id)

    def set_tamper_hook(self, node_id: int, hook: Optional[TamperHook]) -> None:
        """Install an adversary hook on all messages *sent by* ``node_id``."""
        if hook is None:
            self._tamper_hooks.pop(node_id, None)
        else:
            self._tamper_hooks[node_id] = hook

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def link_failed(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._failed_links

    # -- sending --------------------------------------------------------------

    def send(self, sender: int, destination: int, payload: Any) -> None:
        """Queue a unicast message for delivery next round.

        The message is charged to the channel that directly connects sender
        and destination; sending to a non-neighbor raises (protocols must
        relay explicitly -- that is the whole point of the forwarding layer).
        """
        if self._intent_sink is not None:
            self._intent_sink.append(("u", sender, destination, payload))
            return
        if sender in self._crashed:
            return
        channel = self.topology.channel_between(sender, destination)
        payload = self._apply_adversary(sender, destination, payload)
        if payload is None:
            return
        size = encoded_size(payload)
        if not self._charge(channel, sender, size):
            self.dropped_by_guardian += 1
            return
        if frozenset((sender, destination)) in self._failed_links:
            return  # the link is physically dead; bytes were still radiated
        self._enqueue(sender, destination, payload)

    def broadcast(self, sender: int, bus_id: int, payload: Any) -> None:
        """Broadcast on a bus: one transmission, delivered to every member.

        This is the bus optimization of S3.5: a single copy of the heartbeat
        is charged to the shared medium rather than one copy per neighbor.
        """
        if self._intent_sink is not None:
            self._intent_sink.append(("b", sender, bus_id, payload))
            return
        if sender in self._crashed:
            return
        bus = self.topology.buses[bus_id]
        if sender not in bus.members:
            raise ValueError(f"node {sender} is not on bus {bus_id}")
        size = None
        for member in sorted(bus.members):
            if member == sender:
                continue
            delivered = self._apply_adversary(sender, member, payload)
            if delivered is None:
                continue
            if size is None:
                # Charge the medium once per broadcast (not per recipient).
                size = encoded_size(delivered)
                if not self._charge(("bus", bus_id), sender, size):
                    self.dropped_by_guardian += 1
                    return
            if frozenset((sender, member)) in self._failed_links:
                continue
            self._enqueue(sender, member, delivered)

    def _enqueue(self, sender: int, destination: int, payload: Any) -> None:
        """Final admission of a message into next round's deliveries.

        Both :meth:`send` and :meth:`broadcast` funnel through here after
        guardian charging, adversary hooks, and link-failure checks; the
        chaos layer (:mod:`repro.chaos.impairments`) overrides this single
        point to impair traffic without touching the accounting above.
        """
        self._outbox.append((sender, destination, payload, self._seq))
        self._seq += 1

    def _apply_adversary(self, sender: int, destination: int, payload: Any) -> Optional[Any]:
        hook = self._tamper_hooks.get(sender)
        if hook is None:
            return payload
        result = hook(self.round_no, sender, destination, payload)
        if result is None:
            self.dropped_by_adversary += 1
        return result

    def _charge(self, channel: Tuple[str, object], sender: int, size: int) -> bool:
        """Account bytes; returns False if the bandwidth guardian drops it."""
        stats = self.channel_stats[channel]
        if self.guardian_share is not None:
            if channel[0] == "p2p":
                capacity = self.topology.p2p_links[channel[1]]
            else:
                capacity = self.topology.buses[channel[1]].capacity
            key = (channel, sender)
            budget = int(capacity * self.guardian_share)
            if self._guardian_usage[key] + size > budget:
                return False
            self._guardian_usage[key] += size
        stats.bytes_by_round[self.round_no] += size
        stats.messages_by_round[self.round_no] += 1
        return True

    # -- execution -------------------------------------------------------------

    def _begin_round(self) -> None:
        """Hook called after the round counter advances, before delivery.

        The chaos layer uses it to release delayed messages and advance
        link-flap/partition schedules; the base network does nothing.
        """

    def _collect_deliveries(self) -> List[Delivery]:
        """The round's deliveries in their final order (deterministic:
        sorted by sender, destination, sequence).  The chaos layer
        overrides this to apply within-round reordering."""
        return sorted(self._inbox, key=lambda d: (d[0], d[1], d[3]))

    def run_round(self) -> None:
        """Execute one full round."""
        self.round_no += 1
        self._guardian_usage.clear()
        self._begin_round()
        self._inbox, self._outbox = self._outbox, []
        # Deliveries are fixed before any node steps: _collect_deliveries
        # only reads the inbox (and, in the chaos layer, a round-keyed RNG),
        # so hoisting it out of the delivery loop is behavior-preserving and
        # gives the engine hook one well-defined batch per round.
        deliveries = self._collect_deliveries()
        if self._engine is not None:
            self._engine.step_round(self, deliveries)
            return
        for node_id in self.topology.nodes:
            if node_id in self._crashed:
                continue
            proto = self._protocols.get(node_id)
            if proto is not None:
                proto.on_round_start(self.round_no)
        for sender, destination, payload, _seq in deliveries:
            if destination in self._crashed:
                continue
            proto = self._protocols.get(destination)
            if proto is not None:
                if type(payload) is Frame:
                    # A frame replayed by the sharded engine whose delivery
                    # round runs serially (e.g. after the engine detached).
                    payload = decode_frame(payload.data)
                proto.on_receive(self.round_no, sender, payload)
        for node_id in self.topology.nodes:
            if node_id in self._crashed:
                continue
            proto = self._protocols.get(node_id)
            if proto is not None:
                proto.on_round_end(self.round_no)

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # -- metrics -----------------------------------------------------------------

    def bytes_in_round(self, round_no: int) -> int:
        return sum(s.bytes_in_round(round_no) for s in self.channel_stats.values())

    def per_link_bytes(self, round_no: int) -> Dict[Tuple[str, object], int]:
        return {
            chan: stats.bytes_in_round(round_no)
            for chan, stats in self.channel_stats.items()
        }

    def mean_link_bytes(self, round_no: int) -> float:
        per_link = self.per_link_bytes(round_no)
        if not per_link:
            return 0.0
        return sum(per_link.values()) / len(per_link)
