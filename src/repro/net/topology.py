"""Network topologies: point-to-point links, buses, and generators.

CPS networks are not fully connected (paper S2.2, Fig. 2): they mix buses
(limited broadcast domains) and point-to-point links, so some node pairs can
only communicate through relays, and an adversary may be able to partition
the system.  This module models such topologies and provides:

* the synthetic Erdos-Renyi G(n, p) topologies of S5.1 (p = 3 ln n / n),
* the chemical-plant example of Fig. 1 (2 sensors, 4 controllers,
  4 actuators),
* an approximation of the Volvo XC90 on-board network of Fig. 2
  (38 ECUs, 13 buses: HCAN, LCAN, MOST, 10 LIN),
* the *max-fail distance* D_{i,j} of S3.5 -- the maximum, over all failure
  scenarios with at most fmax removed nodes that leave i and j connected,
  of the shortest-path length between i and j.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

ROLE_CONTROLLER = "controller"
ROLE_SENSOR = "sensor"
ROLE_ACTUATOR = "actuator"

# Default link capacities in bytes/round; generous defaults reflecting the
# paper's note that CPS networks range from 5 Mbps CAN to 1 Gbps Ethernet.
DEFAULT_LINK_CAPACITY = 1_000_000


@dataclass(frozen=True)
class Bus:
    """A broadcast bus segment.

    Attributes:
        bus_id: unique identifier among buses of this topology.
        members: node ids attached to the bus.
        capacity: shared capacity in bytes per round.
        name: human-readable label (e.g. ``"HCAN"``).
    """

    bus_id: int
    members: FrozenSet[int]
    capacity: int = DEFAULT_LINK_CAPACITY
    name: str = ""


class Topology:
    """A network of nodes joined by point-to-point links and buses."""

    def __init__(self) -> None:
        self._roles: Dict[int, str] = {}
        self._names: Dict[int, str] = {}
        self._p2p: Dict[FrozenSet[int], int] = {}  # link -> capacity
        self._buses: Dict[int, Bus] = {}
        self._graph: Optional[nx.Graph] = None

    # -- construction -----------------------------------------------------

    def add_node(self, node_id: int, role: str = ROLE_CONTROLLER, name: str = "") -> None:
        if node_id in self._roles:
            raise ValueError(f"duplicate node id {node_id}")
        self._roles[node_id] = role
        self._names[node_id] = name or f"N{node_id}"
        self._graph = None

    def add_link(self, a: int, b: int, capacity: int = DEFAULT_LINK_CAPACITY) -> None:
        if a == b:
            raise ValueError("self-links are not allowed")
        for n in (a, b):
            if n not in self._roles:
                raise ValueError(f"unknown node {n}")
        self._p2p[frozenset((a, b))] = capacity
        self._graph = None

    def add_bus(
        self, members: Iterable[int], capacity: int = DEFAULT_LINK_CAPACITY, name: str = ""
    ) -> int:
        member_set = frozenset(members)
        if len(member_set) < 2:
            raise ValueError("a bus needs at least two members")
        for n in member_set:
            if n not in self._roles:
                raise ValueError(f"unknown node {n}")
        bus_id = len(self._buses)
        self._buses[bus_id] = Bus(
            bus_id=bus_id, members=member_set, capacity=capacity, name=name
        )
        self._graph = None
        return bus_id

    # -- inspection --------------------------------------------------------

    @property
    def nodes(self) -> List[int]:
        return sorted(self._roles)

    @property
    def controllers(self) -> List[int]:
        return [n for n in self.nodes if self._roles[n] == ROLE_CONTROLLER]

    @property
    def sensors(self) -> List[int]:
        return [n for n in self.nodes if self._roles[n] == ROLE_SENSOR]

    @property
    def actuators(self) -> List[int]:
        return [n for n in self.nodes if self._roles[n] == ROLE_ACTUATOR]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._roles

    def role(self, node_id: int) -> str:
        return self._roles[node_id]

    def name(self, node_id: int) -> str:
        return self._names[node_id]

    def node_by_name(self, name: str) -> int:
        for node_id, node_name in self._names.items():
            if node_name == name:
                return node_id
        raise KeyError(name)

    @property
    def p2p_links(self) -> Dict[FrozenSet[int], int]:
        return dict(self._p2p)

    @property
    def buses(self) -> Dict[int, Bus]:
        return dict(self._buses)

    def buses_of(self, node_id: int) -> List[Bus]:
        return [bus for bus in self._buses.values() if node_id in bus.members]

    def graph(self) -> nx.Graph:
        """The connectivity graph: buses contribute cliques over members."""
        if self._graph is None:
            g = nx.Graph()
            g.add_nodes_from(self._roles)
            for link in self._p2p:
                a, b = tuple(link)
                g.add_edge(a, b)
            for bus in self._buses.values():
                for a, b in itertools.combinations(sorted(bus.members), 2):
                    g.add_edge(a, b)
            self._graph = g
        return self._graph

    def neighbors(self, node_id: int) -> List[int]:
        return sorted(self.graph().neighbors(node_id))

    def degree(self, node_id: int) -> int:
        return self.graph().degree(node_id)

    def max_degree_node(self) -> int:
        g = self.graph()
        return max(g.nodes, key=lambda n: (g.degree(n), -n))

    def are_neighbors(self, a: int, b: int) -> bool:
        return self.graph().has_edge(a, b)

    def channels(self) -> List[Tuple[str, object]]:
        """All logical channels for bandwidth accounting.

        Returns a list of ("p2p", frozenset{a,b}) and ("bus", bus_id) tags.
        """
        chans: List[Tuple[str, object]] = [("p2p", link) for link in sorted(self._p2p, key=sorted)]
        chans.extend(("bus", bus_id) for bus_id in sorted(self._buses))
        return chans

    def channel_between(self, a: int, b: int) -> Tuple[str, object]:
        """The channel that directly connects ``a`` and ``b``.

        Point-to-point links take precedence over a shared bus.  Raises
        KeyError when the nodes are not directly connected.
        """
        link = frozenset((a, b))
        if link in self._p2p:
            return ("p2p", link)
        for bus in self._buses.values():
            if a in bus.members and b in bus.members:
                return ("bus", bus.bus_id)
        raise KeyError(f"nodes {a} and {b} are not directly connected")

    def is_connected(self) -> bool:
        g = self.graph()
        return g.number_of_nodes() > 0 and nx.is_connected(g)

    def diameter(self) -> int:
        return nx.diameter(self.graph())

    def shortest_path_length(self, a: int, b: int) -> int:
        return nx.shortest_path_length(self.graph(), a, b)

    # -- max-fail distance (paper S3.5) -------------------------------------

    def max_fail_distance(
        self, a: int, b: int, fmax: int, exact_limit: int = 100_000, samples: int = 400,
        seed: int = 0,
    ) -> int:
        """D_{a,b}: worst-case shortest-path length with <= fmax nodes removed.

        Scenarios that disconnect ``a`` from ``b`` are skipped (in those the
        protocol's partition rule applies instead).  Exhaustive over all
        removal sets when the scenario count is within ``exact_limit``;
        otherwise falls back to a randomized adversarial heuristic that
        preferentially removes nodes on current shortest paths.
        """
        g = self.graph()
        candidates = [n for n in g.nodes if n not in (a, b)]
        total = sum(math.comb(len(candidates), k) for k in range(fmax + 1))
        if total <= exact_limit:
            return self._max_fail_exact(g, a, b, candidates, fmax)
        return self._max_fail_heuristic(g, a, b, candidates, fmax, samples, seed)

    @staticmethod
    def _max_fail_exact(
        g: nx.Graph, a: int, b: int, candidates: List[int], fmax: int
    ) -> int:
        best = nx.shortest_path_length(g, a, b)
        for k in range(1, fmax + 1):
            for removed in itertools.combinations(candidates, k):
                h = g.copy()
                h.remove_nodes_from(removed)
                if nx.has_path(h, a, b):
                    best = max(best, nx.shortest_path_length(h, a, b))
        return best

    @staticmethod
    def _max_fail_heuristic(
        g: nx.Graph,
        a: int,
        b: int,
        candidates: List[int],
        fmax: int,
        samples: int,
        seed: int,
    ) -> int:
        rng = random.Random(seed)
        best = nx.shortest_path_length(g, a, b)
        for _ in range(samples):
            h = g.copy()
            for _ in range(fmax):
                try:
                    path = nx.shortest_path(h, a, b)
                except nx.NetworkXNoPath:
                    break
                interior = [n for n in path[1:-1]]
                pool = interior if interior and rng.random() < 0.8 else [
                    n for n in candidates if n in h
                ]
                if not pool:
                    break
                victim = rng.choice(pool)
                trial = h.copy()
                trial.remove_node(victim)
                if nx.has_path(trial, a, b):
                    h = trial
            if nx.has_path(h, a, b):
                best = max(best, nx.shortest_path_length(h, a, b))
        return best

    def max_fail_distance_bound(self, fmax: int, **kwargs) -> int:
        """D_max = max over all node pairs of D_{i,j}."""
        best = 0
        for a, b in itertools.combinations(self.nodes, 2):
            best = max(best, self.max_fail_distance(a, b, fmax, **kwargs))
        return best


def erdos_renyi_topology(
    n: int,
    seed: int = 0,
    p: Optional[float] = None,
    capacity: int = DEFAULT_LINK_CAPACITY,
) -> Topology:
    """Random connected topology per the paper's simulation setup (S5.1).

    Uses G(n, p) with p = 3 ln n / n by default, resampling until connected
    (the paper's choice of p makes connectivity overwhelmingly likely).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if p is None:
        p = min(1.0, 3.0 * math.log(n) / n)
    attempt = 0
    while True:
        g = nx.gnp_random_graph(n, p, seed=seed + 7919 * attempt)
        if nx.is_connected(g):
            break
        attempt += 1
        if attempt > 1000:
            raise RuntimeError("could not sample a connected topology")
    topo = Topology()
    for node in range(n):
        topo.add_node(node, role=ROLE_CONTROLLER)
    for a, b in g.edges:
        topo.add_link(a, b, capacity=capacity)
    return topo


def line_topology(n: int) -> Topology:
    """A path of n controllers -- useful in tests and worst-case analyses."""
    topo = Topology()
    for node in range(n):
        topo.add_node(node)
    for node in range(n - 1):
        topo.add_link(node, node + 1)
    return topo


def ring_topology(n: int) -> Topology:
    """A cycle of n controllers."""
    topo = line_topology(n)
    if n > 2:
        topo.add_link(n - 1, 0)
    return topo


def grid_topology(rows: int, cols: int, capacity: int = DEFAULT_LINK_CAPACITY) -> Topology:
    """A rows x cols mesh of controllers (node id = row * cols + col).

    A regular sparse topology with a known diameter (rows + cols - 2),
    used by the fast-path benchmark for reproducible 20-node runs.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    topo = Topology()
    for node in range(rows * cols):
        topo.add_node(node)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_link(node, node + 1, capacity=capacity)
            if r + 1 < rows:
                topo.add_link(node, node + cols, capacity=capacity)
    return topo


def fully_connected_topology(n: int) -> Topology:
    """A clique of n controllers."""
    topo = Topology()
    for node in range(n):
        topo.add_node(node)
    for a, b in itertools.combinations(range(n), 2):
        topo.add_link(a, b)
    return topo


def chemical_plant_topology() -> Topology:
    """The Fig. 1 industrial control system.

    Two sensors (pressure gauge S1, temperature sensor S2), four controllers
    (N1..N4), and four actuators (pressure alarm A1, burner A2, valve A3,
    monitor A4).  The paper's testbed (S4.1) replaces the buses with GbE
    switches; we keep them as buses so the bus optimizations are exercised.
    Sensors and actuators sit on buses shared by at least two controllers so
    that no single controller is a single point of failure (cf. S5.7's note
    that moving sensors/actuators onto shared buses "is critical to enabling
    recovery").
    """
    topo = Topology()
    names = {
        0: ("N1", ROLE_CONTROLLER),
        1: ("N2", ROLE_CONTROLLER),
        2: ("N3", ROLE_CONTROLLER),
        3: ("N4", ROLE_CONTROLLER),
        4: ("S1", ROLE_SENSOR),
        5: ("S2", ROLE_SENSOR),
        6: ("A1", ROLE_ACTUATOR),
        7: ("A2", ROLE_ACTUATOR),
        8: ("A3", ROLE_ACTUATOR),
        9: ("A4", ROLE_ACTUATOR),
    }
    for node_id, (name, role) in names.items():
        topo.add_node(node_id, role=role, name=name)
    # Controller mesh (2x2 grid with one diagonal for resilience).
    topo.add_link(0, 1)
    topo.add_link(2, 3)
    topo.add_link(0, 2)
    topo.add_link(1, 3)
    topo.add_link(0, 3)
    # Sensor and actuator buses include every controller, so any surviving
    # controller can reach them (the paper moves sensors/actuators onto
    # shared buses for exactly this reason, S5.7).
    topo.add_bus([4, 5, 0, 1, 2, 3], name="sensor-bus")
    topo.add_bus([6, 7, 8, 9, 0, 1, 2, 3], name="actuator-bus")
    return topo


# ECU names on each Volvo XC90 bus, following Fig. 2 (from Nolte's share-driven
# scheduling study of the XC90 network).  The exact attachment of the 10 LIN
# sub-buses is approximated: each LIN hangs off one mainline ECU and carries
# one low-power ECU.
_XC90_HCAN = [
    "CEM", "SAS", "BCM", "ECM", "TCM", "SUM", "DRM", "SRS", "DIM", "SWM",
    "PSM", "DDM", "AEM", "REM", "AUD",
]
_XC90_LCAN = ["CCM", "PHM", "ICM", "UEM", "PDM", "ATM", "SUB", "CPM", "SHM"]
_XC90_MOST = ["MMM", "MP1", "MP2", "MMS", "RSM", "SCM", "SRM", "GSM", "LSM"]
_XC90_LIN_HOSTS = ["CEM", "DDM", "PSM", "SWM", "REM", "UEM", "PDM", "CCM", "ICM", "DIM"]
_XC90_LIN_NODES = ["LP0", "LP1", "LP2", "LP3", "LP4"]


def volvo_xc90_topology(include_devices: bool = False) -> Topology:
    """Approximation of the Volvo XC90 on-board network (Fig. 2).

    38 compute nodes and 13 buses (1 HCAN, 1 LCAN, 1 MOST, 10 LIN), matching
    the counts the paper states in S5.7.  CEM bridges HCAN and LCAN; ICM
    bridges LCAN and MOST, as in Fig. 2.  Five low-power ECUs sit on LIN
    sub-buses; the remaining LIN buses carry sensors/actuators and connect a
    mainline ECU to the shared medium (we attach the first five LIN buses'
    low-power nodes and leave the rest as two-member stubs between mainline
    ECUs, since Fig. 2 shows LIN primarily fanning out to peripherals).

    With ``include_devices`` a wheel-speed sensor (``SPD``) and the engine
    actuator (``ENG``) are attached to the HCAN bus -- the paper's S5.7
    modification ("we moved the sensors and actuators directly onto the CAN
    buses... critical to enabling recovery").
    """
    topo = Topology()
    ecu_names = list(dict.fromkeys(_XC90_HCAN + _XC90_LCAN + _XC90_MOST)) + _XC90_LIN_NODES
    name_to_id: Dict[str, int] = {}
    for node_id, name in enumerate(ecu_names):
        topo.add_node(node_id, role=ROLE_CONTROLLER, name=name)
        name_to_id[name] = node_id
    assert len(ecu_names) == 38, f"expected 38 ECUs, got {len(ecu_names)}"

    # CAN buses are 5 Mbps-class; MOST is faster; LIN is slow.
    can_capacity = 62_500  # 500 kbps HCAN at 10ms rounds ~ 625 B/ms
    lin_capacity = 2_500
    most_capacity = 250_000
    topo.add_bus([name_to_id[n] for n in _XC90_HCAN], capacity=can_capacity, name="HCAN")
    lcan_members = [name_to_id[n] for n in _XC90_LCAN] + [name_to_id["CEM"]]
    topo.add_bus(lcan_members, capacity=can_capacity, name="LCAN")
    most_members = [name_to_id[n] for n in _XC90_MOST] + [name_to_id["ICM"]]
    topo.add_bus(most_members, capacity=most_capacity, name="MOST")
    # Ten LIN buses: the first five carry a low-power ECU, the rest join two
    # mainline ECUs (stub sub-networks for door/seat peripherals).
    for i, host in enumerate(_XC90_LIN_HOSTS):
        if i < len(_XC90_LIN_NODES):
            members = [name_to_id[host], name_to_id[_XC90_LIN_NODES[i]]]
        else:
            partner = _XC90_LIN_HOSTS[(i + 3) % len(_XC90_LIN_HOSTS)]
            members = [name_to_id[host], name_to_id[partner]]
        topo.add_bus(members, capacity=lin_capacity, name=f"LIN{i}")
    if include_devices:
        spd = len(ecu_names)
        eng = spd + 1
        topo.add_node(spd, role=ROLE_SENSOR, name="SPD")
        topo.add_node(eng, role=ROLE_ACTUATOR, name="ENG")
        # Rebuild bus 0 (HCAN) membership is immutable; attach the devices
        # via a dedicated device bus bridging them onto the HCAN ECUs.
        hcan_ids = [name_to_id[n] for n in _XC90_HCAN]
        topo.add_bus([spd, eng] + hcan_ids, capacity=can_capacity, name="HCAN-dev")
    return topo
