"""Network substrate: topologies, wire codec, and the round-based simulator.

REBOUND targets synchronous CPS networks (paper S2.2-S2.3): a mix of buses
and point-to-point links with known capacities, hardware bandwidth guardians,
and negligible link-layer loss.  This package provides:

* :mod:`repro.net.topology` -- graph model with point-to-point links and bus
  segments, generators for the paper's topologies (Erdos-Renyi synthetic
  networks, the Fig. 1 chemical plant, the Fig. 2 Volvo XC90 network), and
  max-fail-distance computation (paper S3.5).
* :mod:`repro.net.message` -- deterministic binary codec so that all
  bandwidth and storage numbers are measured over real serialized bytes.
* :mod:`repro.net.network` -- the round-synchronous network simulator with
  per-link byte accounting, bus broadcast, link failures, partitions, and a
  bandwidth guardian.
"""

from repro.net.topology import Bus, Topology, erdos_renyi_topology
from repro.net.message import decode, encode, encoded_size, register_message
from repro.net.network import NodeProtocol, RoundNetwork

__all__ = [
    "Bus",
    "Topology",
    "erdos_renyi_topology",
    "encode",
    "decode",
    "encoded_size",
    "register_message",
    "NodeProtocol",
    "RoundNetwork",
]
