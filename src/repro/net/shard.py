"""Sharded round engine: deterministic fan-out of node stepping.

At scale (hundreds of controllers) the serial per-node loop in
:meth:`repro.net.network.RoundNetwork.run_round` dominates wall clock.
This module steps nodes in parallel across ``ProcessPoolExecutor`` workers
while keeping transcripts **byte-identical** to serial execution:

1.  *Stable shard assignment.*  Sorted controllers are dealt round-robin
    over ``workers`` shards at engine start; devices, fault-scenario
    targets, and any explicitly pinned nodes stay parent-resident.  Each
    shard gets its own single-process pool, forked after the system is
    fully built, so workers inherit their resident nodes (and the whole
    directory/mode tree) copy-on-write -- the same fork-inherit pattern as
    :mod:`repro.sched.modegen`.

2.  *Capture/replay sends.*  Every node sends only from ``on_round_end``.
    Workers (and the parent, for its own residents) run the three phases
    with the network's *intent sink* armed: ``send()``/``broadcast()``
    record ``(kind, sender, target, payload)`` and return before any
    crash/adversary/guardian processing.  After the join, the parent
    replays all captured intents through the real send path in ascending
    node order -- exactly the order the serial engine would have produced
    -- so sequence numbering, guardian charging, tamper hooks, byte
    accounting, and the chaos layer's seq-keyed impairment RNG behave
    identically.  Within a node, intent order is the node's own emission
    order, also identical to serial.

3.  *Wire frames, not pickles* (``frame_ipc=True``, the default).  Each
    shard's per-round deliveries cross the process boundary as one flat
    buffer of canonical codec frames (:mod:`repro.net.frames`): unique
    frames interned by value plus one small header per delivery, so a
    bus broadcast (or a value-equal per-neighbor fan-out) into a shard
    ships one frame no matter how many recipients it has.  Workers decode
    through a bounded per-process frame cache; captured intents return in
    the same framed format and the parent replays them as
    :class:`~repro.net.message.Frame` handles -- ``encode(Frame(b)) == b``,
    so nothing is encoded twice and guardian/chaos byte accounting is
    unchanged.  ``frame_ipc=False`` falls back to self-pickled batches
    (measured the same way) for ablation.

4.  *Summaries, not objects.*  After each round a worker returns a compact
    :class:`NodeSummary` per resident; the parent exposes them through
    :class:`ShardNodeView` proxies so monitors/metrics (`fault_pattern`,
    evidence digest, `current_schedule` via the shared mode tree, counter
    totals, buffer lengths) read the same values they would from real
    nodes.  Heavyweight reads (evidence items, storage bytes) are explicit
    RPCs to the owning worker; writes (``submit_evidence``) are *deferred*
    -- queued per shard and flushed with the next round's batch or by the
    first blocking read (read-your-writes), so a burst of submissions
    costs one IPC round-trip instead of one each.  Worker-side call
    failures surface as typed, picklable :class:`WorkerCallError` carrying
    the node id, op, and the worker traceback.

5.  *Telemetry hygiene and attribution.*  Worker initializers zero every
    registered telemetry component, so per-worker cache stats count
    post-fork work only; each round's snapshot rides back with the results
    and :func:`ShardedRoundEngine.merged_stats` folds them into the
    parent's registry snapshot without double counting.  A
    :class:`~repro.obs.profiler.RoundProfiler` (telemetry component
    ``round_profile``) decomposes every engine round into
    encode/ipc/step/replay/merge wall-clock, and component ``engine_ipc``
    counts frames, interning hits, and bytes shipped.

6.  *Shipping flight recorders.*  When the parent had an active
    :class:`~repro.obs.recorder.FlightRecorder` at fork, each worker
    installs its own recorder instead of going blind: worker-resident
    nodes emit locally, the ring is drained at the end of every
    ``_worker_round`` into an event frame batch (same columnar + interning
    + zlib plane as deliveries), and the parent-side
    :class:`~repro.obs.collector.TraceCollector` absorbs it into the
    parent ring *before* replay.  Per-node ``seq`` counters are max-merged
    across the boundary in both directions (parent snapshot ships with
    each batch; worker snapshot returns with each result), which keeps the
    ``(round, node, seq)`` numbering byte-identical to the serial engine:
    within one round only one side emits for a given node at a time, so
    each side's counter is an exact lower bound.  Known limit: a node
    whose *durable store* emits persist events in the same round as a
    chaos impairment on its sends would number differently (durable emits
    run worker-side before the parent's replay-time impairment emits);
    the identity cells run durability off, and the divergence affects
    ``seq`` only, never transcripts.  Recalled nodes drain with the
    ``release`` barrier and shutdown drains every shard, so no event is
    lost or shipped twice -- events drained before a failed future stay
    worker-side and ride the next successful batch.

Shared module-level caches (verify cache, coverage DP, path cache, codec
memo, frame cache) diverge per worker but are *fidelity-neutral*: they
cache pure functions and never feed transcripts or logical counters.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.frames import (
    DeliveryWriter,
    IntentWriter,
    decode_frame,
    unpack_deliveries,
    unpack_intents,
)
from repro.net.message import Frame, encode
from repro.obs import recorder as _flight
from repro.obs import registry as _telemetry
from repro.obs.collector import TraceCollector, pack_events
from repro.obs.profiler import RoundProfiler
from repro.obs.recorder import FlightRecorder

WORKERS_ENV = "REBOUND_SCALE_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REBOUND_SCALE_WORKERS``,
    else 0 (serial).  Values <= 1 mean the serial engine."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 0
    return max(0, int(workers))


class WorkerCallError(Exception):
    """A worker-side node operation failed.

    ``ProcessPoolExecutor`` pickles exceptions across the boundary, which
    strips chained context and leaves the parent with an opaque one-liner.
    This carries the node id, the op, and the full worker-side traceback
    text, and pickles losslessly via ``__reduce__``.
    """

    def __init__(
        self,
        node_id: int,
        op: str,
        cause_type: str,
        cause_message: str,
        worker_traceback: str = "",
    ):
        super().__init__(
            f"worker call {op!r} on node {node_id} failed: "
            f"{cause_type}: {cause_message}"
        )
        self.node_id = node_id
        self.op = op
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.worker_traceback = worker_traceback

    def __reduce__(self):
        return (
            WorkerCallError,
            (
                self.node_id,
                self.op,
                self.cause_type,
                self.cause_message,
                self.worker_traceback,
            ),
        )


def _call_error(node_id: int, op: str, exc: BaseException) -> WorkerCallError:
    return WorkerCallError(
        node_id, op, type(exc).__name__, str(exc), traceback.format_exc()
    )


# -- per-round node summaries ---------------------------------------------------


@dataclass
class NodeSummary:
    """Everything monitors/metrics read from a node every round, shipped
    back from the owning worker after each round."""

    scenario: Any
    has_schedule: bool
    fault_pattern: Any
    evidence_digest: bytes
    accused: FrozenSet[int]
    evidence_len: int
    store_len: int
    pending_rule_b: int
    replica_lens: Dict[Tuple[int, int], Tuple[int, int, int]]
    pending_cap: Optional[int]
    counters: Dict[str, Any]
    mode_switches: List[Tuple[int, Any]]


def summarize_node(node: Any) -> NodeSummary:
    fwd = node.forwarding
    aud = node.auditing
    return NodeSummary(
        scenario=node.current_scenario,
        has_schedule=node.current_schedule is not None,
        fault_pattern=fwd.fault_pattern,
        evidence_digest=fwd.evidence.digest(),
        accused=frozenset(fwd.evidence.accused_nodes()),
        evidence_len=len(fwd.evidence),
        store_len=len(fwd.store),
        pending_rule_b=len(fwd._pending_rule_b),
        replica_lens={
            key: (len(rep.bundles), len(rep.auths), len(rep.peer_digests))
            for key, rep in aud._replicas.items()
        },
        pending_cap=aud.pending_cap,
        counters={dom: copy.copy(c) for dom, c in node.crypto.counters.items()},
        mode_switches=list(node.mode_switches),
    )


# -- worker side ----------------------------------------------------------------


@dataclass
class _SpawnState:
    network: Any
    resident: FrozenSet[int]
    #: ring capacity for the worker's shipping recorder, or None when the
    #: parent had no active recorder at fork (workers then run blind, as
    #: before -- zero recording overhead).
    recorder_capacity: Optional[int] = None


@dataclass
class _WorkerState:
    network: Any
    resident: Set[int]
    sink: List[Tuple[str, int, int, Any]] = field(default_factory=list)


#: One round's IPC batch: ``("frames", buffer)`` with the flat frame layout
#: of :mod:`repro.net.frames`, or ``("pickle", blob)`` in fallback mode.
#: Deliveries carry ``(sender, dest, payload)``; intents carry
#: ``(kind, sender, target, payload)``.
Batch = Tuple[str, bytes]

#: A deferred worker call: (node_id, op, args).
Call = Tuple[int, str, Tuple[Any, ...]]


@dataclass
class _RoundResult:
    intents: Batch
    summaries: Dict[int, NodeSummary]
    telemetry: Dict[str, Dict[str, Any]]
    encode_s: float
    decode_s: float
    step_s: float
    intent_bytes: int
    intent_raw_bytes: int
    frames_shipped: int
    interned_hits: int
    #: drained flight-recorder events (None when the worker runs blind).
    events: Optional[Batch] = None
    event_count: int = 0
    event_raw_bytes: int = 0
    event_interned: int = 0
    #: the worker recorder's per-node seq counters after this round.
    seqs: Dict[int, int] = field(default_factory=dict)
    #: cumulative worker-ring evictions (events lost before shipping).
    dropped: int = 0


# Set in the parent immediately before each pool's priming submit forks the
# worker; the child's initializer copies it into _W.  Never read after start.
_SPAWN: Optional[_SpawnState] = None
_W: Optional[_WorkerState] = None


def _worker_init() -> None:
    global _W
    state = _SPAWN
    assert state is not None, "worker forked without spawn state"
    _W = _WorkerState(network=state.network, resident=set(state.resident))
    # The fork snapshot carries the parent's flight recorder and telemetry
    # counts.  Replace the recorder: when the parent was recording, install
    # a fresh *shipping* recorder (same capacity, empty ring -- the parent
    # keeps the pre-fork events) that _worker_round drains every round;
    # otherwise detach so a blind run stays overhead-free.  Telemetry is
    # zeroed either way so the per-worker stats this engine reports never
    # double-count pre-fork activity.
    if state.recorder_capacity is not None:
        FlightRecorder(capacity=state.recorder_capacity).install()
    else:
        _flight.active = None
    _telemetry.ensure_default_components()
    _telemetry.reset_all()
    # Arm the intent sink permanently: nothing a worker-resident node sends
    # may enter the network here -- the parent replays it.
    _W.network._intent_sink = _W.sink


def _worker_ping() -> bool:
    return _W is not None


def _group_intents(
    sink: List[Tuple[str, int, int, Any]],
) -> Dict[int, List[Tuple[str, int, Any]]]:
    grouped: Dict[int, List[Tuple[str, int, Any]]] = {}
    for kind, sender, target, payload in sink:
        grouped.setdefault(sender, []).append((kind, target, payload))
    return grouped


def _worker_round(
    round_no: int,
    crashed: FrozenSet[int],
    batch: Batch,
    calls: List[Call],
    seq_sync: Optional[Dict[int, int]] = None,
) -> _RoundResult:
    """Run one round's three phases for this worker's resident nodes.

    ``calls`` are the shard's deferred writes, applied *before* any phase
    -- between rounds worker nodes never step, so this is exactly when the
    serial engine would have applied them.  ``seq_sync`` is the parent
    recorder's per-node seq snapshot for ``round_no``: max-merged in first
    so deferred-call and phase emits continue the serial numbering after
    any parent-side emits (fault injections, parent-resident activity)
    earlier in the round.
    """
    w = _W
    assert w is not None
    net = w.network
    net.round_no = round_no
    net._crashed = set(crashed)
    rec = _flight.active
    if rec is not None:
        rec.begin_round(round_no)
        if seq_sync:
            rec.merge_seq(seq_sync)
    if calls:
        _apply_calls(w, calls)
    perf = time.perf_counter
    t0 = perf()
    tag, blob = batch
    if tag == "frames":
        deliveries = [
            (sender, dest, decode_frame(frame))
            for sender, dest, frame in unpack_deliveries(blob)
        ]
    else:
        deliveries = pickle.loads(blob)
    t_decode = perf() - t0
    sink = w.sink
    sink.clear()
    protos = net._protocols
    live = [n for n in sorted(w.resident) if n not in crashed]
    t1 = perf()
    for nid in live:
        protos[nid].on_round_start(round_no)
    for sender, destination, payload in deliveries:
        if destination in crashed or destination not in w.resident:
            continue
        protos[destination].on_receive(round_no, sender, payload)
    if sink:
        # The replay merge orders intents by sending node, which matches
        # serial execution only when every send happens in on_round_end
        # (true for all shipped protocols).  Fail loudly otherwise.
        raise RuntimeError(
            "sharded engine requires protocols to send only from on_round_end"
        )
    for nid in live:
        protos[nid].on_round_end(round_no)
    t_step = perf() - t1
    t2 = perf()
    if tag == "frames":
        writer = IntentWriter()
        for kind, sender, target, payload in sink:
            data = payload.data if type(payload) is Frame else encode(payload)
            writer.add(kind, sender, target, data)
        intents: Batch = ("frames", writer.finish())
        intent_raw = writer.raw_bytes
        frames_shipped = writer.frame_count
        interned_hits = writer.interned_hits
    else:
        intents = (
            "pickle",
            pickle.dumps(list(sink), protocol=pickle.HIGHEST_PROTOCOL),
        )
        intent_raw = len(intents[1])
        frames_shipped = len(sink)
        interned_hits = 0
    events: Optional[Batch] = None
    event_count = event_raw = event_interned = 0
    seqs: Dict[int, int] = {}
    dropped = 0
    if rec is not None:
        drained = rec.drain()
        event_count = len(drained)
        if drained:
            events, event_raw, event_interned = pack_events(
                drained, frame_ipc=(tag == "frames")
            )
        seqs = rec.seq_snapshot()
        dropped = rec.dropped
    t_encode = perf() - t2
    return _RoundResult(
        intents=intents,
        summaries={nid: summarize_node(protos[nid]) for nid in sorted(w.resident)},
        telemetry=_telemetry.stats_snapshot(),
        encode_s=t_encode,
        decode_s=t_decode,
        step_s=t_step,
        intent_bytes=len(intents[1]),
        intent_raw_bytes=intent_raw,
        frames_shipped=frames_shipped,
        interned_hits=interned_hits,
        events=events,
        event_count=event_count,
        event_raw_bytes=event_raw,
        event_interned=event_interned,
        seqs=seqs,
        dropped=dropped,
    )


def _dispatch_call(w: _WorkerState, node_id: int, op: str, args: Tuple[Any, ...]) -> Any:
    node = w.network._protocols[node_id]
    if op == "evidence_items":
        return list(node.forwarding.evidence.items())
    if op == "storage_bytes":
        return node.forwarding.storage_bytes()
    if op == "storage_all":
        return {
            nid: w.network._protocols[nid].forwarding.storage_bytes()
            for nid in sorted(w.resident)
        }
    if op == "submit_evidence":
        node.forwarding.submit_evidence(args[0])
        return summarize_node(node)
    if op == "summarize":
        return summarize_node(node)
    if op == "release":
        # Drop the node from this worker's residency; its local copy goes
        # stale and is never stepped again.  Return the (network-detached)
        # node when the caller wants to adopt it parent-side.  Buffered
        # durable-log records are flushed first: the recall barrier must
        # leave the on-disk chain current before the parent's copy starts
        # appending to it.  The shipping recorder drains for the same
        # reason -- any events the released node emitted since the last
        # round batch must follow it to the parent.
        w.resident.discard(node_id)
        durable = getattr(node, "durable", None)
        if durable is not None:
            durable.flush()
        node.network = None
        return (node if args and args[0] else None, _drain_worker_events())
    if op == "drain_events":
        # Shutdown barrier: ship whatever is still buffered.
        return _drain_worker_events()
    if op == "flush_durable":
        # Flush every resident node's durable store (shutdown barrier).
        flushed = 0
        for nid in sorted(w.resident):
            durable = getattr(w.network._protocols[nid], "durable", None)
            if durable is not None:
                durable.flush()
                flushed += 1
        return flushed
    raise ValueError(f"unknown worker op {op!r}")


#: A shipped recorder drain: (events batch or None, recorder round,
#: per-node seq counters, cumulative dropped count).  The round rides
#: along so the parent only merges counters that belong to *its* current
#: round (a stale snapshot is dead weight, not an error).
Drain = Tuple[Optional[Batch], int, Dict[int, int], int]


def _drain_worker_events() -> Optional[Drain]:
    """Drain this worker's shipping recorder, if any."""
    rec = _flight.active
    if rec is None:
        return None
    drained = rec.drain()
    batch = pack_events(drained)[0] if drained else None
    return (batch, rec.current_round, rec.seq_snapshot(), rec.dropped)


def _apply_calls(w: _WorkerState, calls: List[Call]) -> None:
    for node_id, op, args in calls:
        try:
            _dispatch_call(w, node_id, op, args)
        except WorkerCallError:
            raise
        except Exception as exc:
            raise _call_error(node_id, op, exc) from None


def _worker_call(node_id: int, op: str, *args: Any) -> Any:
    w = _W
    assert w is not None
    try:
        return _dispatch_call(w, node_id, op, args)
    except WorkerCallError:
        raise
    except Exception as exc:
        raise _call_error(node_id, op, exc) from None


def _worker_flush(
    calls: List[Call],
    summarize_ids: List[int],
    sync_round: Optional[int] = None,
    seq_sync: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, NodeSummary], Optional[Drain]]:
    """Apply a shard's deferred writes, then return fresh summaries for the
    nodes those writes touched (read-your-writes) plus a recorder drain.

    ``sync_round``/``seq_sync`` carry the parent recorder's clock: between
    rounds the parent has already advanced to the next round, so deferred
    emits (e.g. ``submit_evidence``) must stamp that round with counters
    that account for the parent's own emits -- exactly what the serial
    engine would have produced at the call site.
    """
    w = _W
    assert w is not None
    rec = _flight.active
    if rec is not None and sync_round is not None:
        rec.begin_round(sync_round)
        if seq_sync:
            rec.merge_seq(seq_sync)
    _apply_calls(w, calls)
    protos = w.network._protocols
    summaries = {nid: summarize_node(protos[nid]) for nid in summarize_ids}
    return summaries, _drain_worker_events()


# -- parent-side views ----------------------------------------------------------


class _Sized:
    """A stand-in exposing only ``len()`` of a worker-side container."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def __len__(self) -> int:
        return self._n


class _ReplicaLens:
    __slots__ = ("bundles", "auths", "peer_digests")

    def __init__(self, lens: Tuple[int, int, int]):
        self.bundles = _Sized(lens[0])
        self.auths = _Sized(lens[1])
        self.peer_digests = _Sized(lens[2])


class _EvidenceView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    def digest(self) -> bytes:
        return self._summary().evidence_digest

    def accused_nodes(self) -> Set[int]:
        return set(self._summary().accused)

    def __len__(self) -> int:
        return self._summary().evidence_len

    def items(self) -> List[Any]:
        return self._engine.rpc(self._node_id, "evidence_items")


class _ForwardingView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id
        self.evidence = _EvidenceView(engine, node_id)

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    @property
    def fault_pattern(self) -> Any:
        return self._summary().fault_pattern

    @property
    def store(self) -> _Sized:
        return _Sized(self._summary().store_len)

    @property
    def _pending_rule_b(self) -> _Sized:
        return _Sized(self._summary().pending_rule_b)

    def storage_bytes(self) -> int:
        return self._engine.rpc(self._node_id, "storage_bytes")

    def submit_evidence(self, item: Any) -> None:
        # Deferred: queued per shard, applied before the next round's
        # phases (or by the first blocking read).  Equivalent to the
        # serial engine's immediate application because worker-resident
        # nodes never step between rounds.
        self._engine.rpc_deferred(self._node_id, "submit_evidence", item)


class _AuditingView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    @property
    def pending_cap(self) -> Optional[int]:
        return self._summary().pending_cap

    @property
    def _replicas(self) -> Dict[Tuple[int, int], _ReplicaLens]:
        return {
            key: _ReplicaLens(lens)
            for key, lens in self._summary().replica_lens.items()
        }


class _CryptoView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    @property
    def counters(self) -> Dict[str, Any]:
        return self._engine.summary(self._node_id).counters

    def total_counters(self) -> Any:
        from repro.crypto.cost_model import CryptoCounters

        total = CryptoCounters()
        for c in self.counters.values():
            total.merge(c)
        return total


class ShardNodeView:
    """Parent-side proxy for a worker-resident controller.

    Supports every read the runtime, metrics, and BTR monitor perform on a
    live node; state-changing operations go through explicit engine RPCs.
    """

    is_view = True

    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self.node_id = node_id
        self.forwarding = _ForwardingView(engine, node_id)
        self.auditing = _AuditingView(engine, node_id)
        self.crypto = _CryptoView(engine, node_id)

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self.node_id)

    @property
    def current_scenario(self) -> Any:
        return self._summary().scenario

    @property
    def current_schedule(self) -> Any:
        summary = self._summary()
        if not summary.has_schedule:
            return None
        return self._engine.mode_tree.schedule_for(summary.scenario)

    @property
    def fault_pattern(self) -> Any:
        return self._summary().fault_pattern

    @property
    def evidence(self) -> _EvidenceView:
        return self.forwarding.evidence

    @property
    def mode_switches(self) -> List[Tuple[int, Any]]:
        return self._summary().mode_switches


# -- the engine -----------------------------------------------------------------


class ShardedRoundEngine:
    """Deterministic fan-out/merge executor for :class:`RoundNetwork` rounds.

    Created by :class:`repro.core.runtime.ReboundSystem` when scale workers
    are requested; :meth:`start` must run after the system is fully built
    (workers fork-inherit it) and before the first engine round.

    ``frame_ipc`` selects the wire plane: canonical codec frames with
    value interning and batched RPCs (default), or self-pickled object
    batches (the pre-frame baseline, kept for ablation).  Transcripts and
    logical counters are byte-identical either way.
    """

    def __init__(
        self,
        network: Any,
        mode_tree: Any,
        workers: int,
        parent_resident: Iterable[int] = (),
        frame_ipc: bool = True,
    ):
        if workers < 2:
            raise ValueError("ShardedRoundEngine needs at least 2 workers")
        self.network = network
        self.mode_tree = mode_tree
        self.workers = workers
        self.frame_ipc = frame_ipc
        topo = network.topology
        pinned = set(parent_resident)
        shardable = [c for c in sorted(topo.controllers) if c not in pinned]
        # Stable assignment: sorted controllers dealt round-robin.
        self._shards: List[List[int]] = [
            shard for shard in (shardable[i::workers] for i in range(workers)) if shard
        ]
        self._shard_of: Dict[int, int] = {
            nid: i for i, shard in enumerate(self._shards) for nid in shard
        }
        self._parent_ids: List[int] = sorted(
            set(topo.nodes) - set(self._shard_of)
        )
        self._summaries: Dict[int, NodeSummary] = {}
        self._pools: List[ProcessPoolExecutor] = []
        self._worker_stats: Dict[int, Dict[str, Dict[str, Any]]] = {}
        self._pending: Dict[int, List[Call]] = {}
        self._dirty: Set[int] = set()
        self._started = False
        self.rounds_executed = 0
        self.profiler = RoundProfiler(
            label=f"sharded x{workers} "
            + ("frames" if frame_ipc else "pickle")
        )
        #: parent-side merge point for worker-shipped trace events; set by
        #: start() when a flight recorder is active at fork time.
        self.collector: Optional[TraceCollector] = None
        self._ipc: Dict[str, Any] = {
            "mode": "frames" if frame_ipc else "pickle",
            "rounds": 0,
            "frames_shipped": 0,
            "interned_hits": 0,
            "delivery_bytes": 0,
            "intent_bytes": 0,
            "delivery_raw_bytes": 0,
            "intent_raw_bytes": 0,
            "event_bytes": 0,
            "event_raw_bytes": 0,
            "events_shipped": 0,
            "batched_calls": 0,
            "rpc_flushes": 0,
            "blocking_rpcs": 0,
        }

    # -- lifecycle --------------------------------------------------------------

    def start(self, nodes: Dict[int, Any]) -> Dict[int, ShardNodeView]:
        """Fork one single-process pool per shard and return view proxies
        for the worker-resident nodes (keyed by node id)."""
        global _SPAWN
        if self._started:
            raise RuntimeError("engine already started")
        for nid in self._shard_of:
            self._summaries[nid] = summarize_node(nodes[nid])
        rec = _flight.active
        if rec is not None:
            self.collector = TraceCollector(rec)
        ctx = mp.get_context("fork")
        try:
            for shard_id, shard_nodes in enumerate(self._shards):
                _SPAWN = _SpawnState(
                    network=self.network,
                    resident=frozenset(shard_nodes),
                    recorder_capacity=rec.capacity if rec is not None else None,
                )
                pool = ProcessPoolExecutor(
                    max_workers=1, mp_context=ctx, initializer=_worker_init
                )
                # Force the fork now, while _SPAWN carries this shard's
                # residency (process creation happens on first submit).
                pool.submit(_worker_ping).result()
                self._pools.append(pool)
                self._worker_stats[shard_id] = {}
                self._pending[shard_id] = []
        finally:
            _SPAWN = None
        self._started = True
        _telemetry.register("scale_engine", self._stats, self._reset_stats)
        _telemetry.register("engine_ipc", self._ipc_stats, self._reset_ipc_stats)
        _telemetry.register(
            "round_profile", self.profiler.stats, self.profiler.reset
        )
        if self.collector is not None:
            _telemetry.register(
                "trace_collector", self.collector.stats, self.collector.reset
            )
        return {nid: ShardNodeView(self, nid) for nid in sorted(self._shard_of)}

    def shutdown(self) -> None:
        if self._pools:
            # Deferred writes must land before the workers die; a caller
            # may still read evidence through a rebuilt serial system.
            # Worker-resident durable logs flush for the same reason: the
            # on-disk chain must be current once the processes are gone --
            # and shipping recorders drain so no buffered event dies with
            # its worker.
            for shard_id in range(len(self._pools)):
                self._flush_pending(shard_id)
            for shard_id, shard in enumerate(self._shards):
                if shard:
                    if self.collector is not None:
                        drain = self._pools[shard_id].submit(
                            _worker_call, shard[0], "drain_events"
                        ).result()
                        self._ingest_drain(shard_id, drain)
                    self._pools[shard_id].submit(
                        _worker_call, shard[0], "flush_durable"
                    ).result()
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if self._started:
            _telemetry.unregister("scale_engine")
            _telemetry.unregister("engine_ipc")
            _telemetry.unregister("round_profile")
            if self.collector is not None:
                _telemetry.unregister("trace_collector")

    # -- round execution --------------------------------------------------------

    def step_round(self, net: Any, deliveries: List[Tuple[int, int, Any, int]]) -> None:
        round_no = net.round_no
        crashed = frozenset(net._crashed)
        perf = time.perf_counter

        # Recorder seq hand-off (see module docstring, point 6): align the
        # parent clock with the round being executed and snapshot its
        # per-node counters, so worker emits continue the serial numbering
        # after any parent-side emits earlier in this round.
        rec = _flight.active if self.collector is not None else None
        seq_sync: Optional[Dict[int, int]] = None
        if rec is not None:
            rec.begin_round(round_no)
            seq_sync = rec.seq_snapshot()

        # Partition + pack: each shard's slice of the round's deliveries,
        # in one flat buffer (frames mode interns duplicate payloads).
        t0 = perf()
        parent_deliveries: List[Tuple[int, int, Any, int]] = []
        batches: List[Batch] = []
        if self.frame_ipc:
            writers = [DeliveryWriter() for _ in self._pools]
            for d in deliveries:
                shard = self._shard_of.get(d[1])
                if shard is None:
                    parent_deliveries.append(d)
                elif d[1] not in crashed:
                    payload = d[2]
                    blob = payload.data if type(payload) is Frame else encode(payload)
                    writers[shard].add(d[0], d[1], blob)
            for writer in writers:
                batches.append(("frames", writer.finish()))
                self._ipc["frames_shipped"] += writer.frame_count
                self._ipc["interned_hits"] += writer.interned_hits
                self._ipc["delivery_raw_bytes"] += writer.raw_bytes
        else:
            triples: List[List[Tuple[int, int, Any]]] = [[] for _ in self._pools]
            for d in deliveries:
                shard = self._shard_of.get(d[1])
                if shard is None:
                    parent_deliveries.append(d)
                elif d[1] not in crashed:
                    triples[shard].append((d[0], d[1], d[2]))
            for chunk in triples:
                batches.append(
                    ("pickle", pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))
                )
                self._ipc["frames_shipped"] += len(chunk)
                self._ipc["delivery_raw_bytes"] += len(batches[-1][1])
        for _tag, blob in batches:
            self._ipc["delivery_bytes"] += len(blob)
        t_pack = perf() - t0

        # Ship: the round batch plus any deferred writes queued since the
        # last flush (applied worker-side before the round's phases).
        t1 = perf()
        futures = []
        for i, pool in enumerate(self._pools):
            calls, self._pending[i] = self._pending[i], []
            futures.append(
                pool.submit(
                    _worker_round, round_no, crashed, batches[i], calls, seq_sync
                )
            )
        self._dirty.clear()
        t_submit = perf() - t1

        # Parent-resident phases (overlaps the workers on real multicore).
        t2 = perf()
        protos = net._protocols
        sink: List[Tuple[str, int, int, Any]] = []
        net._intent_sink = sink
        try:
            for nid in self._parent_ids:
                if nid in crashed:
                    continue
                proto = protos.get(nid)
                if proto is not None:
                    proto.on_round_start(round_no)
            for sender, destination, payload, _seq in parent_deliveries:
                if destination in crashed:
                    continue
                proto = protos.get(destination)
                if proto is not None:
                    if type(payload) is Frame:
                        payload = decode_frame(payload.data)
                    proto.on_receive(round_no, sender, payload)
            if sink:
                raise RuntimeError(
                    "sharded engine requires protocols to send only from "
                    "on_round_end"
                )
            for nid in self._parent_ids:
                if nid in crashed:
                    continue
                proto = protos.get(nid)
                if proto is not None:
                    proto.on_round_end(round_no)
        finally:
            net._intent_sink = None
        t_parent_step = perf() - t2

        # Join + merge.
        t_wait = t_merge = 0.0
        worker_encode = worker_decode = worker_step = 0.0
        intent_batches: List[Batch] = []
        for shard_id, future in enumerate(futures):
            ta = perf()
            result: _RoundResult = future.result()
            t_wait += perf() - ta
            tb = perf()
            self._summaries.update(result.summaries)
            self._worker_stats[shard_id] = result.telemetry
            worker_encode += result.encode_s
            worker_decode += result.decode_s
            worker_step += result.step_s
            self._ipc["intent_bytes"] += result.intent_bytes
            self._ipc["intent_raw_bytes"] += result.intent_raw_bytes
            self._ipc["frames_shipped"] += result.frames_shipped
            self._ipc["interned_hits"] += result.interned_hits
            if self.collector is not None:
                # Before replay: replay-time emits (chaos impairments at
                # worker-resident senders) need the merged seq counters.
                self.collector.ingest(
                    shard_id,
                    result.events,
                    result.seqs,
                    result.dropped,
                    raw_bytes=result.event_raw_bytes,
                    interned=result.event_interned,
                )
                if result.events is not None:
                    self._ipc["event_bytes"] += len(result.events[1])
                    self._ipc["event_raw_bytes"] += result.event_raw_bytes
                    self._ipc["events_shipped"] += result.event_count
            intent_batches.append(result.intents)
            t_merge += perf() - tb

        # Replay in ascending node order: byte-identical to the serial
        # engine's on_round_end loop (including chaos sequence numbering).
        # Worker intents replay as Frame handles -- already-canonical
        # bytes, so the send path never re-encodes them.
        t3 = perf()
        grouped = _group_intents(sink)
        for tag, blob in intent_batches:
            if tag == "frames":
                for kind, sender, target, frame in unpack_intents(blob):
                    grouped.setdefault(sender, []).append(
                        (kind, target, Frame(frame))
                    )
            else:
                for kind, sender, target, payload in pickle.loads(blob):
                    grouped.setdefault(sender, []).append((kind, target, payload))
        for nid in net.topology.nodes:
            for kind, target, payload in grouped.get(nid, ()):
                if kind == "u":
                    net.send(nid, target, payload)
                else:
                    net.broadcast(nid, target, payload)
        t_replay = perf() - t3

        self.profiler.record_round(
            round_no,
            encode=t_pack + worker_encode,
            ipc=t_submit
            + worker_decode
            + max(0.0, t_wait - worker_encode - worker_decode - worker_step),
            step=t_parent_step + worker_step,
            replay=t_replay,
            merge=t_merge,
        )
        self._ipc["rounds"] += 1
        self.rounds_executed += 1

    # -- parent/worker state management ----------------------------------------

    def summary(self, node_id: int) -> NodeSummary:
        if node_id in self._dirty:
            self._flush_pending(self._shard_of[node_id])
        return self._summaries[node_id]

    def is_sharded(self, node_id: int) -> bool:
        return node_id in self._shard_of

    def rpc(self, node_id: int, op: str, *args: Any) -> Any:
        """Blocking call on the node's owning worker (flushes that shard's
        deferred writes first, so reads observe them)."""
        shard = self._shard_of.get(node_id)
        if shard is None:
            raise KeyError(f"node {node_id} is not worker-resident")
        self._flush_pending(shard)
        self._ipc["blocking_rpcs"] += 1
        return self._pools[shard].submit(_worker_call, node_id, op, *args).result()

    def rpc_deferred(self, node_id: int, op: str, *args: Any) -> None:
        """Queue a write for the node's owning worker.  Applied before the
        next round's phases, or by the first blocking read of the shard --
        either way before any worker-resident node steps again, which
        makes it equivalent to the serial engine's immediate call."""
        shard = self._shard_of.get(node_id)
        if shard is None:
            raise KeyError(f"node {node_id} is not worker-resident")
        self._pending[shard].append((node_id, op, args))
        self._dirty.add(node_id)
        self._ipc["batched_calls"] += 1

    def _ingest_drain(self, shard: int, drain: Optional[Drain]) -> None:
        """Absorb a shipped recorder drain (flush/release/shutdown paths).

        Seq counters merge only when the drain's round matches the parent
        recorder's current round -- a snapshot for an already-passed round
        is dead weight (the parent reset its counters at the round edge,
        exactly as the serial engine would have)."""
        if drain is None or self.collector is None:
            return
        batch, rec_round, seqs, dropped = drain
        rec = self.collector.recorder
        merge = seqs if rec.current_round == rec_round else None
        self.collector.ingest(shard, batch, merge, dropped)
        if batch is not None:
            self._ipc["event_bytes"] += len(batch[1])

    def _flush_pending(self, shard: int) -> None:
        calls = self._pending.get(shard)
        if not calls:
            return
        self._pending[shard] = []
        dirty = sorted(
            nid for nid in self._dirty if self._shard_of.get(nid) == shard
        )
        self._dirty.difference_update(dirty)
        sync_round: Optional[int] = None
        seq_sync: Optional[Dict[int, int]] = None
        if self.collector is not None:
            rec = self.collector.recorder
            sync_round = rec.current_round
            seq_sync = rec.seq_snapshot()
        summaries, drain = (
            self._pools[shard]
            .submit(_worker_flush, calls, dirty, sync_round, seq_sync)
            .result()
        )
        self._summaries.update(summaries)
        self._ingest_drain(shard, drain)
        self._ipc["rpc_flushes"] += 1

    def flush_deferred(self) -> None:
        """Flush every shard's deferred writes (read-your-writes barrier)."""
        for shard_id in range(len(self._pools)):
            self._flush_pending(shard_id)

    def storage_bytes_map(self) -> Dict[int, int]:
        """Storage bytes for every worker-resident node (one RPC per shard)."""
        sizes: Dict[int, int] = {}
        for shard_id, shard in enumerate(self._shards):
            if not shard:
                continue
            self._flush_pending(shard_id)
            sizes.update(
                self._pools[shard_id]
                .submit(_worker_call, shard[0], "storage_all")
                .result()
            )
        return sizes

    def _adopt_parent(self, node_id: int, want_node: bool) -> Any:
        shard = self._shard_of[node_id]
        self._flush_pending(shard)
        self._shard_of.pop(node_id)
        node, drain = (
            self._pools[shard].submit(_worker_call, node_id, "release", want_node)
            .result()
        )
        self._ingest_drain(shard, drain)
        self._shards[shard].remove(node_id)
        self._summaries.pop(node_id, None)
        self._parent_ids = sorted(set(self._parent_ids) | {node_id})
        return node

    def recall(self, node_id: int) -> Any:
        """Pull a worker-resident node into the parent as a pickled copy
        (used for mid-run fault injection on an unpinned target).  The
        caller must re-attach it to the parent network."""
        return self._adopt_parent(node_id, want_node=True)

    def adopt_parent(self, node_id: int) -> None:
        """Mark ``node_id`` parent-resident from now on, discarding the
        worker's copy (used when the runtime rebuilds a node in-place,
        e.g. repair_and_bless)."""
        if node_id in self._shard_of:
            self._adopt_parent(node_id, want_node=False)

    # -- telemetry --------------------------------------------------------------

    def worker_snapshots(self) -> List[Dict[str, Dict[str, Any]]]:
        return [self._worker_stats[i] for i in sorted(self._worker_stats)]

    def merged_stats(self) -> Dict[str, Dict[str, Any]]:
        """The parent registry snapshot with worker-side counters folded in."""
        return _telemetry.merge_stats_snapshots(
            _telemetry.stats_snapshot(), self.worker_snapshots()
        )

    def _stats(self) -> Dict[str, Any]:
        return {
            "workers": len(self._pools),
            "shard_sizes": [len(shard) for shard in self._shards],
            "parent_resident": len(self._parent_ids),
            "rounds": self.rounds_executed,
        }

    def _reset_stats(self) -> None:
        self.rounds_executed = 0

    def _ipc_stats(self) -> Dict[str, Any]:
        return dict(self._ipc)

    def _reset_ipc_stats(self) -> None:
        for key in self._ipc:
            if key != "mode":
                self._ipc[key] = 0
