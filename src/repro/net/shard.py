"""Sharded round engine: deterministic fan-out of node stepping.

At scale (hundreds of controllers) the serial per-node loop in
:meth:`repro.net.network.RoundNetwork.run_round` dominates wall clock.
This module steps nodes in parallel across ``ProcessPoolExecutor`` workers
while keeping transcripts **byte-identical** to serial execution:

1.  *Stable shard assignment.*  Sorted controllers are dealt round-robin
    over ``workers`` shards at engine start; devices, fault-scenario
    targets, and any explicitly pinned nodes stay parent-resident.  Each
    shard gets its own single-process pool, forked after the system is
    fully built, so workers inherit their resident nodes (and the whole
    directory/mode tree) copy-on-write -- the same fork-inherit pattern as
    :mod:`repro.sched.modegen`.

2.  *Capture/replay sends.*  Every node sends only from ``on_round_end``.
    Workers (and the parent, for its own residents) run the three phases
    with the network's *intent sink* armed: ``send()``/``broadcast()``
    record ``(kind, sender, target, payload)`` and return before any
    crash/adversary/guardian processing.  After the join, the parent
    replays all captured intents through the real send path in ascending
    node order -- exactly the order the serial engine would have produced
    -- so sequence numbering, guardian charging, tamper hooks, byte
    accounting, and the chaos layer's seq-keyed impairment RNG behave
    identically.  Within a node, intent order is the node's own emission
    order, also identical to serial.

3.  *Deliveries fan out pre-partitioned.*  The parent collects the round's
    deliveries once (chaos reordering included) and ships each shard the
    slice destined to its residents, preserving global order; deliveries
    to different destinations are independent, so per-destination order is
    all that matters.

4.  *Summaries, not objects.*  After each round a worker returns a compact
    :class:`NodeSummary` per resident; the parent exposes them through
    :class:`ShardNodeView` proxies so monitors/metrics (`fault_pattern`,
    evidence digest, `current_schedule` via the shared mode tree, counter
    totals, buffer lengths) read the same values they would from real
    nodes.  Heavyweight reads (evidence items, storage bytes) and writes
    (``submit_evidence``) are explicit RPCs to the owning worker.

5.  *Telemetry hygiene.*  Worker initializers detach the inherited flight
    recorder and zero every registered telemetry component, so per-worker
    cache stats count post-fork work only; each round's snapshot rides
    back with the results and :func:`ShardedRoundEngine.merged_stats`
    folds them into the parent's registry snapshot without double
    counting.

Shared module-level caches (verify cache, coverage DP, path cache, codec
memo) diverge per worker but are *fidelity-neutral*: they cache pure
functions and never feed transcripts or logical counters.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.obs import recorder as _flight
from repro.obs import registry as _telemetry

WORKERS_ENV = "REBOUND_SCALE_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REBOUND_SCALE_WORKERS``,
    else 0 (serial).  Values <= 1 mean the serial engine."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 0
    return max(0, int(workers))


# -- per-round node summaries ---------------------------------------------------


@dataclass
class NodeSummary:
    """Everything monitors/metrics read from a node every round, shipped
    back from the owning worker after each round."""

    scenario: Any
    has_schedule: bool
    fault_pattern: Any
    evidence_digest: bytes
    accused: FrozenSet[int]
    evidence_len: int
    store_len: int
    pending_rule_b: int
    replica_lens: Dict[Tuple[int, int], Tuple[int, int, int]]
    pending_cap: Optional[int]
    counters: Dict[str, Any]
    mode_switches: List[Tuple[int, Any]]


def summarize_node(node: Any) -> NodeSummary:
    fwd = node.forwarding
    aud = node.auditing
    return NodeSummary(
        scenario=node.current_scenario,
        has_schedule=node.current_schedule is not None,
        fault_pattern=fwd.fault_pattern,
        evidence_digest=fwd.evidence.digest(),
        accused=frozenset(fwd.evidence.accused_nodes()),
        evidence_len=len(fwd.evidence),
        store_len=len(fwd.store),
        pending_rule_b=len(fwd._pending_rule_b),
        replica_lens={
            key: (len(rep.bundles), len(rep.auths), len(rep.peer_digests))
            for key, rep in aud._replicas.items()
        },
        pending_cap=aud.pending_cap,
        counters={dom: copy.copy(c) for dom, c in node.crypto.counters.items()},
        mode_switches=list(node.mode_switches),
    )


# -- worker side ----------------------------------------------------------------


@dataclass
class _SpawnState:
    network: Any
    resident: FrozenSet[int]


@dataclass
class _WorkerState:
    network: Any
    resident: Set[int]
    sink: List[Tuple[str, int, int, Any]] = field(default_factory=list)


@dataclass
class _RoundResult:
    intents: Dict[int, List[Tuple[str, int, Any]]]
    summaries: Dict[int, NodeSummary]
    telemetry: Dict[str, Dict[str, Any]]


# Set in the parent immediately before each pool's priming submit forks the
# worker; the child's initializer copies it into _W.  Never read after start.
_SPAWN: Optional[_SpawnState] = None
_W: Optional[_WorkerState] = None


def _worker_init() -> None:
    global _W
    state = _SPAWN
    assert state is not None, "worker forked without spawn state"
    _W = _WorkerState(network=state.network, resident=set(state.resident))
    # The fork snapshot carries the parent's flight recorder and telemetry
    # counts.  Detach the recorder (worker-side events cannot be merged
    # back in order) and zero every component so the per-worker stats this
    # engine reports never double-count pre-fork activity.
    _flight.active = None
    _telemetry.ensure_default_components()
    _telemetry.reset_all()
    # Arm the intent sink permanently: nothing a worker-resident node sends
    # may enter the network here -- the parent replays it.
    _W.network._intent_sink = _W.sink


def _worker_ping() -> bool:
    return _W is not None


def _group_intents(
    sink: List[Tuple[str, int, int, Any]],
) -> Dict[int, List[Tuple[str, int, Any]]]:
    grouped: Dict[int, List[Tuple[str, int, Any]]] = {}
    for kind, sender, target, payload in sink:
        grouped.setdefault(sender, []).append((kind, target, payload))
    return grouped


def _worker_round(
    round_no: int,
    crashed: FrozenSet[int],
    deliveries: List[Tuple[int, int, Any]],
) -> _RoundResult:
    """Run one round's three phases for this worker's resident nodes."""
    w = _W
    assert w is not None
    net = w.network
    net.round_no = round_no
    net._crashed = set(crashed)
    sink = w.sink
    sink.clear()
    protos = net._protocols
    live = [n for n in sorted(w.resident) if n not in crashed]
    for nid in live:
        protos[nid].on_round_start(round_no)
    for sender, destination, payload in deliveries:
        if destination in crashed or destination not in w.resident:
            continue
        protos[destination].on_receive(round_no, sender, payload)
    if sink:
        # The replay merge orders intents by sending node, which matches
        # serial execution only when every send happens in on_round_end
        # (true for all shipped protocols).  Fail loudly otherwise.
        raise RuntimeError(
            "sharded engine requires protocols to send only from on_round_end"
        )
    for nid in live:
        protos[nid].on_round_end(round_no)
    return _RoundResult(
        intents=_group_intents(sink),
        summaries={nid: summarize_node(protos[nid]) for nid in sorted(w.resident)},
        telemetry=_telemetry.stats_snapshot(),
    )


def _worker_call(node_id: int, op: str, *args: Any) -> Any:
    w = _W
    assert w is not None
    node = w.network._protocols[node_id]
    if op == "evidence_items":
        return list(node.forwarding.evidence.items())
    if op == "storage_bytes":
        return node.forwarding.storage_bytes()
    if op == "storage_all":
        return {
            nid: w.network._protocols[nid].forwarding.storage_bytes()
            for nid in sorted(w.resident)
        }
    if op == "submit_evidence":
        node.forwarding.submit_evidence(args[0])
        return summarize_node(node)
    if op == "summarize":
        return summarize_node(node)
    if op == "release":
        # Drop the node from this worker's residency; its local copy goes
        # stale and is never stepped again.  Return the (network-detached)
        # node when the caller wants to adopt it parent-side.
        w.resident.discard(node_id)
        node.network = None
        return node if args and args[0] else None
    raise ValueError(f"unknown worker op {op!r}")


# -- parent-side views ----------------------------------------------------------


class _Sized:
    """A stand-in exposing only ``len()`` of a worker-side container."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def __len__(self) -> int:
        return self._n


class _ReplicaLens:
    __slots__ = ("bundles", "auths", "peer_digests")

    def __init__(self, lens: Tuple[int, int, int]):
        self.bundles = _Sized(lens[0])
        self.auths = _Sized(lens[1])
        self.peer_digests = _Sized(lens[2])


class _EvidenceView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    def digest(self) -> bytes:
        return self._summary().evidence_digest

    def accused_nodes(self) -> Set[int]:
        return set(self._summary().accused)

    def __len__(self) -> int:
        return self._summary().evidence_len

    def items(self) -> List[Any]:
        return self._engine.rpc(self._node_id, "evidence_items")


class _ForwardingView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id
        self.evidence = _EvidenceView(engine, node_id)

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    @property
    def fault_pattern(self) -> Any:
        return self._summary().fault_pattern

    @property
    def store(self) -> _Sized:
        return _Sized(self._summary().store_len)

    @property
    def _pending_rule_b(self) -> _Sized:
        return _Sized(self._summary().pending_rule_b)

    def storage_bytes(self) -> int:
        return self._engine.rpc(self._node_id, "storage_bytes")

    def submit_evidence(self, item: Any) -> None:
        summary = self._engine.rpc(self._node_id, "submit_evidence", item)
        self._engine._summaries[self._node_id] = summary


class _AuditingView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self._node_id)

    @property
    def pending_cap(self) -> Optional[int]:
        return self._summary().pending_cap

    @property
    def _replicas(self) -> Dict[Tuple[int, int], _ReplicaLens]:
        return {
            key: _ReplicaLens(lens)
            for key, lens in self._summary().replica_lens.items()
        }


class _CryptoView:
    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self._node_id = node_id

    @property
    def counters(self) -> Dict[str, Any]:
        return self._engine.summary(self._node_id).counters

    def total_counters(self) -> Any:
        from repro.crypto.cost_model import CryptoCounters

        total = CryptoCounters()
        for c in self.counters.values():
            total.merge(c)
        return total


class ShardNodeView:
    """Parent-side proxy for a worker-resident controller.

    Supports every read the runtime, metrics, and BTR monitor perform on a
    live node; state-changing operations go through explicit engine RPCs.
    """

    is_view = True

    def __init__(self, engine: "ShardedRoundEngine", node_id: int):
        self._engine = engine
        self.node_id = node_id
        self.forwarding = _ForwardingView(engine, node_id)
        self.auditing = _AuditingView(engine, node_id)
        self.crypto = _CryptoView(engine, node_id)

    def _summary(self) -> NodeSummary:
        return self._engine.summary(self.node_id)

    @property
    def current_scenario(self) -> Any:
        return self._summary().scenario

    @property
    def current_schedule(self) -> Any:
        summary = self._summary()
        if not summary.has_schedule:
            return None
        return self._engine.mode_tree.schedule_for(summary.scenario)

    @property
    def fault_pattern(self) -> Any:
        return self._summary().fault_pattern

    @property
    def evidence(self) -> _EvidenceView:
        return self.forwarding.evidence

    @property
    def mode_switches(self) -> List[Tuple[int, Any]]:
        return self._summary().mode_switches


# -- the engine -----------------------------------------------------------------


class ShardedRoundEngine:
    """Deterministic fan-out/merge executor for :class:`RoundNetwork` rounds.

    Created by :class:`repro.core.runtime.ReboundSystem` when scale workers
    are requested; :meth:`start` must run after the system is fully built
    (workers fork-inherit it) and before the first engine round.
    """

    def __init__(
        self,
        network: Any,
        mode_tree: Any,
        workers: int,
        parent_resident: Iterable[int] = (),
    ):
        if workers < 2:
            raise ValueError("ShardedRoundEngine needs at least 2 workers")
        self.network = network
        self.mode_tree = mode_tree
        self.workers = workers
        topo = network.topology
        pinned = set(parent_resident)
        shardable = [c for c in sorted(topo.controllers) if c not in pinned]
        # Stable assignment: sorted controllers dealt round-robin.
        self._shards: List[List[int]] = [
            shard for shard in (shardable[i::workers] for i in range(workers)) if shard
        ]
        self._shard_of: Dict[int, int] = {
            nid: i for i, shard in enumerate(self._shards) for nid in shard
        }
        self._parent_ids: List[int] = sorted(
            set(topo.nodes) - set(self._shard_of)
        )
        self._summaries: Dict[int, NodeSummary] = {}
        self._pools: List[ProcessPoolExecutor] = []
        self._worker_stats: Dict[int, Dict[str, Dict[str, Any]]] = {}
        self._started = False
        self.rounds_executed = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self, nodes: Dict[int, Any]) -> Dict[int, ShardNodeView]:
        """Fork one single-process pool per shard and return view proxies
        for the worker-resident nodes (keyed by node id)."""
        global _SPAWN
        if self._started:
            raise RuntimeError("engine already started")
        for nid in self._shard_of:
            self._summaries[nid] = summarize_node(nodes[nid])
        ctx = mp.get_context("fork")
        try:
            for shard_id, shard_nodes in enumerate(self._shards):
                _SPAWN = _SpawnState(
                    network=self.network, resident=frozenset(shard_nodes)
                )
                pool = ProcessPoolExecutor(
                    max_workers=1, mp_context=ctx, initializer=_worker_init
                )
                # Force the fork now, while _SPAWN carries this shard's
                # residency (process creation happens on first submit).
                pool.submit(_worker_ping).result()
                self._pools.append(pool)
                self._worker_stats[shard_id] = {}
        finally:
            _SPAWN = None
        self._started = True
        _telemetry.register("scale_engine", self._stats, self._reset_stats)
        return {nid: ShardNodeView(self, nid) for nid in sorted(self._shard_of)}

    def shutdown(self) -> None:
        pools, self._pools = self._pools, []
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if self._started:
            _telemetry.unregister("scale_engine")

    # -- round execution --------------------------------------------------------

    def step_round(self, net: Any, deliveries: List[Tuple[int, int, Any, int]]) -> None:
        round_no = net.round_no
        crashed = frozenset(net._crashed)
        shard_deliveries: List[List[Tuple[int, int, Any]]] = [
            [] for _ in self._pools
        ]
        parent_deliveries: List[Tuple[int, int, Any, int]] = []
        for d in deliveries:
            shard = self._shard_of.get(d[1])
            if shard is None:
                parent_deliveries.append(d)
            else:
                shard_deliveries[shard].append((d[0], d[1], d[2]))
        futures = [
            pool.submit(_worker_round, round_no, crashed, shard_deliveries[i])
            for i, pool in enumerate(self._pools)
        ]
        protos = net._protocols
        sink: List[Tuple[str, int, int, Any]] = []
        net._intent_sink = sink
        try:
            for nid in self._parent_ids:
                if nid in crashed:
                    continue
                proto = protos.get(nid)
                if proto is not None:
                    proto.on_round_start(round_no)
            for sender, destination, payload, _seq in parent_deliveries:
                if destination in crashed:
                    continue
                proto = protos.get(destination)
                if proto is not None:
                    proto.on_receive(round_no, sender, payload)
            if sink:
                raise RuntimeError(
                    "sharded engine requires protocols to send only from "
                    "on_round_end"
                )
            for nid in self._parent_ids:
                if nid in crashed:
                    continue
                proto = protos.get(nid)
                if proto is not None:
                    proto.on_round_end(round_no)
        finally:
            net._intent_sink = None
        intents = _group_intents(sink)
        for shard_id, future in enumerate(futures):
            result: _RoundResult = future.result()
            intents.update(result.intents)
            self._summaries.update(result.summaries)
            self._worker_stats[shard_id] = result.telemetry
        # Replay in ascending node order: byte-identical to the serial
        # engine's on_round_end loop (including chaos sequence numbering).
        for nid in net.topology.nodes:
            for kind, target, payload in intents.get(nid, ()):
                if kind == "u":
                    net.send(nid, target, payload)
                else:
                    net.broadcast(nid, target, payload)
        self.rounds_executed += 1

    # -- parent/worker state management ----------------------------------------

    def summary(self, node_id: int) -> NodeSummary:
        return self._summaries[node_id]

    def is_sharded(self, node_id: int) -> bool:
        return node_id in self._shard_of

    def rpc(self, node_id: int, op: str, *args: Any) -> Any:
        shard = self._shard_of.get(node_id)
        if shard is None:
            raise KeyError(f"node {node_id} is not worker-resident")
        return self._pools[shard].submit(_worker_call, node_id, op, *args).result()

    def storage_bytes_map(self) -> Dict[int, int]:
        """Storage bytes for every worker-resident node (one RPC per shard)."""
        sizes: Dict[int, int] = {}
        for shard_id, shard in enumerate(self._shards):
            if not shard:
                continue
            sizes.update(
                self._pools[shard_id]
                .submit(_worker_call, shard[0], "storage_all")
                .result()
            )
        return sizes

    def _adopt_parent(self, node_id: int, want_node: bool) -> Any:
        shard = self._shard_of.pop(node_id)
        node = (
            self._pools[shard].submit(_worker_call, node_id, "release", want_node)
            .result()
        )
        self._shards[shard].remove(node_id)
        self._summaries.pop(node_id, None)
        self._parent_ids = sorted(set(self._parent_ids) | {node_id})
        return node

    def recall(self, node_id: int) -> Any:
        """Pull a worker-resident node into the parent as a pickled copy
        (used for mid-run fault injection on an unpinned target).  The
        caller must re-attach it to the parent network."""
        return self._adopt_parent(node_id, want_node=True)

    def adopt_parent(self, node_id: int) -> None:
        """Mark ``node_id`` parent-resident from now on, discarding the
        worker's copy (used when the runtime rebuilds a node in-place,
        e.g. repair_and_bless)."""
        if node_id in self._shard_of:
            self._adopt_parent(node_id, want_node=False)

    # -- telemetry --------------------------------------------------------------

    def worker_snapshots(self) -> List[Dict[str, Dict[str, Any]]]:
        return [self._worker_stats[i] for i in sorted(self._worker_stats)]

    def merged_stats(self) -> Dict[str, Dict[str, Any]]:
        """The parent registry snapshot with worker-side counters folded in."""
        return _telemetry.merge_stats_snapshots(
            _telemetry.stats_snapshot(), self.worker_snapshots()
        )

    def _stats(self) -> Dict[str, Any]:
        return {
            "workers": len(self._pools),
            "shard_sizes": [len(shard) for shard in self._shards],
            "parent_resident": len(self._parent_ids),
            "rounds": self.rounds_executed,
        }

    def _reset_stats(self) -> None:
        self.rounds_executed = 0
