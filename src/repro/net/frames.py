"""Wire-frame IPC plane: flat frame buffers and the frame-decode cache.

The sharded round engine (:mod:`repro.net.shard`) originally shipped
pickled Python message objects per shard per round, which made the IPC
round-trip the dominant cost of a round.  This module replaces that with
the repo's own canonical codec (:mod:`repro.net.message`): each payload
crosses the process boundary exactly once, as the byte frame ``encode()``
produces, packed into one flat buffer per shard per round.

**Buffer layout** (all integers big-endian, no padding)::

    u8   flags      # bit0: 32-bit node ids, bit1: 32-bit frame idx, bit2: zlib
    u32  frame_count
    frame_count x { u32 length, <length> frame bytes }   # unique frames
    u32  group_count            # run-length groups of the sender column
    group_count x { id sender, u32 run_length }
    u32  header_count
    header_count x id   dest column     (target column for intents)
    header_count x idx  frame-index column
    header_count x u8   kind column     (intents only; u=0, b=1)

where ``id`` is u16 unless any node id exceeds 65535 and ``idx`` is u16
unless the buffer holds >= 65536 unique frames (then u32 each; the flags
byte says which).  Headers are *columnar*: deliveries arrive sorted by
``(sender, dest, seq)`` and intents in ascending-sender emission order,
so the sender column is runs of equal values and run-length encodes to a
few bytes per sender, leaving ~4-5 bytes of header per delivery intent
-- the difference between beating pickle's per-entry overhead and merely
matching it.  Buffers over a small threshold are additionally
zlib-compressed (level 1, flags bit2) when that shrinks them; this is
pure transport compression -- decompression restores the exact columnar
buffer -- and writers expose ``raw_bytes`` so the structural and
transport savings stay separately measurable.

**Interning.**  Frames are deduplicated *by value* within one buffer: a
broadcast (or the per-neighbor unicast fan-out of one node's round
message, which is value-equal across neighbors whenever it carries no
per-destination packets) into a shard ships one frame plus one small
header per recipient.  This beats pickle's identity-keyed memo, which
re-serializes value-equal but distinct objects in full.

**Frame-decode cache.**  ``decode_frame`` is a process-wide bounded LRU
keyed by frame bytes, so the k recipients of an interned frame inside one
worker decode it once and hot evidence/heartbeat bodies decode once per
process.  Cache hits hand every recipient the *same* object -- the exact
sharing bus broadcast already produces in the serial engine -- so it is
admissible only for values without mutable containers (no list/dict
anywhere); anything else decodes fresh each time.  When the decode is
additionally memo-safe (no unfrozen dataclasses), it seeds the codec's
identity-keyed encode memo, making a later re-encode of the decoded
object (e.g. by the parent's replay path) an O(1) hit.

Both directions of the plane are transcript-neutral: frames are canonical
encodings, so sizes, guardian charging, and chaos corruption bytes are
identical to the object path, and decoding yields value-equal payloads.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.net import message as _message
from repro.net.message import _Decoder, _memo_store

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")

_FLAG_WIDE_ID = 1
_FLAG_WIDE_IDX = 2
_FLAG_ZLIB = 4

#: Buffers below this size skip the compression attempt outright.
_COMPRESS_MIN = 192

#: Intent kinds on the wire: unicast send / bus broadcast.
_KIND_CODE = {"u": 0, "b": 1}
_KIND_NAME = {0: "u", 1: "b"}


def _rle(values: List[int]) -> List[Tuple[int, int]]:
    """Run-length encode consecutive equal values as (value, count)."""
    groups: List[Tuple[int, int]] = []
    for v in values:
        if groups and groups[-1][0] == v:
            groups[-1] = (v, groups[-1][1] + 1)
        else:
            groups.append((v, 1))
    return groups


class _FrameWriter:
    """Accumulates one flat buffer, interning duplicate frames by value."""

    __slots__ = ("_index", "_frames", "headers", "interned_hits", "raw_bytes")

    def __init__(self) -> None:
        self._index: Dict[bytes, int] = {}
        self._frames: List[bytes] = []
        self.headers: List[Tuple[int, ...]] = []
        self.interned_hits = 0
        self.raw_bytes = 0

    def add_frame(self, blob: bytes) -> int:
        idx = self._index.get(blob)
        if idx is None:
            idx = len(self._frames)
            self._index[blob] = idx
            self._frames.append(blob)
        else:
            self.interned_hits += 1
        return idx

    @property
    def frame_count(self) -> int:
        return len(self._frames)

    @property
    def header_count(self) -> int:
        return len(self.headers)

    def _pack(
        self,
        senders: List[int],
        targets: List[int],
        indices: List[int],
        kinds: Optional[List[int]],
    ) -> bytes:
        max_id = max(max(senders, default=0), max(targets, default=0))
        wide_id = max_id > 0xFFFF
        wide_idx = len(self._frames) > 0xFFFF
        id_code = "I" if wide_id else "H"
        idx_code = "I" if wide_idx else "H"
        flags = (_FLAG_WIDE_ID if wide_id else 0) | (
            _FLAG_WIDE_IDX if wide_idx else 0
        )
        parts: List[bytes] = [_U8.pack(flags), _U32.pack(len(self._frames))]
        for blob in self._frames:
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        groups = _rle(senders)
        parts.append(_U32.pack(len(groups)))
        if groups:
            flat = [x for group in groups for x in group]
            parts.append(
                struct.pack(">" + (id_code + "I") * len(groups), *flat)
            )
        count = len(targets)
        parts.append(_U32.pack(count))
        if count:
            parts.append(struct.pack(f">{count}{id_code}", *targets))
            parts.append(struct.pack(f">{count}{idx_code}", *indices))
            if kinds is not None:
                parts.append(bytes(kinds))
        buffer = b"".join(parts)
        self.raw_bytes = len(buffer)
        if len(buffer) > _COMPRESS_MIN:
            # Transport compression only -- decompression restores the
            # exact columnar buffer, so nothing downstream can tell.
            body = zlib.compress(buffer[1:], 1)
            if len(body) + 1 < len(buffer):
                return _U8.pack(flags | _FLAG_ZLIB) + body
        return buffer


class DeliveryWriter(_FrameWriter):
    """Parent-side builder for one shard's per-round delivery buffer."""

    __slots__ = ()

    def add(self, sender: int, dest: int, blob: bytes) -> None:
        self.headers.append((sender, dest, self.add_frame(blob)))

    def finish(self) -> bytes:
        headers = self.headers
        return self._pack(
            [h[0] for h in headers],
            [h[1] for h in headers],
            [h[2] for h in headers],
            None,
        )


class IntentWriter(_FrameWriter):
    """Worker-side builder for the round's captured-intent buffer."""

    __slots__ = ()

    def add(self, kind: str, sender: int, target: int, blob: bytes) -> None:
        self.headers.append(
            (sender, target, self.add_frame(blob), _KIND_CODE[kind])
        )

    def finish(self) -> bytes:
        headers = self.headers
        return self._pack(
            [h[0] for h in headers],
            [h[1] for h in headers],
            [h[2] for h in headers],
            [h[3] for h in headers],
        )


class EventWriter(_FrameWriter):
    """Builder for one round's drained flight-recorder events.

    Same plane as deliveries/intents: interned payload frames (the
    JSON-encoded ``data`` dict -- identical dicts, e.g. the empty one or a
    hot heartbeat status, ship once per buffer) plus columnar headers.
    Callers add events in canonical ``(round, node, seq)`` order, so the
    round and node columns are runs and RLE-encode to a few bytes each::

        u8   flags      # bit0: 32-bit node ids, bit1: 32-bit frame idx, bit2: zlib
        u32  frame_count
        frame_count x { u32 length, <length> data-JSON bytes }
        u32  round_group_count
        round_group_count x { u32 round, u32 run_length }
        u32  node_group_count
        node_group_count x { id node, u32 run_length }
        u32  header_count
        header_count x u32  seq column
        header_count x u8   kind column
        header_count x idx  frame-index column

    Node ids are unsigned on the wire: only worker-resident nodes ship
    events, and those are real topology ids (the chaos layer's synthetic
    node ``-1`` reorder events are emitted parent-side and never cross).
    """

    __slots__ = ()

    def add(
        self, node: int, round_no: int, seq: int, kind: int, blob: bytes
    ) -> None:
        if node < 0:
            raise ValueError("event frames carry real (non-negative) node ids")
        self.headers.append((round_no, node, seq, kind, self.add_frame(blob)))

    def finish(self) -> bytes:
        headers = self.headers
        max_id = max((h[1] for h in headers), default=0)
        wide_id = max_id > 0xFFFF
        wide_idx = len(self._frames) > 0xFFFF
        id_code = "I" if wide_id else "H"
        idx_code = "I" if wide_idx else "H"
        flags = (_FLAG_WIDE_ID if wide_id else 0) | (
            _FLAG_WIDE_IDX if wide_idx else 0
        )
        parts: List[bytes] = [_U8.pack(flags), _U32.pack(len(self._frames))]
        for blob in self._frames:
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        round_groups = _rle([h[0] for h in headers])
        parts.append(_U32.pack(len(round_groups)))
        if round_groups:
            flat = [x for group in round_groups for x in group]
            parts.append(struct.pack(f">{2 * len(round_groups)}I", *flat))
        node_groups = _rle([h[1] for h in headers])
        parts.append(_U32.pack(len(node_groups)))
        if node_groups:
            flat = [x for group in node_groups for x in group]
            parts.append(
                struct.pack(">" + (id_code + "I") * len(node_groups), *flat)
            )
        count = len(headers)
        parts.append(_U32.pack(count))
        if count:
            parts.append(struct.pack(f">{count}I", *[h[2] for h in headers]))
            parts.append(bytes(h[3] for h in headers))
            parts.append(
                struct.pack(f">{count}{idx_code}", *[h[4] for h in headers])
            )
        buffer = b"".join(parts)
        self.raw_bytes = len(buffer)
        if len(buffer) > _COMPRESS_MIN:
            body = zlib.compress(buffer[1:], 1)
            if len(body) + 1 < len(buffer):
                return _U8.pack(flags | _FLAG_ZLIB) + body
        return buffer


def unpack_events(buffer: bytes) -> List[Tuple[int, int, int, int, bytes]]:
    """Decode an event buffer to ``(node, round, seq, kind, data bytes)``
    tuples in header (canonical) order; interned data blobs share one
    bytes object."""
    (flags,) = _U8.unpack_from(buffer, 0)
    if flags & _FLAG_ZLIB:
        buffer = buffer[:1] + zlib.decompress(buffer[1:])
        flags &= ~_FLAG_ZLIB
    pos = 1
    (frame_count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    frames: List[bytes] = []
    for _ in range(frame_count):
        (length,) = _U32.unpack_from(buffer, pos)
        pos += 4
        frames.append(buffer[pos : pos + length])
        pos += length
    id_code = "I" if flags & _FLAG_WIDE_ID else "H"
    idx_code = "I" if flags & _FLAG_WIDE_IDX else "H"
    idx_size = 4 if flags & _FLAG_WIDE_IDX else 2
    (round_group_count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    rounds: List[int] = []
    pair = struct.Struct(">II")
    for _ in range(round_group_count):
        round_no, run = pair.unpack_from(buffer, pos)
        pos += pair.size
        rounds.extend([round_no] * run)
    (node_group_count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    node_pair = struct.Struct(">" + id_code + "I")
    nodes: List[int] = []
    for _ in range(node_group_count):
        node, run = node_pair.unpack_from(buffer, pos)
        pos += node_pair.size
        nodes.extend([node] * run)
    (count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    if len(rounds) != count or len(nodes) != count:
        raise ValueError("round/node runs do not cover the header count")
    seqs = struct.unpack_from(f">{count}I", buffer, pos)
    pos += count * 4
    kinds = buffer[pos : pos + count]
    pos += count
    indices = struct.unpack_from(f">{count}{idx_code}", buffer, pos)
    pos += count * idx_size
    if pos != len(buffer):
        raise ValueError("trailing bytes after event buffer")
    return [
        (node, round_no, seq, kind, frames[idx])
        for node, round_no, seq, kind, idx in zip(
            nodes, rounds, seqs, kinds, indices
        )
    ]


def _unpack_columns(
    buffer: bytes, with_kinds: bool
) -> Tuple[List[bytes], List[int], Tuple[int, ...], Tuple[int, ...], bytes]:
    (flags,) = _U8.unpack_from(buffer, 0)
    if flags & _FLAG_ZLIB:
        buffer = buffer[:1] + zlib.decompress(buffer[1:])
        flags &= ~_FLAG_ZLIB
    pos = 1
    (frame_count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    frames: List[bytes] = []
    for _ in range(frame_count):
        (length,) = _U32.unpack_from(buffer, pos)
        pos += 4
        frames.append(buffer[pos : pos + length])
        pos += length
    id_code = "I" if flags & _FLAG_WIDE_ID else "H"
    id_size = 4 if flags & _FLAG_WIDE_ID else 2
    idx_code = "I" if flags & _FLAG_WIDE_IDX else "H"
    idx_size = 4 if flags & _FLAG_WIDE_IDX else 2
    (group_count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    group = struct.Struct(">" + id_code + "I")
    senders: List[int] = []
    for _ in range(group_count):
        sender, run = group.unpack_from(buffer, pos)
        pos += group.size
        senders.extend([sender] * run)
    (count,) = _U32.unpack_from(buffer, pos)
    pos += 4
    if len(senders) != count:
        raise ValueError("sender runs do not cover the header count")
    targets = struct.unpack_from(f">{count}{id_code}", buffer, pos)
    pos += count * id_size
    indices = struct.unpack_from(f">{count}{idx_code}", buffer, pos)
    pos += count * idx_size
    kinds = b""
    if with_kinds:
        kinds = buffer[pos : pos + count]
        pos += count
    if pos != len(buffer):
        raise ValueError("trailing bytes after frame buffer")
    return frames, senders, targets, indices, kinds


def unpack_deliveries(buffer: bytes) -> List[Tuple[int, int, bytes]]:
    """Decode a delivery buffer to ``(sender, dest, frame bytes)`` triples
    in header order; interned frames share one bytes object."""
    frames, senders, dests, indices, _ = _unpack_columns(buffer, False)
    return [
        (sender, dest, frames[idx])
        for sender, dest, idx in zip(senders, dests, indices)
    ]


def unpack_intents(buffer: bytes) -> List[Tuple[str, int, int, bytes]]:
    """Decode an intent buffer to ``(kind, sender, target, frame bytes)``
    in the workers' emission order (the order replay must preserve
    per sender)."""
    frames, senders, targets, indices, kinds = _unpack_columns(buffer, True)
    return [
        (_KIND_NAME[kind], sender, target, frames[idx])
        for kind, sender, target, idx in zip(kinds, senders, targets, indices)
    ]


# -- frame-decode cache ---------------------------------------------------------

_CACHE_CAPACITY = 4096
_cache: "OrderedDict[bytes, Any]" = OrderedDict()
_cache_enabled = True
_cache_stats: Dict[str, int] = {
    "hits": 0, "misses": 0, "evictions": 0, "uncacheable": 0,
    "memo_seeded": 0,
}
_MISSING = object()


def configure_frame_cache(enabled=None, capacity=None) -> None:
    """Enable/disable or resize the decode cache (clears it on any change)."""
    global _cache_enabled, _CACHE_CAPACITY
    if capacity is not None:
        if capacity <= 0:
            raise ValueError("frame cache capacity must be positive")
        _CACHE_CAPACITY = capacity
    if enabled is not None:
        _cache_enabled = enabled
    _cache.clear()


def frame_cache_stats() -> Dict[str, int]:
    stats = dict(_cache_stats)
    stats["enabled"] = _cache_enabled
    stats["capacity"] = _CACHE_CAPACITY
    stats["entries"] = len(_cache)
    return stats


def reset_frame_cache_stats() -> None:
    _cache_stats.update(
        hits=0, misses=0, evictions=0, uncacheable=0, memo_seeded=0
    )


def decode_frame(data: bytes) -> Any:
    """Decode one canonical frame through the bounded decode cache.

    Equal frame bytes yield the *same* decoded object while cached -- the
    sharing contract protocols already honor for bus broadcast.  Values
    containing mutable containers are never cached (each call decodes a
    fresh object); memo-safe values additionally seed the codec encode
    memo so re-encoding the decode is O(1).
    """
    if _cache_enabled:
        hit = _cache.get(data, _MISSING)
        if hit is not _MISSING:
            _cache.move_to_end(data)
            _cache_stats["hits"] += 1
            return hit
    decoder = _Decoder(data)
    value = decoder.decode_value()
    if decoder.pos != len(data):
        raise ValueError("trailing bytes after message")
    if _cache_enabled:
        if decoder.saw_mutable_container:
            _cache_stats["uncacheable"] += 1
        else:
            _cache_stats["misses"] += 1
            _cache[data] = value
            while len(_cache) > _CACHE_CAPACITY:
                _cache.popitem(last=False)
                _cache_stats["evictions"] += 1
            if (
                not decoder.saw_unfrozen
                and _message._memo_enabled
                # Only tuples and registered dataclasses are ever looked
                # up in the encode memo; seeding anything else is waste.
                and (type(value) is tuple or dataclasses.is_dataclass(value))
            ):
                _memo_store(value, data)
                _cache_stats["memo_seeded"] += 1
    return value


from repro.obs import registry as _telemetry

_telemetry.register("frame_cache", frame_cache_stats, reset_frame_cache_stats)
