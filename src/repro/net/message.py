"""Deterministic binary wire codec.

Every protocol message in this reproduction is serialized through this codec
before it enters the network simulator, so the bandwidth numbers of Fig. 5,
Fig. 6, and Fig. 8 are measured over actual bytes rather than estimated.

The format is a small self-describing tagged encoding supporting the Python
primitives the protocols use (None, bool, int of any size, bytes, str,
tuple, list, dict, frozenset) plus *registered message dataclasses*, which
are encoded as a type tag followed by their fields in declaration order.

Encoding is canonical: dicts and frozensets are serialized in sorted order,
so equal values always produce identical bytes -- a property the evidence
subsystem relies on (signatures are computed over encodings).

Encoding is also *memoized* for recursively-immutable values (tuples and
frozen registered dataclasses whose fields are themselves immutable): a
:class:`RoundMessage`'s shared record tuples are identical objects across
all of a node's per-neighbor messages within a round, so they are encoded
once and the bytes reused.  The memo is keyed by object *identity* and
holds a strong reference to the key object, which makes it sound: the entry
can only be hit while the exact object is alive, and an immutable object's
encoding never changes.  (A value-keyed cache would be unsound here --
``True == 1`` hash-equal but ``encode(True) != encode(1)``.)  Mutable
containers (list, dict) and anything transitively containing them are never
memoized.  The memo is bounded LRU and can be disabled via
:func:`configure_codec_memo`; being a pure function cache, on/off produces
identical bytes.
"""

from __future__ import annotations

import dataclasses
import struct
from collections import OrderedDict
from typing import Any, Dict, List, Tuple, Type

_T_NONE = b"\x00"
_T_TRUE = b"\x01"
_T_FALSE = b"\x02"
_T_INT = b"\x03"
_T_BYTES = b"\x04"
_T_STR = b"\x05"
_T_TUPLE = b"\x06"
_T_LIST = b"\x07"
_T_DICT = b"\x08"
_T_FROZENSET = b"\x09"
_T_MESSAGE = b"\x10"

_registry_by_name: Dict[str, Tuple[int, Type]] = {}
_registry_by_id: Dict[int, Type] = {}
_frozen_by_name: Dict[str, bool] = {}


class Frame:
    """A payload already in canonical wire form.

    The sharded engine's IPC plane (:mod:`repro.net.frames`) ships payloads
    between processes as codec frames -- the exact bytes :func:`encode`
    would produce -- and replays worker-captured intents through the real
    network send path without re-encoding.  A ``Frame`` wraps those bytes
    and *encodes to itself* (``encode(Frame(b)) == b``), so guardian
    charging, per-channel byte accounting, and chaos corruption (which
    garbles the canonical encoding) see byte-for-byte what they would see
    handling the decoded object.  ``decode()`` materializes the payload
    when a consumer actually needs the object.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def decode(self) -> Any:
        return decode(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({len(self.data)} bytes)"

# -- encode memo (see module docstring) ---------------------------------------

_MEMO_CAPACITY = 4096
#: id(obj) -> (obj, encoded bytes).  The strong reference to obj pins its id.
_memo: "OrderedDict[int, Tuple[Any, bytes]]" = OrderedDict()
_memo_enabled = True
_memo_stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0, "saved_bytes": 0}


def configure_codec_memo(enabled=None, capacity=None) -> None:
    """Enable/disable or resize the encode memo (clears it on any change)."""
    global _memo_enabled, _MEMO_CAPACITY
    if capacity is not None:
        if capacity <= 0:
            raise ValueError("codec memo capacity must be positive")
        _MEMO_CAPACITY = capacity
    if enabled is not None:
        _memo_enabled = enabled
    _memo.clear()


def codec_memo_enabled() -> bool:
    return _memo_enabled


def codec_memo_stats() -> Dict[str, int]:
    stats = dict(_memo_stats)
    stats["enabled"] = _memo_enabled
    stats["capacity"] = _MEMO_CAPACITY
    stats["entries"] = len(_memo)
    return stats


def reset_codec_memo_stats() -> None:
    _memo_stats.update(hits=0, misses=0, evictions=0, saved_bytes=0)


def register_message(cls: Type) -> Type:
    """Class decorator registering a dataclass with the codec.

    The type id is derived from the class name (stable across runs and
    processes); registering two distinct classes with the same name is an
    error.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls.__name__} must be a dataclass")
    name = cls.__name__
    type_id = int.from_bytes(
        __import__("hashlib").sha256(name.encode()).digest()[:4], "big"
    )
    existing = _registry_by_id.get(type_id)
    if existing is not None and existing.__name__ != name:
        raise ValueError(f"type-id collision between {name} and {existing.__name__}")
    _registry_by_name[name] = (type_id, cls)
    _registry_by_id[type_id] = cls
    _frozen_by_name[name] = bool(cls.__dataclass_params__.frozen)
    return cls


def _encode_varbytes(data: bytes, out: List[bytes]) -> None:
    out.append(struct.pack(">I", len(data)))
    out.append(data)


def _memo_store(value: Any, blob: bytes) -> None:
    _memo[id(value)] = (value, blob)
    while len(_memo) > _MEMO_CAPACITY:
        _memo.popitem(last=False)
        _memo_stats["evictions"] += 1


def _encode_into(value: Any, out: List[bytes]) -> bool:
    """Append the encoding of ``value`` to ``out``.

    Returns True when ``value`` is *recursively immutable* (so its encoding
    can never change and is safe to memoize by identity), False otherwise.
    """
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        _encode_varbytes(raw, out)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _encode_varbytes(value, out)
    elif isinstance(value, str):
        out.append(_T_STR)
        _encode_varbytes(value.encode("utf-8"), out)
    elif isinstance(value, tuple):
        if _memo_enabled:
            hit = _memo.get(id(value))
            if hit is not None and hit[0] is value:
                _memo.move_to_end(id(value))
                _memo_stats["hits"] += 1
                _memo_stats["saved_bytes"] += len(hit[1])
                out.append(hit[1])
                return True
        sub: List[bytes] = [_T_TUPLE, struct.pack(">I", len(value))]
        safe = True
        for item in value:
            safe = _encode_into(item, sub) and safe
        blob = b"".join(sub)
        out.append(blob)
        if _memo_enabled and safe:
            _memo_stats["misses"] += 1
            _memo_store(value, blob)
        return safe
    elif isinstance(value, list):
        out.append(_T_LIST)
        out.append(struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, out)
        return False
    elif isinstance(value, dict):
        out.append(_T_DICT)
        items = sorted(value.items(), key=lambda kv: encode(kv[0]))
        out.append(struct.pack(">I", len(items)))
        for k, v in items:
            _encode_into(k, out)
            _encode_into(v, out)
        return False
    elif isinstance(value, frozenset):
        out.append(_T_FROZENSET)
        items = sorted(value, key=encode)
        out.append(struct.pack(">I", len(items)))
        safe = True
        for item in items:
            safe = _encode_into(item, out) and safe
        return safe
    elif type(value) is Frame:
        # Already canonical bytes; splice them in verbatim.  Immutable, so
        # containers holding frames stay memo-safe.
        out.append(value.data)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _registry_by_name:
            raise TypeError(f"unregistered message type: {name}")
        if _memo_enabled:
            hit = _memo.get(id(value))
            if hit is not None and hit[0] is value:
                _memo.move_to_end(id(value))
                _memo_stats["hits"] += 1
                _memo_stats["saved_bytes"] += len(hit[1])
                out.append(hit[1])
                return True
        type_id, _ = _registry_by_name[name]
        fields = dataclasses.fields(value)
        sub = [_T_MESSAGE, struct.pack(">I", type_id), struct.pack(">I", len(fields))]
        safe = _frozen_by_name[name]
        for f in fields:
            safe = _encode_into(getattr(value, f.name), sub) and safe
        blob = b"".join(sub)
        out.append(blob)
        if _memo_enabled and safe:
            _memo_stats["misses"] += 1
            _memo_store(value, blob)
        return safe
    else:
        raise TypeError(f"cannot encode value of type {type(value).__name__}")
    return True


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes."""
    out: List[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def encoded_size(value: Any) -> int:
    """Size in bytes of ``encode(value)``.

    Routed through the encode memo: sizing an already-memoized frozen
    message (or a :class:`Frame`) is O(1) and never re-materializes the
    bytes.  Memo hits are counted in the memo stats exactly like
    :func:`encode` hits.
    """
    if type(value) is Frame:
        return len(value.data)
    if _memo_enabled:
        hit = _memo.get(id(value))
        if hit is not None and hit[0] is value:
            _memo.move_to_end(id(value))
            _memo_stats["hits"] += 1
            _memo_stats["saved_bytes"] += len(hit[1])
            return len(hit[1])
    return len(encode(value))


class _Decoder:
    """Streaming decoder over one canonical encoding.

    Tracks two safety flags the frame-decode cache (:mod:`repro.net.frames`)
    consults: ``saw_mutable_container`` (a list or dict anywhere in the
    value -- sharing such a decode between recipients would alias mutable
    state) and ``saw_unfrozen`` (a non-frozen registered dataclass -- safe
    to share the way bus broadcast already shares delivered messages, but
    not safe to seed the identity-keyed encode memo with).
    """

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.saw_mutable_container = False
        self.saw_unfrozen = False

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValueError("truncated message")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def _take_varbytes(self) -> bytes:
        (length,) = struct.unpack(">I", self._take(4))
        return self._take(length)

    def decode_value(self) -> Any:
        tag = self._take(1)
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return int.from_bytes(self._take_varbytes(), "big", signed=True)
        if tag == _T_BYTES:
            return self._take_varbytes()
        if tag == _T_STR:
            return self._take_varbytes().decode("utf-8")
        if tag == _T_TUPLE:
            (count,) = struct.unpack(">I", self._take(4))
            return tuple(self.decode_value() for _ in range(count))
        if tag == _T_LIST:
            self.saw_mutable_container = True
            (count,) = struct.unpack(">I", self._take(4))
            return [self.decode_value() for _ in range(count)]
        if tag == _T_DICT:
            self.saw_mutable_container = True
            (count,) = struct.unpack(">I", self._take(4))
            return {self.decode_value(): self.decode_value() for _ in range(count)}
        if tag == _T_FROZENSET:
            (count,) = struct.unpack(">I", self._take(4))
            return frozenset(self.decode_value() for _ in range(count))
        if tag == _T_MESSAGE:
            (type_id,) = struct.unpack(">I", self._take(4))
            cls = _registry_by_id.get(type_id)
            if cls is None:
                raise ValueError(f"unknown message type id {type_id}")
            if not _frozen_by_name.get(cls.__name__, False):
                self.saw_unfrozen = True
            (count,) = struct.unpack(">I", self._take(4))
            fields = dataclasses.fields(cls)
            if count != len(fields):
                raise ValueError(
                    f"field count mismatch for {cls.__name__}: {count} != {len(fields)}"
                )
            values = [self.decode_value() for _ in range(count)]
            return cls(**{f.name: v for f, v in zip(fields, values)})
        raise ValueError(f"unknown tag {tag!r}")


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`.

    Raises ValueError on malformed or trailing data.
    """
    decoder = _Decoder(data)
    value = decoder.decode_value()
    if decoder.pos != len(data):
        raise ValueError("trailing bytes after message")
    return value

from repro.obs import registry as _telemetry

_telemetry.register("codec_memo", codec_memo_stats, reset_codec_memo_stats)
