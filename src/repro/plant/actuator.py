"""PWM-style actuator traces (paper S4.1/S5.8, Fig. 11).

The testbed measures actuator outputs with an oscilloscope: each actuator
emits a PWM signal whose duty cycle follows the received command.  We
reproduce the analysis side: a :class:`PWMTrace` records the command applied
in each round and offers the Fig. 11 metrics -- when the signal was
disrupted (garbage commands), when it went flat (flow dropped), and when it
returned to normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.plant.fixedpoint import decode_micro


@dataclass
class PWMTrace:
    """Round-indexed actuator command trace.

    Attributes:
        name: actuator label (e.g. ``"A1-alarm"``).
        samples: (round, duty_micro) pairs, one per applied command.
    """

    name: str = ""
    samples: List[Tuple[int, int]] = field(default_factory=list)

    def apply(self, round_no: int, payload: bytes, origin: int) -> None:
        """Callback wired into :class:`~repro.core.devices.ActuatorDevice`."""
        self.samples.append((round_no, decode_micro(payload)))

    def duty_in_round(self, round_no: int) -> Optional[int]:
        values = [duty for r, duty in self.samples if r == round_no]
        return values[-1] if values else None

    def rounds_with_signal(self, start: int, end: int) -> List[int]:
        return sorted({r for r, _ in self.samples if start <= r <= end})

    def starved_rounds(self, start: int, end: int) -> List[int]:
        """Rounds in [start, end] with no command at all (flat line)."""
        present = set(self.rounds_with_signal(start, end))
        return [r for r in range(start, end + 1) if r not in present]

    def disrupted_rounds(
        self, start: int, end: int, expected: Tuple[int, int]
    ) -> List[int]:
        """Rounds whose duty fell outside the ``expected`` (lo, hi) band --
        the 'irregular pattern' of Fig. 11(a)."""
        lo, hi = expected
        return sorted(
            {
                r
                for r, duty in self.samples
                if start <= r <= end and not lo <= duty <= hi
            }
        )

    def recovery_round(
        self, fault_round: int, expected: Tuple[int, int], settle: int = 3
    ) -> Optional[int]:
        """First round >= fault_round from which the signal stays in the
        expected band (with data present) for ``settle`` consecutive rounds.
        """
        if not self.samples:
            return None
        last = max(r for r, _ in self.samples)
        for candidate in range(fault_round, last - settle + 2):
            window = range(candidate, candidate + settle)
            ok = True
            for r in window:
                duty = self.duty_in_round(r)
                if duty is None or not expected[0] <= duty <= expected[1]:
                    ok = False
                    break
            if ok:
                return candidate
        return None
