"""The Fig. 1 chemical reactor and its four control flows.

A lumped-parameter reactor: the burner adds heat, heat raises temperature,
temperature raises vapor pressure, the safety valve vents pressure, and the
environment bleeds heat away.  The paper's intro scenario -- an attacker
running the burner continuously toward an explosion, with lasting damage
only after seconds (thermal capacity = the BTR window) -- falls out of the
time constants.

The four flows of Fig. 1(b/c), as fixed-point auditable tasks:

* **pressure alarm** (T1, very high): threshold detector on the pressure.
* **burner control** (T2 -> T3, high): bang-bang temperature regulation;
  T2 computes the error, T3 the burner duty.
* **valve control** (T4 -> T5, medium): proportional pressure relief.
* **monitor** (T6 -> T7 -> T8, low): telemetry aggregation pipeline.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.auditing import TaskLogic
from repro.plant.fixedpoint import MICRO, clamp, decode_micro, encode_micro


class ChemicalReactor:
    """Lumped thermal/pressure model of the reactor vessel.

    State: temperature (K) and gauge pressure (kPa).  Inputs each step:
    burner duty and valve opening, both in [0, 1].
    """

    AMBIENT_K = 300.0

    def __init__(
        self,
        temperature_k: float = 350.0,
        pressure_kpa: float = 120.0,
        heat_rate: float = 40.0,       # K/s at full burner
        cooling_rate: float = 0.05,    # 1/s toward ambient
        pressure_gain: float = 2.0,    # kPa per K above ambient (equilibrium)
        vent_rate: float = 200.0,      # kPa/s at full valve opening
        pressure_tau: float = 0.5,     # s, pressure relaxation time
    ):
        self.temperature_k = temperature_k
        self.pressure_kpa = pressure_kpa
        self.heat_rate = heat_rate
        self.cooling_rate = cooling_rate
        self.pressure_gain = pressure_gain
        self.vent_rate = vent_rate
        self.pressure_tau = pressure_tau
        self.burner_duty = 0.0
        self.valve_opening = 0.0
        self.history: List[Tuple[float, float, float]] = []
        self._time = 0.0

    def set_burner(self, duty: float) -> None:
        self.burner_duty = max(0.0, min(1.0, duty))

    def set_valve(self, opening: float) -> None:
        self.valve_opening = max(0.0, min(1.0, opening))

    def step(self, dt: float) -> None:
        heat_in = self.heat_rate * self.burner_duty
        cooling = self.cooling_rate * (self.temperature_k - self.AMBIENT_K)
        self.temperature_k += (heat_in - cooling) * dt
        equilibrium = self.pressure_gain * (self.temperature_k - self.AMBIENT_K)
        relax = (equilibrium - self.pressure_kpa) / self.pressure_tau
        vent = self.vent_rate * self.valve_opening
        self.pressure_kpa = max(0.0, self.pressure_kpa + (relax - vent) * dt)
        self._time += dt
        self.history.append((self._time, self.temperature_k, self.pressure_kpa))


# -- auditable control tasks ------------------------------------------------------


class PressureAlarmTask(TaskLogic):
    """T1: raise the alarm output when pressure exceeds the threshold."""

    def __init__(self, threshold_micro_kpa: int = 250 * MICRO):
        self.threshold = threshold_micro_kpa

    def compute(self, state, inputs, round_no):
        pressure = decode_micro(inputs[0][1]) if inputs else 0
        alarm = MICRO if pressure > self.threshold else 0
        return b"", encode_micro(alarm)


class BurnerControlTask(TaskLogic):
    """T2: temperature error with hysteresis decision (bang-bang stage).

    Output: desired burner duty request in micro-units.  State: the last
    command (hysteresis memory).
    """

    def __init__(self, setpoint_micro_k: int = 360 * MICRO,
                 hysteresis_micro_k: int = 2 * MICRO):
        self.setpoint = setpoint_micro_k
        self.hysteresis = hysteresis_micro_k

    def initial_state(self) -> bytes:
        return encode_micro(0)

    def compute(self, state, inputs, round_no):
        last = decode_micro(state) if state else 0
        temperature = decode_micro(inputs[0][1]) if inputs else self.setpoint
        if temperature < self.setpoint - self.hysteresis:
            command = MICRO
        elif temperature > self.setpoint + self.hysteresis:
            command = 0
        else:
            command = last
        return encode_micro(command), encode_micro(command)


class BurnerActuationTask(TaskLogic):
    """T3: turn the duty request into the burner actuation command.

    Applies a rate limit: the burner command may change by at most
    ``slew_micro`` per period (a realistic actuator constraint that also
    bounds how violently a *correct* controller can behave).
    """

    def __init__(self, slew_micro: int = MICRO // 4):
        self.slew = slew_micro

    def initial_state(self) -> bytes:
        return encode_micro(0)

    def compute(self, state, inputs, round_no):
        current = decode_micro(state) if state else 0
        request = decode_micro(inputs[0][1]) if inputs else 0
        request = clamp(request, 0, MICRO)
        step = clamp(request - current, -self.slew, self.slew)
        command = clamp(current + step, 0, MICRO)
        return encode_micro(command), encode_micro(command)


class ValveControlTask(TaskLogic):
    """T4: proportional pressure-relief request above the relief setpoint."""

    def __init__(self, relief_micro_kpa: int = 150 * MICRO,
                 gain_micro_per_kpa: int = MICRO // 50):
        self.relief = relief_micro_kpa
        self.gain = gain_micro_per_kpa

    def compute(self, state, inputs, round_no):
        pressure = decode_micro(inputs[0][1]) if inputs else 0
        excess = max(0, pressure - self.relief)
        opening = clamp(excess // MICRO * self.gain, 0, MICRO)
        return b"", encode_micro(opening)


class ValveActuationTask(TaskLogic):
    """T5: pass the valve request through (actuation stage)."""

    def compute(self, state, inputs, round_no):
        request = decode_micro(inputs[0][1]) if inputs else 0
        return b"", encode_micro(clamp(request, 0, MICRO))


class SensorStageTask(TaskLogic):
    """A generic pipeline stage that forwards its first input (monitor T6/T7)."""

    def compute(self, state, inputs, round_no):
        payload = inputs[0][1] if inputs else encode_micro(0)
        return b"", payload


class MonitorTask(TaskLogic):
    """T8: aggregate all inputs into one telemetry word (sum, saturating)."""

    def compute(self, state, inputs, round_no):
        total = sum(decode_micro(payload) for _pid, payload in inputs)
        return b"", encode_micro(clamp(total, -(2**62), 2**62))
