"""Integer fixed-point encoding for control values on the wire.

The wire codec deliberately rejects floats (non-canonical encodings would
break signature determinism), and task logic must replay bit-exactly on
replicas and PoM verifiers.  All control values therefore travel as signed
64-bit integers in *micro-units* (1e-6 of the physical unit).
"""

from __future__ import annotations

MICRO = 1_000_000


def to_micro(value: float) -> int:
    """Convert a physical value to micro-units (rounds toward nearest)."""
    return int(round(value * MICRO))


def from_micro(value: int) -> float:
    """Convert micro-units back to a float physical value."""
    return value / MICRO


def encode_micro(value: int) -> bytes:
    """Serialize a micro-unit integer to 8 signed big-endian bytes."""
    return int(value).to_bytes(8, "big", signed=True)


def decode_micro(data: bytes) -> int:
    """Parse 8 signed big-endian bytes; malformed input decodes to 0.

    Robust parsing matters: a Byzantine upstream may send arbitrary bytes,
    and control tasks must remain total functions (they run every round).
    """
    if len(data) != 8:
        return 0
    return int.from_bytes(data[:8], "big", signed=True)


def clamp(value: int, low: int, high: int) -> int:
    """Clamp an integer into [low, high]."""
    return max(low, min(high, value))
