"""Volvo XC90 longitudinal dynamics (paper S5.7, Fig. 10).

A standard point-mass longitudinal model:

    m * dv/dt = F_engine - F_drag - F_roll
    F_engine  = throttle * min(P_max / max(v, v_eps), m * a_max)
    F_drag    = 0.5 * rho * Cd * A * v^2
    F_roll    = Crr * m * g

with the XC90 parameters the paper cites: 235 kW peak power and a maximum
acceleration of 4.96 m/s^2 (the physical property that limits the damage an
attacker can do during the recovery window -- the "window of opportunity"
of S5.7).  Curb mass, drag area, and rolling resistance come from public
T6 specifications.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VehicleParams:
    """Longitudinal-model parameters."""

    mass_kg: float
    power_w: float
    max_accel_ms2: float
    drag_coefficient: float
    frontal_area_m2: float
    rolling_resistance: float
    air_density: float = 1.225
    gravity: float = 9.81


XC90_PARAMS = VehicleParams(
    mass_kg=2_109.0,          # XC90 T6 curb weight
    power_w=235_000.0,        # paper S5.7: 235 kW
    max_accel_ms2=4.96,       # paper S5.7: 4.96 m/s^2
    drag_coefficient=0.33,
    frontal_area_m2=2.75,
    rolling_resistance=0.010,
)

MPH_PER_MS = 2.23693629


class VehicleModel:
    """Forward-integrated longitudinal vehicle state.

    Args:
        params: physical parameters.
        initial_speed_ms: starting speed in m/s.
    """

    def __init__(self, params: VehicleParams = XC90_PARAMS, initial_speed_ms: float = 0.0):
        self.params = params
        self.speed_ms = initial_speed_ms
        self.throttle = 0.0  # commanded throttle in [0, 1]
        self.history = [(0.0, initial_speed_ms)]
        self._time = 0.0

    @property
    def speed_mph(self) -> float:
        return self.speed_ms * MPH_PER_MS

    def set_throttle(self, throttle: float) -> None:
        self.throttle = max(0.0, min(1.0, throttle))

    def step(self, dt: float) -> float:
        """Advance the model by ``dt`` seconds; returns the new speed."""
        p = self.params
        v = max(self.speed_ms, 0.1)
        engine_force = self.throttle * min(p.power_w / v, p.mass_kg * p.max_accel_ms2)
        drag = 0.5 * p.air_density * p.drag_coefficient * p.frontal_area_m2 * v * v
        rolling = p.rolling_resistance * p.mass_kg * p.gravity
        accel = (engine_force - drag - rolling) / p.mass_kg
        accel = max(-p.max_accel_ms2, min(p.max_accel_ms2, accel))
        self.speed_ms = max(0.0, self.speed_ms + accel * dt)
        self._time += dt
        self.history.append((self._time, self.speed_ms))
        return self.speed_ms

    def steady_state_throttle(self, speed_ms: float) -> float:
        """Throttle that holds ``speed_ms`` on level ground (feed-forward)."""
        p = self.params
        v = max(speed_ms, 0.1)
        drag = 0.5 * p.air_density * p.drag_coefficient * p.frontal_area_m2 * v * v
        rolling = p.rolling_resistance * p.mass_kg * p.gravity
        engine_cap = min(p.power_w / v, p.mass_kg * p.max_accel_ms2)
        return max(0.0, min(1.0, (drag + rolling) / engine_cap))

    def speeds_mph(self):
        """(time_s, speed_mph) samples for plotting/reporting (Fig. 10)."""
        return [(t, v * MPH_PER_MS) for t, v in self.history]
