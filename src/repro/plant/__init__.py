"""Physical-plant models and control tasks.

The evaluation's two case studies are closed physical loops:

* the Fig. 1/11 **chemical reactor** (burner, safety valve, pressure alarm,
  monitor), and
* the S5.7/Fig. 10 **Volvo XC90** longitudinal dynamics under a PI cruise
  controller (235 kW, 4.96 m/s^2 acceleration cap).

Control tasks are implemented in *integer fixed-point arithmetic* so that
deterministic replay (the auditing layer) is bit-exact across primaries,
replicas, and PoM verifiers.
"""

from repro.plant.fixedpoint import MICRO, decode_micro, encode_micro
from repro.plant.vehicle import VehicleModel, XC90_PARAMS
from repro.plant.cruise import CruiseControlTask, PIController
from repro.plant.chemical import (
    BurnerControlTask,
    ChemicalReactor,
    MonitorTask,
    PressureAlarmTask,
    SensorStageTask,
    ValveControlTask,
)
from repro.plant.actuator import PWMTrace

__all__ = [
    "MICRO",
    "encode_micro",
    "decode_micro",
    "VehicleModel",
    "XC90_PARAMS",
    "PIController",
    "CruiseControlTask",
    "ChemicalReactor",
    "PressureAlarmTask",
    "BurnerControlTask",
    "ValveControlTask",
    "MonitorTask",
    "SensorStageTask",
    "PWMTrace",
]
