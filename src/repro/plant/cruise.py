"""PI cruise control (paper S5.7: "a PI controller for adaptive cruise
control, based on [44, 88] and parameters from the XC90 specifications").

Two artifacts:

* :class:`PIController` -- a float PI controller for standalone use.
* :class:`CruiseControlTask` -- the same controller in integer fixed-point
  arithmetic as REBOUND :class:`~repro.core.auditing.TaskLogic`, so that
  deterministic replay is bit-exact.  Input: speed reading in micro-m/s;
  output: throttle command in micro-units of [0, 1]; state: the integral
  accumulator in micro-units.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.auditing import TaskLogic
from repro.plant.fixedpoint import MICRO, clamp, decode_micro, encode_micro


class PIController:
    """A plain PI controller with anti-windup clamping."""

    def __init__(self, kp: float, ki: float, dt: float,
                 output_low: float = 0.0, output_high: float = 1.0):
        self.kp = kp
        self.ki = ki
        self.dt = dt
        self.output_low = output_low
        self.output_high = output_high
        self.integral = 0.0

    def step(self, setpoint: float, measurement: float) -> float:
        error = setpoint - measurement
        self.integral += error * self.dt
        raw = self.kp * error + self.ki * self.integral
        if raw > self.output_high:
            self.integral -= error * self.dt  # anti-windup: undo
            raw = self.output_high
        elif raw < self.output_low:
            self.integral -= error * self.dt
            raw = self.output_low
        return raw


class CruiseControlTask(TaskLogic):
    """Fixed-point PI cruise control as an auditable REBOUND task.

    Args:
        setpoint_micro_ms: target speed in micro-m/s.
        kp_micro / ki_micro: gains scaled by MICRO (e.g. kp=0.08 ->
            kp_micro=80_000).
        dt_micro_s: control period in microseconds.
        feedforward_micro: constant throttle feed-forward in micro-units
            (holds the setpoint approximately; the PI trims the residual).
    """

    def __init__(
        self,
        setpoint_micro_ms: int,
        kp_micro: int = 80_000,
        ki_micro: int = 20_000,
        dt_micro_s: int = 10_000,
        feedforward_micro: int = 0,
    ):
        self.setpoint = setpoint_micro_ms
        self.kp = kp_micro
        self.ki = ki_micro
        self.dt = dt_micro_s
        self.feedforward = feedforward_micro

    def initial_state(self) -> bytes:
        return encode_micro(0)  # integral accumulator

    def compute(
        self, state: bytes, inputs: List[Tuple[int, bytes]], round_no: int
    ) -> Tuple[bytes, bytes]:
        integral = decode_micro(state) if state else 0
        if inputs:
            measurement = decode_micro(inputs[0][1])
        else:
            measurement = self.setpoint  # hold: no reading, assume on target
        error = self.setpoint - measurement  # micro-m/s
        # All quantities in micro-units; divide by MICRO after each product.
        integral += error * self.dt // MICRO
        raw = (
            self.feedforward
            + self.kp * error // MICRO
            + self.ki * integral // MICRO
        )
        if raw > MICRO or raw < 0:
            integral -= error * self.dt // MICRO  # anti-windup
        throttle = clamp(raw, 0, MICRO)
        return encode_micro(integral), encode_micro(throttle)
