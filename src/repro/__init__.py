"""REBOUND: bounded-time recovery for distributed systems under attack.

A from-scratch reproduction of Gandhi et al., EuroSys 2021.  The most
common entry points:

    from repro import ReboundConfig, ReboundSystem
    from repro.net.topology import chemical_plant_topology
    from repro.sched.task import chemical_plant_workload

    system = ReboundSystem(
        chemical_plant_topology(),
        chemical_plant_workload(),
        ReboundConfig(fmax=3, fconc=1),
    )
    system.run(15)

See README.md for the architecture tour, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem

__version__ = "0.1.0"

__all__ = ["ReboundConfig", "ReboundSystem", "__version__"]
