"""Self-stabilization: periodic state audit + quorum resync (PROTOCOL.md §16).

The BTR fault model (paper §2) covers nodes that are *correct* or
*faulty-and-evicted*; a transiently corrupted evidence store, epoch digest,
mode pointer, or quota ledger on an otherwise-correct node is outside it.
Following the self-stabilizing BRB line of work (Duvignau–Raynal–Schiller,
PAPERS.md), every node runs a periodic :class:`StateAuditor` that digests
its protocol state into an audit beacon, checks it against invariants that
hold *by construction* in any uncorrupted execution, cross-checks the
evidence root against quorum, and on divergence resyncs the node from a
quorum reference plus the durable verified prefix (PR 8) -- converging back
to quorum-consistent state within :func:`convergence_bound` rounds, the
Req-S bound asserted by :class:`~repro.chaos.monitor.BTRMonitor`.
"""

from repro.stabilize.auditor import (
    StateAuditor,
    convergence_bound,
    reset_stabilize_stats,
    stabilize_stats,
)

__all__ = [
    "StateAuditor",
    "convergence_bound",
    "reset_stabilize_stats",
    "stabilize_stats",
]
