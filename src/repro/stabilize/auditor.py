"""The periodic per-node state auditor (docs/PROTOCOL.md §16).

Every ``audit_interval`` rounds the auditor computes a compact **audit
beacon** over one node's protocol state -- evidence root, epoch-digest
memo, mode pointer, quota ledger -- and checks it two ways:

* **Local invariants.**  Each audited field is either content-addressed
  (evidence items are keyed by canonical digest; the set digest is a hash
  of the keys), derivable (the mode pointer must equal the tree lookup for
  the current fault pattern; quota caps are pure functions of the
  topology), or bounded (ledger counters are non-negative, suspects are
  controllers).  Any single-field transient corruption therefore breaks at
  least one *locally checkable* invariant -- no network traffic needed to
  detect it.
* **Quorum cross-check.**  Correct stores are not byte-identical in steady
  state (own issues flood out with a lag; bounded buckets keep rank
  extremes), so the reference is the *majority-held, flood-stale core*:
  items a majority of the other correct controllers hold whose accusation
  round is more than ``d_max`` rounds old.  A node missing any of those
  provably dropped a flood; it resyncs by merging exactly that core (the
  same trust step ``repair_and_bless`` already takes) plus, when
  durability is on, the items decoded from its own durable log's verified
  prefix (tamper-evident by PR 8's HMAC chain, so corruption of the
  in-RAM store cannot be laundered into the resync source).

On divergence the auditor repairs in place -- re-key flipped store
entries, drop the poisoned digest memo, rebuild the quota ledger, force a
fresh mode adoption -- and reports the resync to the monitor so the node
is not condemned mid-convergence (the shared accusation-grace window).
Convergence is *quorum consistency*: local invariants hold and the node's
evidence covers everything the quorum reference knows.  The whole pass is
observation-only when nothing is corrupted, so enabling stabilization
leaves transcripts byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.evidence import _accusation_round_of
from repro.crypto.hashing import hash_bytes
from repro.obs import recorder as _flight
from repro.obs.events import (
    EV_AUDIT_BEACON,
    EV_AUDIT_DIVERGENCE,
    EV_AUDIT_RESYNC,
)

_stab_stats: Dict[str, int] = {
    "beacons": 0,
    "divergences": 0,
    "resyncs": 0,
    "repaired_items": 0,
    "replayed_items": 0,
}


def stabilize_stats() -> Dict[str, int]:
    return dict(_stab_stats)


def reset_stabilize_stats() -> None:
    for key in _stab_stats:
        _stab_stats[key] = 0


def convergence_bound(audit_interval: int, d_max: int) -> int:
    """Req-S: rounds from corruption to quorum-consistency (§16.3).

    One full audit interval until the next tick sees the damage and
    repairs the local invariants, ``d_max`` for any evidence the node
    dropped while corrupted to age past the in-flight window (younger
    items may legitimately still be flooding), one more interval for the
    tick that merges that stale core, plus two rounds of slack for
    secondary evidence triggered by the transient itself (e.g. LFDs
    declared against a mode-scrambled node's paths)."""
    return 2 * audit_interval + d_max + 2


class StateAuditor:
    """Audits one controller's in-RAM protocol state each audit interval.

    The auditor holds a system handle the way :class:`BTRMonitor` does: in
    the simulator the "beacon exchange" collapses to reading the other
    correct controllers' evidence roots directly, which is observationally
    equivalent to the broadcast round a live deployment would run.
    """

    def __init__(self, system, node_id: int, interval: int):
        self.system = system
        self.node_id = node_id
        self.interval = max(1, interval)
        self.beacons = 0
        #: One dict per detected divergence: ``node``, ``detected_round``,
        #: ``issues``, ``resynced_round``, ``resolved_round`` (None while
        #: open), ``repaired``/``merged``/``replayed`` item counts.
        self.divergences: List[Dict[str, Any]] = []
        #: ``(round, outstanding issues)`` per audit tick, post-resync.  A
        #: tick with no issues is a *clean* audit -- the convergence
        #: judgment accepts corruption that healed naturally (fresh
        #: evidence overwrote the damage before the tick) the same as
        #: corruption the resync repaired.
        self.audits: List[Tuple[int, Tuple[str, ...]]] = []

    # -- beacon -----------------------------------------------------------------

    def _node(self):
        return self.system.nodes[self.node_id]

    def beacon(self) -> Dict[str, Any]:
        """The compact state digest a live node would broadcast."""
        node = self._node()
        fwd = node.forwarding
        schedule = node.current_schedule
        mode_key = (
            (tuple(sorted(schedule.failed_nodes)),
             tuple(sorted(schedule.failed_links)))
            if schedule is not None
            else None
        )
        quotas = fwd.quotas
        quota_key = (
            (tuple(sorted(quotas.suspects)),
             quotas.total_charged, quotas.total_dropped)
            if quotas is not None
            else None
        )
        root = fwd.evidence.digest()
        return {
            "root": root,
            "items": len(fwd.evidence),
            "mode": mode_key,
            "quota": quota_key,
            "digest": hash_bytes(root, repr(mode_key).encode(),
                                 repr(quota_key).encode()),
        }

    # -- local invariants --------------------------------------------------------

    def local_issues(self) -> List[str]:
        """Locally checkable invariant violations, as short tags."""
        node = self._node()
        fwd = node.forwarding
        issues: List[str] = []
        if fwd.evidence.corrupted_keys():
            issues.append("evidence-key")
        if not fwd.evidence.digest_cache_coherent():
            issues.append("epoch-digest")
        expected = node.mode_tree.schedule_for(fwd.fault_pattern)
        if node.current_schedule != expected:
            issues.append("mode-pointer")
        if fwd.quotas is not None and fwd.quotas.ledger_issues(
            self.system.topology.controllers
        ):
            issues.append("quota-ledger")
        return issues

    # -- quorum cross-check ------------------------------------------------------

    def _quorum_items(self, round_no: int) -> Dict[bytes, Any]:
        """Evidence items held by a majority of the *other* correct
        controllers whose accusation round is at least ``d_max`` rounds
        old -- old enough that flooding must already have delivered them
        to every correct node.

        Correct stores are not byte-identical in steady state (each node
        keeps its own idiosyncratic issues, and bounded buckets keep rank
        extremes that depend on arrival order), so the reference is the
        majority-held *stale* core, not any single peer's store: fresh
        items may still be in flight, and single-holder items prove
        nothing about this node."""
        system = self.system
        peers = [p for p in system.correct_controllers() if p != self.node_id]
        if not peers:
            return {}
        d_max = system.config.d_max
        need = len(peers) // 2 + 1
        counts: Dict[bytes, int] = {}
        samples: Dict[bytes, Any] = {}
        for peer in peers:
            for digest, item in system.nodes[
                peer
            ].forwarding.evidence._items.items():
                counts[digest] = counts.get(digest, 0) + 1
                samples[digest] = item
        quorum: Dict[bytes, Any] = {}
        for digest, count in counts.items():
            if count < need:
                continue
            item = samples[digest]
            accused_round = _accusation_round_of(item)
            if accused_round is not None and accused_round + d_max < round_no:
                quorum[digest] = item
        return quorum

    def quorum_consistent(self, round_no: Optional[int] = None) -> bool:
        """Quorum consistency (§16.3): the node holds (or has a full
        bucket dominating) every majority-held, flood-stale item.  Being
        *ahead* -- holding items the quorum lacks -- is fine: that is its
        own fresh evidence still flooding out."""
        if round_no is None:
            round_no = self.system.round_no
        mine = self._node().forwarding.evidence
        quorum = self._quorum_items(round_no)
        for digest in sorted(quorum):
            if not mine.has_digest(digest) and not mine.dominated(quorum[digest]):
                return False
        return True

    def open_divergence(self) -> Optional[Dict[str, Any]]:
        for record in reversed(self.divergences):
            if record["resolved_round"] is None:
                return record
        return None

    # -- the audit tick ----------------------------------------------------------

    def maybe_audit(self, round_no: int) -> None:
        if round_no % self.interval:
            return
        self.audit(round_no)

    def _all_issues(self, round_no: int) -> List[str]:
        issues = self.local_issues()
        if not self.quorum_consistent(round_no):
            # Missing majority-held stale evidence: the node dropped a
            # flood while running from corrupted state.
            issues.append("evidence-lag")
        return issues

    def audit(self, round_no: int) -> None:
        self.beacons += 1
        _stab_stats["beacons"] += 1
        issues = self._all_issues(round_no)
        record = self.open_divergence()
        rec = _flight.active
        if issues:
            if record is None:
                record = {
                    "node": self.node_id,
                    "detected_round": round_no,
                    "issues": list(issues),
                    "resynced_round": None,
                    "resolved_round": None,
                    "repaired": 0,
                    "merged": 0,
                    "replayed": 0,
                }
                self.divergences.append(record)
                _stab_stats["divergences"] += 1
                if rec is not None:
                    rec.emit(
                        EV_AUDIT_DIVERGENCE,
                        self.node_id,
                        {"issues": list(issues)},
                        round_no=round_no,
                    )
            self._resync(round_no, record)
            issues = self._all_issues(round_no)
        self.audits.append((round_no, tuple(issues)))
        if record is not None and not issues:
            record["resolved_round"] = round_no
            if rec is not None:
                rec.emit(
                    EV_AUDIT_RESYNC,
                    self.node_id,
                    {
                        "merged": record["merged"],
                        "replayed": record["replayed"],
                        "repaired": record["repaired"],
                        "resolved": True,
                    },
                    round_no=round_no,
                )
        if rec is not None:
            rec.emit(
                EV_AUDIT_BEACON,
                self.node_id,
                {
                    "digest": self.beacon()["digest"][:8].hex(),
                    "items": len(self._node().evidence),
                    "ok": not issues,
                    "issues": list(issues),
                },
                round_no=round_no,
            )

    # -- resync ------------------------------------------------------------------

    def _resync(self, round_no: int, record: Dict[str, Any]) -> None:
        """Repair in place from quorum + the durable verified prefix."""
        node = self._node()
        fwd = node.forwarding
        _stab_stats["resyncs"] += 1

        # 1. Structural repair of the evidence store: re-key flipped
        #    entries, drop the (possibly poisoned) digest memo.
        repaired = fwd.evidence.repair()
        record["repaired"] += repaired
        _stab_stats["repaired_items"] += repaired

        # 2. Replay this node's own durable verified prefix (PR 8): every
        #    item it ever admitted, HMAC-chained on disk, so in-RAM loss
        #    is recovered from tamper-evident local history first.
        if node.durable is not None:
            node.durable.flush()
            records, _error = node.durable.log.verified_prefix()
            from repro.net.message import decode
            from repro.obs.events import EV_PERSIST_EVIDENCE

            replayed = 0
            for rec_ in records:
                if rec_["kind"] != EV_PERSIST_EVIDENCE:
                    continue
                item = decode(bytes.fromhex(rec_["data"]["enc"]))
                if fwd.evidence.add(item):
                    replayed += 1
            record["replayed"] += replayed
            _stab_stats["replayed_items"] += replayed

        # 3. Merge the majority-held stale core (same trust step as
        #    repair_and_bless: quorum-verified items are re-admitted
        #    without re-verification).  Deliberately NOT any single peer's
        #    full store -- idiosyncratic single-holder items would skew
        #    this node's fault pattern away from the quorum's.
        quorum = self._quorum_items(round_no)
        merged = 0
        for digest in sorted(quorum):
            if not fwd.evidence.has_digest(digest) and fwd.evidence.add(
                quorum[digest]
            ):
                merged += 1
        record["merged"] += merged

        # 4. Rebuild the quota ledger's derivable fields.
        if fwd.quotas is not None:
            fwd.quotas.reset_ledger(self.system.topology.controllers)
            fwd.quotas.begin_round(round_no)

        # 5. Recompute the fault pattern from the repaired evidence and
        #    force a fresh mode adoption (the pointer itself may be what
        #    was corrupted, and _adopt_mode's no-change fast path would
        #    otherwise trust it).
        fwd._refresh_pattern(initial=True)
        node.readopt_mode(round_no)

        # Coverage suspicions this node raised while corrupted are about a
        # window it could not observe soundly; drop them rather than let
        # them mature into LFDs against innocent peers.
        fwd._pending_rule_b.clear()

        record["resynced_round"] = round_no

        # Escalate to operator absolution (§16.4): corruption may already
        # have leaked into the inference plane -- aggregates skipped on a
        # poisoned epoch digest latch coverage shortfalls at *peers* that
        # no local repair can undo.  The blessing absolves both directions
        # of any accusation on the victim's links and pushes every node's
        # Rule B stable floor past the corrupted window.
        self.system.bless_resync(self.node_id)

        # 6. Tell the monitor: the node is mid-resync, so Rule B coverage
        #    and inference-accuracy checks give it the shared grace window
        #    instead of condemning it (PROTOCOL.md §16.4).
        monitor = self.system.monitor
        if monitor is not None and hasattr(monitor, "note_resync"):
            monitor.note_resync(self.node_id, round_no)


from repro.obs import registry as _telemetry

_telemetry.register("stabilize", stabilize_stats, reset_stabilize_stats)
