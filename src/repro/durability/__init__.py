"""Durable, tamper-evident node state (hash-chained log + snapshots).

Every node can persist its protocol state to disk: an append-only,
HMAC-chained event log (the :mod:`repro.obs` event schema is the record
format) plus periodic consistent snapshots of the evidence store, the
heartbeat/coverage stores, the quota ledger, and the mode pointer.  On
restart a node replays ``snapshot + chained suffix``, verifies the chain
(per-record HMAC, prev-digest linking, snapshot root hash), and rejoins
through the operator blessing flow -- see ``docs/PROTOCOL.md`` S14.

Off by default (``ReboundConfig.durability_enabled``); with persistence
disabled the transcript is byte-identical to a build without this package.
"""

from repro.durability.chain import GENESIS, TamperDetected, chain_tag, derive_key
from repro.durability.log import ChainedEventLog
from repro.durability.snapshot import read_snapshot, write_snapshot
from repro.durability.store import NodeDurableStore, RestoreResult

__all__ = [
    "GENESIS",
    "TamperDetected",
    "chain_tag",
    "derive_key",
    "ChainedEventLog",
    "read_snapshot",
    "write_snapshot",
    "NodeDurableStore",
    "RestoreResult",
]
