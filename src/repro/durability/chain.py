"""HMAC-chain primitives for the durable event log.

The construction (PeerReview-style tamper-evident logs): each record's
authenticator is ``HMAC(key, prev_tag || canonical_body)``, where
``prev_tag`` is the previous record's authenticator and the genesis value
is 32 zero bytes.  Any in-place modification, reorder, or cross-log splice
breaks the recomputed chain at the first affected record; truncation to a
flush boundary is caught by the separately-anchored head commitment (see
:mod:`repro.durability.log`).

The key is derived per node from the deployment seed, so it is
re-derivable after a process restart without any key escrow, and a log
written under one node's key can never verify under another's (splice
resistance across nodes).
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any, Dict, Optional

#: The chain's genesis "previous tag": 32 zero bytes.
GENESIS = b"\x00" * 32

#: Domain-separation prefix for key derivation; bump on format changes.
_KEY_DOMAIN = b"rebound-durability-v1"

#: Record fields covered by the authenticator (everything but the chain
#: fields themselves).
BODY_FIELDS = ("kind", "name", "node", "round", "seq", "data")


class TamperDetected(Exception):
    """Chain verification failed: the durable state was modified on disk.

    ``index`` is the first record index that fails verification (None for
    whole-file problems like a truncated log or a broken snapshot seal);
    everything before ``index`` is the verified prefix and may be trusted.
    """

    def __init__(self, reason: str, index: Optional[int] = None):
        super().__init__(
            reason if index is None else f"{reason} (record {index})"
        )
        self.reason = reason
        self.index = index


def derive_key(seed: int, node_id: int) -> bytes:
    """Per-node log key: a deterministic function of (deployment seed, id)."""
    material = (
        _KEY_DOMAIN
        + int(seed).to_bytes(8, "big", signed=True)
        + int(node_id).to_bytes(8, "big")
    )
    return hashlib.sha256(material).digest()


def canonical_body(record: Dict[str, Any]) -> bytes:
    """The byte string the authenticator covers: the record's schema fields
    in canonical JSON (sorted keys, no whitespace), chain fields excluded.

    Canonicalization matters: the same record must produce the same bytes
    whether it was just built or round-tripped through the JSONL file.
    """
    body = {field: record[field] for field in BODY_FIELDS if field in record}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def chain_tag(key: bytes, prev: bytes, body: bytes) -> bytes:
    """``HMAC-SHA256(key, prev_tag || body)`` -- one chain link."""
    return hmac.new(key, prev + body, hashlib.sha256).digest()


def tags_equal(a: bytes, b: bytes) -> bool:
    """Constant-time tag comparison (verification must not leak prefixes)."""
    return hmac.compare_digest(a, b)
