"""Sealed snapshots: a consistent cut of one node's protocol state.

File layout (binary)::

    4 bytes  big-endian header length H
    H bytes  header JSON: {"round", "manifest", "root", "seal"}
    rest     the state blob (pickled node, network handle detached)

``root`` is SHA-256 of the blob; ``seal`` is ``HMAC(key, domain || round
|| root || manifest)``.  Both are checked **before** the blob is
unpickled -- with the per-node key secret, a tampered blob is rejected at
the seal, so untrusted bytes never reach ``pickle.loads``.  The file
lands via temp-and-rename, so a crash mid-snapshot leaves the previous
snapshot intact.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from typing import Any, Dict, Tuple

from repro.durability.chain import TamperDetected
from repro.obs.ioutil import atomic_open

_SEAL_DOMAIN = b"rebound-snapshot-v1"


def _seal(key: bytes, round_no: int, root: bytes, manifest_json: bytes) -> bytes:
    material = (
        _SEAL_DOMAIN
        + int(round_no).to_bytes(8, "big", signed=True)
        + root
        + manifest_json
    )
    return hmac.new(key, material, hashlib.sha256).digest()


def write_snapshot(
    path: str, key: bytes, round_no: int, manifest: Dict[str, Any], blob: bytes
) -> str:
    """Atomically write a sealed snapshot; returns the root hash (hex)."""
    root = hashlib.sha256(blob).digest()
    manifest_json = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    header = json.dumps(
        {
            "round": round_no,
            "manifest": manifest,
            "root": root.hex(),
            "seal": _seal(key, round_no, root, manifest_json.encode()).hex(),
        },
        sort_keys=True,
    ).encode()
    with atomic_open(path, "wb") as fh:
        fh.write(len(header).to_bytes(4, "big"))
        fh.write(header)
        fh.write(blob)
    return root.hex()


def read_snapshot(path: str, key: bytes) -> Tuple[int, Dict[str, Any], bytes]:
    """Read and verify a sealed snapshot: ``(round, manifest, blob)``.

    Raises :class:`TamperDetected` if the root hash or the HMAC seal fails
    (the blob is never unpickled by this function).
    """
    with open(path, "rb") as fh:
        raw_len = fh.read(4)
        if len(raw_len) != 4:
            raise TamperDetected("snapshot header truncated")
        header_len = int.from_bytes(raw_len, "big")
        header_raw = fh.read(header_len)
        if len(header_raw) != header_len:
            raise TamperDetected("snapshot header truncated")
        try:
            header = json.loads(header_raw)
        except json.JSONDecodeError as exc:
            raise TamperDetected(f"snapshot header is not JSON: {exc}") from exc
        blob = fh.read()
    try:
        round_no = int(header["round"])
        manifest = header["manifest"]
        root = bytes.fromhex(header["root"])
        seal = bytes.fromhex(header["seal"])
    except (KeyError, ValueError, TypeError) as exc:
        raise TamperDetected("snapshot header malformed") from exc
    if hashlib.sha256(blob).digest() != root:
        raise TamperDetected("snapshot root hash mismatch")
    manifest_json = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    if not hmac.compare_digest(
        seal, _seal(key, round_no, root, manifest_json.encode())
    ):
        raise TamperDetected("snapshot seal (HMAC) mismatch")
    return round_no, manifest, blob


def snapshot_exists(path: str) -> bool:
    return os.path.exists(path)
