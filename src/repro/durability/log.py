"""The append-only, HMAC-chained event log.

Records are :mod:`repro.obs.events` schema dicts -- the durable log is a
persistence backend for the flight-recorder format, so every line also
passes ``repro.obs.events.validate_record`` -- extended with two chain
fields:

* ``prev`` -- hex of the previous record's authenticator (genesis: 32
  zero bytes);
* ``tag`` -- hex of ``HMAC(key, prev || canonical_body)``.

Appends buffer in memory and land with one durable write per flush (the
node flushes once per round); each flush atomically replaces the **head
anchor** file ``<log>.head`` holding ``{"count": n, "tag": ...}``.  The
anchor is the truncation defense: a pure hash chain verifies fine after
its tail is cut at a record boundary, but the anchor still names the tag
the chain must reach.  The anchor stands in for an operator-held
commitment -- the tamper model is an adversary with write access to the
log file, not to the operator's anchor (and even an anchor rewrite cannot
forge tags for *modified* records without the key).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.chain import (
    GENESIS,
    TamperDetected,
    canonical_body,
    chain_tag,
    tags_equal,
)
from repro.obs.events import EVENT_NAMES, EVENT_SCHEMA_VERSION
from repro.obs.ioutil import append_lines, atomic_write_text


def head_path(log_path: str) -> str:
    return log_path + ".head"


class ChainedEventLog:
    """One node's append-only chained log (see module docstring).

    The in-memory tail (``count``, last tag) is authoritative between
    flushes; :meth:`resync` re-derives it from a verified on-disk chain
    after a restart.
    """

    def __init__(self, path: str, key: bytes):
        self.path = path
        self.key = key
        self.count = 0
        self._tail = GENESIS
        self._buffer: List[str] = []
        #: per-round sequence counter (the obs-schema ``seq`` field).
        self._seq_round = -1
        self._seq = 0

    # -- appending -----------------------------------------------------------

    def append(
        self, kind: int, node: int, round_no: int, data: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Chain one schema event; buffered until :meth:`flush`."""
        if round_no != self._seq_round:
            self._seq_round = round_no
            self._seq = 0
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "kind": kind,
            "name": EVENT_NAMES[kind],
            "node": node,
            "round": round_no,
            "seq": self._seq,
            "data": data,
        }
        self._seq += 1
        tag = chain_tag(self.key, self._tail, canonical_body(record))
        record["prev"] = self._tail.hex()
        record["tag"] = tag.hex()
        self._tail = tag
        self.count += 1
        self._buffer.append(json.dumps(record, sort_keys=True))
        return record

    @property
    def pending(self) -> int:
        """Buffered records not yet on disk."""
        return len(self._buffer)

    @property
    def tail_tag(self) -> bytes:
        return self._tail

    def flush(self) -> None:
        """Append buffered records, then atomically re-anchor the head."""
        if not self._buffer:
            return
        lines, self._buffer = self._buffer, []
        append_lines(self.path, lines)
        atomic_write_text(
            head_path(self.path),
            json.dumps({"count": self.count, "tag": self._tail.hex()}) + "\n",
        )

    # -- verification / restore ----------------------------------------------

    def read_head(self) -> Optional[Dict[str, Any]]:
        try:
            with open(head_path(self.path)) as fh:
                head = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as exc:
            raise TamperDetected(f"unreadable head anchor: {exc}") from exc
        if not isinstance(head, dict) or "count" not in head or "tag" not in head:
            raise TamperDetected("malformed head anchor")
        try:
            head["count"] = int(head["count"])
            bytes.fromhex(head["tag"])
        except (ValueError, TypeError) as exc:
            raise TamperDetected("malformed head anchor") from exc
        return head

    def verify(self) -> List[Dict[str, Any]]:
        """Recompute the whole chain against the on-disk log + anchor.

        Returns the verified records.  Raises :class:`TamperDetected` on
        the first record whose recomputed tag, prev link, or body fails,
        or when the chain stops short of the anchored (count, tag).
        """
        head = self.read_head()
        records: List[Dict[str, Any]] = []
        prev = GENESIS
        anchored_ok = head is None or (
            head["count"] == 0 and tags_equal(GENESIS, bytes.fromhex(head["tag"]))
        )
        try:
            fh = open(self.path)
        except FileNotFoundError:
            if head is not None and head["count"] > 0:
                raise TamperDetected("log file missing but anchor expects records")
            return []
        with fh:
            for index, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TamperDetected(
                        f"record is not JSON: {exc}", index=index
                    ) from exc
                try:
                    rec_prev = bytes.fromhex(record["prev"])
                    rec_tag = bytes.fromhex(record["tag"])
                except (KeyError, ValueError, TypeError) as exc:
                    raise TamperDetected(
                        "record is missing chain fields", index=index
                    ) from exc
                if not tags_equal(rec_prev, prev):
                    raise TamperDetected("prev-digest link broken", index=index)
                expected = chain_tag(self.key, prev, canonical_body(record))
                if not tags_equal(rec_tag, expected):
                    raise TamperDetected("record HMAC mismatch", index=index)
                prev = rec_tag
                records.append(record)
                if (
                    head is not None
                    and len(records) == head["count"]
                    and tags_equal(rec_tag, bytes.fromhex(head["tag"]))
                ):
                    # Records past the anchor are a benign flush race
                    # (lines land before the anchor is replaced), and their
                    # HMACs still prove authenticity.
                    anchored_ok = True
        if head is not None and not anchored_ok:
            raise TamperDetected(
                f"chain has {len(records)} record(s) but never reaches the "
                f"anchored state (count={head['count']})"
            )
        return records

    def verified_prefix(
        self,
    ) -> Tuple[List[Dict[str, Any]], Optional[TamperDetected]]:
        """Best-effort verification: the longest verified prefix plus the
        failure (None when the whole chain verifies).

        The restore path uses this to *refuse the corrupted suffix* while
        still replaying everything provably authentic.
        """
        try:
            return self.verify(), None
        except TamperDetected as exc:
            if exc.index is None:
                # Whole-file failure (truncation/anchor): nothing past the
                # snapshot can be trusted record-by-record here, but every
                # record that individually chains from genesis still can.
                prefix = self._prefix_ignoring_anchor()
                return prefix, exc
            prefix = self._prefix_ignoring_anchor(stop_at=exc.index)
            return prefix, exc

    def _prefix_ignoring_anchor(
        self, stop_at: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        prev = GENESIS
        try:
            fh = open(self.path)
        except FileNotFoundError:
            return []
        with fh:
            for index, line in enumerate(fh):
                if stop_at is not None and index >= stop_at:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    rec_prev = bytes.fromhex(record["prev"])
                    rec_tag = bytes.fromhex(record["tag"])
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    break
                if not tags_equal(rec_prev, prev):
                    break
                if not tags_equal(
                    rec_tag, chain_tag(self.key, prev, canonical_body(record))
                ):
                    break
                prev = rec_tag
                records.append(record)
        return records

    def resync(self) -> List[Dict[str, Any]]:
        """Verify the on-disk chain and adopt its tail as the in-memory
        state (post-restart continuation point).  Raises on tamper."""
        records = self.verify()
        self._buffer = []
        self.count = len(records)
        self._tail = (
            bytes.fromhex(records[-1]["tag"]) if records else GENESIS
        )
        if records:
            last = records[-1]
            self._seq_round = last["round"]
            self._seq = last["seq"] + 1
        else:
            self._seq_round = -1
            self._seq = 0
        return records

    def exists(self) -> bool:
        return os.path.exists(self.path)
