"""Per-node durable store: chained log + sealed snapshots + restore.

One :class:`NodeDurableStore` owns a directory ``<root>/node_<id>/``::

    events.log       the HMAC-chained JSONL event log
    events.log.head  the atomically-replaced head anchor {count, tag}
    snapshot.bin     the latest sealed snapshot (temp-and-rename)

The write path is observation-only: the store records what the protocol
decided (evidence admissions, snapshot cuts) and never feeds a decision
back, so transcripts are byte-identical with persistence on or off.

The restore path (:meth:`load`) rebuilds ``snapshot + chained suffix``:
the snapshot blob is seal-verified and unpickled, the log chain is
re-verified from genesis, and every ``persist-evidence`` record past the
snapshot's anchored log position is decoded back into an evidence item
for replay.  Tampering (truncation, record bit-flips, chain splice) is
surfaced as a :class:`~repro.durability.chain.TamperDetected` inside the
result -- the corrupted suffix is *refused* (the on-disk log is rolled
back to the verified prefix, stage53-style safe rollback) and the caller
decides how loudly to react.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.durability.chain import TamperDetected, derive_key
from repro.durability.log import ChainedEventLog, head_path
from repro.durability.snapshot import read_snapshot, write_snapshot
from repro.net.message import decode, encode
from repro.obs.events import (
    EV_PERSIST_EVIDENCE,
    EV_PERSIST_RESTORE,
    EV_PERSIST_SNAPSHOT,
)
from repro.obs.ioutil import atomic_write_text, ensure_parent_dir

LOG_NAME = "events.log"
SNAPSHOT_NAME = "snapshot.bin"


@dataclass
class RestoreResult:
    """What :meth:`NodeDurableStore.load` recovered.

    ``node`` is the unpickled snapshot node (None when no usable snapshot
    exists -- the caller provisions a fresh node and replays everything);
    ``evidence`` holds the decoded items of the verified chained suffix,
    in append order.
    """

    node: Any = None
    snapshot_round: Optional[int] = None
    manifest: Optional[Dict[str, Any]] = None
    evidence: List[Any] = field(default_factory=list)
    suffix_records: int = 0
    verified_records: int = 0
    tampered: bool = False
    tamper_reason: Optional[str] = None
    refused_records: int = 0


class NodeDurableStore:
    """Owns one node's on-disk durable state (see module docstring).

    Picklable by design: the sharded engine moves nodes between processes
    by pickling, and the store rides along (no open file handles are
    held; appends buffer in memory until :meth:`flush`).
    """

    def __init__(
        self,
        root_dir: str,
        node_id: int,
        seed: int = 0,
        snapshot_interval: int = 8,
    ):
        if snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        self.node_id = node_id
        self.snapshot_interval = snapshot_interval
        self.dir = os.path.join(root_dir, f"node_{node_id:04d}")
        self.key = derive_key(seed, node_id)
        self.log = ChainedEventLog(os.path.join(self.dir, LOG_NAME), self.key)
        self.snapshot_path = os.path.join(self.dir, SNAPSHOT_NAME)
        #: log position (record count) covered by the latest snapshot.
        self.snapshot_log_count = 0
        self.timings: Dict[str, float] = {
            "append_s": 0.0,
            "appends": 0,
            "flush_s": 0.0,
            "flushes": 0,
            "snapshot_s": 0.0,
            "snapshots": 0,
            "snapshot_bytes": 0,
            "restore_s": 0.0,
            "restores": 0,
        }
        ensure_parent_dir(os.path.join(self.dir, LOG_NAME))

    # -- write path (called from the node's hooks) ----------------------------

    def record_evidence(self, round_no: int, items: List[Any]) -> None:
        """Chain one ``persist-evidence`` record per newly admitted item.

        The record's ``enc`` field is the item's canonical codec encoding,
        so replay reconstructs the exact object (signatures included).
        """
        t0 = time.perf_counter()
        for item in items:
            self.log.append(
                EV_PERSIST_EVIDENCE,
                self.node_id,
                round_no,
                {"item": type(item).__name__, "enc": encode(item).hex()},
            )
            self.timings["appends"] += 1
        self.timings["append_s"] += time.perf_counter() - t0

    def end_round(self, node: Any, round_no: int) -> None:
        """Round-end hook: flush the log; cut a snapshot on the interval."""
        self.flush()
        if round_no > 0 and round_no % self.snapshot_interval == 0:
            self.snapshot(node, round_no)

    def flush(self) -> None:
        if self.log.pending == 0:
            return
        t0 = time.perf_counter()
        self.log.flush()
        self.timings["flushes"] += 1
        self.timings["flush_s"] += time.perf_counter() - t0

    def snapshot(self, node: Any, round_no: int) -> str:
        """Seal a consistent cut of ``node``'s state; returns the root hash.

        The log is flushed first so the snapshot's anchored log position
        (``log_count``) cleanly splits "reflected in the snapshot" from
        "replay from the chained suffix".
        """
        t0 = time.perf_counter()
        self.flush()
        blob = self._pickle_node(node)
        manifest = self._manifest(node, round_no)
        root = write_snapshot(
            self.snapshot_path, self.key, round_no, manifest, blob
        )
        self.snapshot_log_count = manifest["log_count"]
        self.log.append(
            EV_PERSIST_SNAPSHOT,
            self.node_id,
            round_no,
            {
                "root": root,
                "log_count": manifest["log_count"],
                "snapshot_round": round_no,
            },
        )
        self.flush()
        self.timings["snapshots"] += 1
        self.timings["snapshot_bytes"] += len(blob)
        self.timings["snapshot_s"] += time.perf_counter() - t0
        return root

    @staticmethod
    def _pickle_node(node: Any) -> bytes:
        # Same detach trick as the sharded engine's recall: the network
        # handle (and this store itself) are re-bound after restore.
        network, durable = node.network, node.durable
        node.network = None
        node.durable = None
        try:
            return pickle.dumps(node, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            node.network = network
            node.durable = durable

    def _manifest(self, node: Any, round_no: int) -> Dict[str, Any]:
        """The snapshot's human-auditable inventory: the consistent cut of
        every store the restore path depends on (S14)."""
        fwd = node.forwarding
        scenario = node.current_scenario
        quotas = fwd.quotas
        return {
            "node": self.node_id,
            "round": round_no,
            "log_count": self.log.count,
            "evidence_digest": fwd.evidence.digest().hex(),
            "evidence_items": len(fwd.evidence),
            "heartbeat_records": len(fwd.store),
            "mode_pointer": {
                "failed_nodes": sorted(scenario.nodes),
                "failed_links": [list(link) for link in sorted(scenario.links)],
            },
            "quotas": None
            if quotas is None
            else {
                "suspects": sorted(quotas.suspects),
                "charged": quotas.total_charged,
                "dropped": quotas.total_dropped,
            },
        }

    # -- restore path ----------------------------------------------------------

    def load(self) -> RestoreResult:
        """Rebuild ``snapshot + chained suffix`` (see module docstring)."""
        t0 = time.perf_counter()
        result = RestoreResult()
        log_floor = 0
        blob: Optional[bytes] = None
        if os.path.exists(self.snapshot_path):
            try:
                round_no, manifest, blob = read_snapshot(
                    self.snapshot_path, self.key
                )
                result.snapshot_round = round_no
                result.manifest = manifest
                log_floor = int(manifest.get("log_count", 0))
            except TamperDetected as exc:
                result.tampered = True
                result.tamper_reason = f"snapshot: {exc.reason}"
                blob = None
        records, error = self.log.verified_prefix()
        result.verified_records = len(records)
        if error is not None:
            result.tampered = True
            reason = f"log: {error.reason}"
            result.tamper_reason = (
                reason
                if result.tamper_reason is None
                else f"{result.tamper_reason}; {reason}"
            )
            result.refused_records = self._count_disk_records() - len(records)
            # Refuse the corrupted suffix: roll the on-disk log back to the
            # verified prefix so the continuation chains from known-good
            # state (stage53's safe rollback).
            self._rollback_to(records)
        else:
            self.log.resync()
        if blob is not None and len(records) >= log_floor:
            result.node = pickle.loads(blob)
        elif blob is not None:
            # The verified chain stops *before* the snapshot's anchored
            # position: the snapshot claims history the log cannot prove.
            # Refuse the snapshot too and replay the prefix from scratch.
            result.tampered = True
            reason = "log verified prefix ends before the snapshot anchor"
            result.tamper_reason = (
                reason
                if result.tamper_reason is None
                else f"{result.tamper_reason}; {reason}"
            )
            log_floor = 0
        suffix = records[log_floor:] if result.node is not None else records
        for record in suffix:
            if record["kind"] != EV_PERSIST_EVIDENCE:
                continue
            result.suffix_records += 1
            result.evidence.append(
                decode(bytes.fromhex(record["data"]["enc"]))
            )
        self.timings["restores"] += 1
        self.timings["restore_s"] += time.perf_counter() - t0
        return result

    def restore_exact(self) -> Any:
        """Verify and unpickle the latest snapshot node, nothing else.

        The determinism-property path: ``restore_exact()`` after
        :meth:`snapshot` must yield a node whose transcript continuation
        is byte-identical to the never-snapshotted original.
        """
        round_no, _manifest, blob = read_snapshot(self.snapshot_path, self.key)
        del round_no
        return pickle.loads(blob)

    def record_restore(self, round_no: int, result: RestoreResult) -> None:
        """Chain a ``persist-restore`` marker (the rejoin audit trail)."""
        self.log.append(
            EV_PERSIST_RESTORE,
            self.node_id,
            round_no,
            {
                "snapshot_round": result.snapshot_round,
                "replayed": len(result.evidence),
                "tampered": result.tampered,
                "reason": result.tamper_reason,
            },
        )
        self.flush()

    # -- rollback helpers ------------------------------------------------------

    def _count_disk_records(self) -> int:
        try:
            with open(self.log.path) as fh:
                return sum(1 for line in fh if line.strip())
        except FileNotFoundError:
            return 0

    def _rollback_to(self, records: List[Dict[str, Any]]) -> None:
        lines = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        atomic_write_text(self.log.path, lines)
        tail = records[-1]["tag"] if records else ("00" * 32)
        atomic_write_text(
            head_path(self.log.path),
            json.dumps({"count": len(records), "tag": tail}) + "\n",
        )
        self.log.resync()
