"""Scale-out round-engine benchmark: 200/500/1000-node heartbeat sweeps.

Runs fault-free Erdos-Renyi deployments (the paper's S5.1 simulation
setup) at n = 200/500/1000 for a fixed number of rounds under three
engines in one process:

* **legacy** -- the pre-scale-out serial path: dict/set coverage
  bookkeeping and per-message signature verification
  (``bitset_coverage=False, round_batched_verify=False``);
* **serial** -- the optimized serial path: numpy bitset coverage/heartbeat
  stores and round-batched multisignature verification;
* **sharded** -- the optimized path on the
  :class:`~repro.net.shard.ShardedRoundEngine` with N worker processes.

Every pairing is held byte-identical: the serial and sharded runs of each
sweep must produce the same per-round transcript (per-node evidence
digests + modes) and the same logical crypto counters, and dedicated
small-n identity cells (Erdos-Renyi n=20, the 20-node grid across a crash
fault, and the grid under the chaos smoke impairment preset) re-verify
the pin on every invocation.  ``--smoke`` is the CI-sized variant (n=200
only).  Results go to ``BENCH_scale.json`` with the shared ``env``
provenance block; wall-clock speedups are reported as measured on the
current machine (``env.cpu_count`` says how much parallel hardware the
sharded engine actually had).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import transcript_entry
from repro.chaos.impairments import ChaosRoundNetwork, ImpairmentPlan
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.experiments.common import bench_env
from repro.faults.adversary import CrashBehavior
from repro.net.shard import resolve_workers
from repro.net.topology import erdos_renyi_topology, grid_topology
from repro.sched.workload import WorkloadGenerator

SWEEP_SIZES = (200, 500, 1000)
SMOKE_SIZES = (200,)
DEFAULT_ROUNDS = 10
SMOKE_ROUNDS = 6
DEFAULT_WORKERS = 4


def _sweep_system(
    n: int, seed: int, workers: int, legacy: bool
) -> ReboundSystem:
    topology = erdos_renyi_topology(n, seed=seed)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=0, fconc=0, variant="multi", rsa_bits=256,
        bitset_coverage=not legacy, round_batched_verify=not legacy,
    )
    return ReboundSystem(
        topology, workload, config, seed=seed, scale_workers=workers
    )


def _run(
    system: ReboundSystem, rounds: int, crash_round: Optional[int] = None
) -> Dict[str, Any]:
    """Timed rounds; transcript capture stays outside the clock."""
    transcript: List[Tuple] = []
    run_s = 0.0
    try:
        for r in range(1, rounds + 1):
            if crash_round is not None and r == crash_round:
                system.inject_now(
                    max(system.topology.controllers), CrashBehavior()
                )
            t0 = time.perf_counter()
            system.run_round()
            run_s += time.perf_counter() - t0
            transcript.append(transcript_entry(system))
        counters = system.total_crypto_counters()
    finally:
        system.close()
    return {"run_s": run_s, "transcript": transcript, "counters": counters}


def _sweep(
    n: int, rounds: int, workers: int, seed: int = 0
) -> Dict[str, Any]:
    legacy = _run(_sweep_system(n, seed, 0, legacy=True), rounds)
    serial = _run(_sweep_system(n, seed, 0, legacy=False), rounds)
    sharded = _run(_sweep_system(n, seed, workers, legacy=False), rounds)
    identical = (
        legacy["transcript"] == serial["transcript"] == sharded["transcript"]
        and legacy["counters"] == serial["counters"] == sharded["counters"]
    )
    return {
        "n": n,
        "rounds": rounds,
        "seed": seed,
        "workers": workers,
        "legacy_run_s": legacy["run_s"],
        "serial_run_s": serial["run_s"],
        "sharded_run_s": sharded["run_s"],
        "serial_vs_sharded_speedup": (
            serial["run_s"] / sharded["run_s"]
            if sharded["run_s"] else float("inf")
        ),
        "legacy_vs_serial_speedup": (
            legacy["run_s"] / serial["run_s"]
            if serial["run_s"] else float("inf")
        ),
        "legacy_vs_sharded_speedup": (
            legacy["run_s"] / sharded["run_s"]
            if sharded["run_s"] else float("inf")
        ),
        "transcripts_identical": identical,
    }


# -- small-n identity cells ------------------------------------------------------


def _grid_system(workers: int, network_factory=None) -> ReboundSystem:
    topology = grid_topology(4, 5)
    workload = WorkloadGenerator(seed=0, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(fmax=1, fconc=1, variant="multi", rsa_bits=256)
    return ReboundSystem(
        topology, workload, config, seed=0,
        network_factory=network_factory, scale_workers=workers,
    )


CHAOS_SMOKE_PLAN = ImpairmentPlan(
    seed=3, dup_prob=0.1, reorder_prob=0.3, delay_prob=0.05,
    max_delay_rounds=2,
)


def _identity_cell(name: str, build, rounds: int, workers: int,
                   crash_round: Optional[int] = None) -> Dict[str, Any]:
    serial = _run(build(0), rounds, crash_round=crash_round)
    sharded = _run(build(workers), rounds, crash_round=crash_round)
    return {
        "cell": name,
        "rounds": rounds,
        "workers": workers,
        "transcripts_identical": serial["transcript"] == sharded["transcript"],
        "counters_identical": serial["counters"] == sharded["counters"],
    }


def identity_cells(workers: int, rounds: int = 16) -> List[Dict[str, Any]]:
    """Serial-vs-sharded byte-identity pins at small n."""
    return [
        _identity_cell(
            "er20",
            lambda w: _sweep_system(20, 0, w, legacy=False),
            rounds, workers,
        ),
        _identity_cell(
            "grid20-crash", _grid_system, rounds, workers, crash_round=8
        ),
        _identity_cell(
            "grid20-chaos-smoke",
            lambda w: _grid_system(
                w, network_factory=lambda t: ChaosRoundNetwork(
                    t, CHAOS_SMOKE_PLAN
                ),
            ),
            rounds, workers,
        ),
    ]


# -- driver ----------------------------------------------------------------------


def run_scale_bench(
    sizes: Optional[Tuple[int, ...]] = None,
    rounds: Optional[int] = None,
    workers: Optional[int] = None,
    smoke: bool = False,
    output_path: Optional[str] = "BENCH_scale.json",
) -> Dict[str, Any]:
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else SWEEP_SIZES
    if rounds is None:
        rounds = SMOKE_ROUNDS if smoke else DEFAULT_ROUNDS
    workers = resolve_workers(workers) or DEFAULT_WORKERS
    if workers < 2:
        workers = 2

    cells = identity_cells(workers)
    sweeps = [_sweep(n, rounds, workers) for n in sizes]
    all_identical = all(
        c["transcripts_identical"] and c["counters_identical"] for c in cells
    ) and all(s["transcripts_identical"] for s in sweeps)
    result = {
        "benchmark": "scale",
        "env": bench_env(workers=workers),
        "smoke": smoke,
        "sizes": list(sizes),
        "rounds": rounds,
        "workers": workers,
        "sweeps": sweeps,
        "identity": {"cells": cells, "all_identical": all_identical},
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result


def main(
    output_path: Optional[str] = "BENCH_scale.json",
    workers: Optional[int] = None,
    smoke: bool = False,
    rounds: Optional[int] = None,
) -> Dict[str, Any]:
    result = run_scale_bench(
        rounds=rounds, workers=workers, smoke=smoke, output_path=output_path
    )
    for sweep in result["sweeps"]:
        print("BENCH " + json.dumps(
            {
                k: sweep[k]
                for k in (
                    "n", "rounds", "workers",
                    "legacy_run_s", "serial_run_s", "sharded_run_s",
                    "serial_vs_sharded_speedup", "legacy_vs_serial_speedup",
                    "legacy_vs_sharded_speedup", "transcripts_identical",
                )
            },
            sort_keys=True,
        ))
    print(
        "identity: "
        + ", ".join(
            f"{c['cell']}="
            + ("OK" if c["transcripts_identical"] and c["counters_identical"]
               else "DIFF")
            for c in result["identity"]["cells"]
        )
        + f" -- all_identical={result['identity']['all_identical']}"
    )
    return result


if __name__ == "__main__":
    main()
