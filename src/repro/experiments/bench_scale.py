"""Scale-out round-engine benchmark: 200/500/1000-node heartbeat sweeps.

Runs fault-free Erdos-Renyi deployments (the paper's S5.1 simulation
setup) at n = 200/500/1000 for a fixed number of rounds under three
engines in one process:

* **legacy** -- the pre-scale-out serial path: dict/set coverage
  bookkeeping and per-message signature verification
  (``bitset_coverage=False, round_batched_verify=False``);
* **serial** -- the optimized serial path: numpy bitset coverage/heartbeat
  stores and round-batched multisignature verification;
* **sharded** -- the optimized path on the
  :class:`~repro.net.shard.ShardedRoundEngine` with N worker processes.
  Each sharded sweep runs twice: once on the wire-frame IPC plane
  (``frame_ipc=True``, the default) and once on the pickled-object
  fallback, so the JSON records the frame plane's byte and wall-clock
  gains (``ipc.bytes_reduction``, ``frame_vs_pickle_speedup``) next to a
  per-stage round **profile** (encode/ipc/step/replay/merge seconds from
  :class:`~repro.obs.profiler.RoundProfiler`).

Each sharded sweep also runs once more with a :class:`FlightRecorder`
installed, so ``recorder_overhead_ratio`` reports the honest wall-clock
cost of shipping worker-side trace events home over the frame plane.

Every pairing is held byte-identical: the serial and sharded runs of each
sweep must produce the same per-round transcript (per-node evidence
digests + modes) and the same logical crypto counters, and dedicated
small-n identity cells (Erdos-Renyi n=20, the 20-node grid across a crash
fault, and the grid under the chaos smoke impairment preset) re-verify
the pin on every invocation -- once per IPC mode, so both the frame plane
and the pickle fallback are exercised.  The identity cells run with
recorders installed on both engines and additionally pin the *trace*:
the sharded run's merged worker+parent event stream, canonically sorted
(round, node, seq) and rendered to JSONL, must be byte-equal to the
serial engine's.  ``--smoke`` is the CI-sized
variant (n=200 only); ``--sizes`` / ``--engines`` narrow the sweep grid
and are recorded in the output's ``filters`` block.  Results go to
``BENCH_scale.json`` with the shared ``env`` provenance block;
wall-clock speedups are reported as measured on the current machine
(``env.cpu_count`` says how much parallel hardware the sharded engine
actually had).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import transcript_entry
from repro.chaos.impairments import ChaosRoundNetwork, ImpairmentPlan
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.experiments.common import bench_env
from repro.faults.adversary import CrashBehavior
from repro.net.shard import resolve_workers
from repro.net.topology import erdos_renyi_topology, grid_topology
from repro.obs.collector import canonical_jsonl
from repro.obs.recorder import FlightRecorder
from repro.sched.workload import WorkloadGenerator

SWEEP_SIZES = (200, 500, 1000)
SMOKE_SIZES = (200,)
ENGINES = ("legacy", "serial", "sharded")
DEFAULT_ROUNDS = 10
SMOKE_ROUNDS = 6
DEFAULT_WORKERS = 4


def _sweep_system(
    n: int, seed: int, workers: int, legacy: bool, frame_ipc: bool = True
) -> ReboundSystem:
    topology = erdos_renyi_topology(n, seed=seed)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=0, fconc=0, variant="multi", rsa_bits=256,
        bitset_coverage=not legacy, round_batched_verify=not legacy,
        frame_ipc=frame_ipc,
    )
    return ReboundSystem(
        topology, workload, config, seed=seed, scale_workers=workers
    )


def _run(
    system: ReboundSystem, rounds: int, crash_round: Optional[int] = None
) -> Dict[str, Any]:
    """Timed rounds; transcript capture stays outside the clock."""
    transcript: List[Tuple] = []
    run_s = 0.0
    profile: Optional[Dict[str, Any]] = None
    ipc: Optional[Dict[str, Any]] = None
    try:
        for r in range(1, rounds + 1):
            if crash_round is not None and r == crash_round:
                system.inject_now(
                    max(system.topology.controllers), CrashBehavior()
                )
            t0 = time.perf_counter()
            system.run_round()
            run_s += time.perf_counter() - t0
            transcript.append(transcript_entry(system))
        counters = system.total_crypto_counters()
        engine = system._engine
        if engine is not None:
            profile = engine.profiler.stats()
            ipc = engine._ipc_stats()
    finally:
        system.close()
    return {
        "run_s": run_s, "transcript": transcript, "counters": counters,
        "profile": profile, "ipc": ipc,
    }


def _payload_bytes(ipc: Dict[str, Any]) -> int:
    return int(ipc["delivery_bytes"]) + int(ipc["intent_bytes"])


def _traced_run(
    build_system,
    rounds: int,
    crash_round: Optional[int] = None,
    want_jsonl: bool = False,
) -> Dict[str, Any]:
    """A ``_run`` with a flight recorder installed for its whole lifetime.

    The recorder is installed *before* the system is built so the sharded
    engine's ``start()`` sees it and ships worker-side events home; the
    trace is read back after ``close()`` (the shutdown barrier drains the
    last worker rings).  ``want_jsonl`` additionally captures the
    canonically sorted JSONL rendering -- the byte string the identity
    cells compare across engines.
    """
    recorder = FlightRecorder()
    recorder.install()
    try:
        result = _run(build_system(), rounds, crash_round=crash_round)
        result["trace_events"] = len(recorder)
        result["trace_dropped"] = recorder.dropped
        if want_jsonl:
            result["trace_jsonl"] = canonical_jsonl(recorder.events())
    finally:
        recorder.uninstall()
    return result


def _sweep(
    n: int,
    rounds: int,
    workers: int,
    seed: int = 0,
    engines: Sequence[str] = ENGINES,
) -> Dict[str, Any]:
    runs: Dict[str, Dict[str, Any]] = {}
    if "legacy" in engines:
        runs["legacy"] = _run(_sweep_system(n, seed, 0, legacy=True), rounds)
    if "serial" in engines:
        runs["serial"] = _run(_sweep_system(n, seed, 0, legacy=False), rounds)
    if "sharded" in engines:
        runs["sharded"] = _run(
            _sweep_system(n, seed, workers, legacy=False, frame_ipc=True),
            rounds,
        )
        runs["sharded_pickle"] = _run(
            _sweep_system(n, seed, workers, legacy=False, frame_ipc=False),
            rounds,
        )
        # The same sharded frame-IPC run with the flight recorder shipping
        # worker events home: its run_s / sharded_run_s is the honest cost
        # of always-on tracing across the process boundary.
        runs["sharded_rec"] = _traced_run(
            lambda: _sweep_system(n, seed, workers, legacy=False, frame_ipc=True),
            rounds,
        )
    identical: Optional[bool] = None
    if len(runs) >= 2:
        values = list(runs.values())
        identical = all(
            r["transcript"] == values[0]["transcript"]
            and r["counters"] == values[0]["counters"]
            for r in values[1:]
        )
    out: Dict[str, Any] = {
        "n": n,
        "rounds": rounds,
        "seed": seed,
        "workers": workers,
        "engines": list(engines),
        "transcripts_identical": identical,
    }
    for name, run in runs.items():
        out[f"{name}_run_s"] = run["run_s"]

    def _speedup(num: str, den: str) -> Optional[float]:
        if num not in runs or den not in runs:
            return None
        return (
            runs[num]["run_s"] / runs[den]["run_s"]
            if runs[den]["run_s"] else float("inf")
        )

    out["serial_vs_sharded_speedup"] = _speedup("serial", "sharded")
    out["legacy_vs_serial_speedup"] = _speedup("legacy", "serial")
    out["legacy_vs_sharded_speedup"] = _speedup("legacy", "sharded")
    out["frame_vs_pickle_speedup"] = _speedup("sharded_pickle", "sharded")
    if "sharded_rec" in runs:
        rec_ipc = runs["sharded_rec"]["ipc"] or {}
        out["recorder_overhead_ratio"] = (
            runs["sharded_rec"]["run_s"] / runs["sharded"]["run_s"]
            if runs["sharded"]["run_s"] else None
        )
        out["recorder"] = {
            "events_shipped": rec_ipc.get("events_shipped", 0),
            "event_bytes": rec_ipc.get("event_bytes", 0),
            "event_raw_bytes": rec_ipc.get("event_raw_bytes", 0),
            "events_recorded": runs["sharded_rec"]["trace_events"],
            "events_dropped": runs["sharded_rec"]["trace_dropped"],
        }
    if "sharded" in runs:
        frames_ipc = runs["sharded"]["ipc"]
        pickle_ipc = runs["sharded_pickle"]["ipc"]
        frames_bytes = _payload_bytes(frames_ipc)
        pickle_bytes = _payload_bytes(pickle_ipc)
        out["profile"] = runs["sharded"]["profile"]
        out["ipc"] = {
            "frames": frames_ipc,
            "pickle": pickle_ipc,
            "frames_payload_bytes": frames_bytes,
            "pickle_payload_bytes": pickle_bytes,
            "bytes_reduction": (
                pickle_bytes / frames_bytes if frames_bytes else None
            ),
        }
    return out


# -- small-n identity cells ------------------------------------------------------


def _grid_system(
    workers: int, network_factory=None, frame_ipc: bool = True
) -> ReboundSystem:
    topology = grid_topology(4, 5)
    workload = WorkloadGenerator(seed=0, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=1, fconc=1, variant="multi", rsa_bits=256, frame_ipc=frame_ipc
    )
    return ReboundSystem(
        topology, workload, config, seed=0,
        network_factory=network_factory, scale_workers=workers,
    )


CHAOS_SMOKE_PLAN = ImpairmentPlan(
    seed=3, dup_prob=0.1, reorder_prob=0.3, delay_prob=0.05,
    max_delay_rounds=2,
)


def _identity_cell(name: str, build, rounds: int, workers: int,
                   frame_ipc: bool,
                   crash_round: Optional[int] = None) -> Dict[str, Any]:
    """Serial vs sharded with a flight recorder installed on *both* runs:
    the pin covers the transcripts, the crypto counters, AND the merged
    event stream -- the sharded engine's worker-shipped trace, canonically
    sorted, must render to the same JSONL bytes the serial recorder
    produces (the tentpole guarantee; recorder-off transcript identity is
    pinned separately by tests/test_scale_engine.py)."""
    serial = _traced_run(
        lambda: build(0, frame_ipc), rounds,
        crash_round=crash_round, want_jsonl=True,
    )
    sharded = _traced_run(
        lambda: build(workers, frame_ipc), rounds,
        crash_round=crash_round, want_jsonl=True,
    )
    return {
        "cell": name,
        "rounds": rounds,
        "workers": workers,
        "frame_ipc": frame_ipc,
        "transcripts_identical": serial["transcript"] == sharded["transcript"],
        "counters_identical": serial["counters"] == sharded["counters"],
        "trace_events": sharded["trace_events"],
        "trace_dropped": sharded["trace_dropped"],
        "traces_identical": serial["trace_jsonl"] == sharded["trace_jsonl"],
    }


def identity_cells(workers: int, rounds: int = 16) -> List[Dict[str, Any]]:
    """Serial-vs-sharded byte-identity pins at small n, once per IPC mode
    (wire frames and the pickle fallback both stay pinned)."""
    cells = []
    for frame_ipc in (True, False):
        cells.extend([
            _identity_cell(
                "er20",
                lambda w, f: _sweep_system(20, 0, w, legacy=False, frame_ipc=f),
                rounds, workers, frame_ipc,
            ),
            _identity_cell(
                "grid20-crash",
                lambda w, f: _grid_system(w, frame_ipc=f),
                rounds, workers, frame_ipc, crash_round=8,
            ),
            _identity_cell(
                "grid20-chaos-smoke",
                lambda w, f: _grid_system(
                    w, network_factory=lambda t: ChaosRoundNetwork(
                        t, CHAOS_SMOKE_PLAN
                    ),
                    frame_ipc=f,
                ),
                rounds, workers, frame_ipc,
            ),
        ])
    return cells


# -- driver ----------------------------------------------------------------------


def run_scale_bench(
    sizes: Optional[Sequence[int]] = None,
    rounds: Optional[int] = None,
    workers: Optional[int] = None,
    smoke: bool = False,
    engines: Optional[Sequence[str]] = None,
    output_path: Optional[str] = "BENCH_scale.json",
) -> Dict[str, Any]:
    sizes_filter = list(sizes) if sizes is not None else None
    engines_filter = list(engines) if engines is not None else None
    if engines is not None:
        unknown = sorted(set(engines) - set(ENGINES))
        if unknown:
            raise ValueError(
                f"unknown engines {unknown}; choose from {list(ENGINES)}"
            )
    else:
        engines = ENGINES
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else SWEEP_SIZES
    if rounds is None:
        rounds = SMOKE_ROUNDS if smoke else DEFAULT_ROUNDS
    workers = resolve_workers(workers) or DEFAULT_WORKERS
    if workers < 2:
        workers = 2

    cells = identity_cells(workers)
    sweeps = [_sweep(n, rounds, workers, engines=engines) for n in sizes]
    all_identical = all(
        c["transcripts_identical"]
        and c["counters_identical"]
        and c["traces_identical"]
        for c in cells
    ) and all(s["transcripts_identical"] is not False for s in sweeps)
    result = {
        "benchmark": "scale",
        "env": bench_env(workers=workers),
        "smoke": smoke,
        "sizes": list(sizes),
        "rounds": rounds,
        "workers": workers,
        "engines": list(engines),
        "filters": {"sizes": sizes_filter, "engines": engines_filter},
        "sweeps": sweeps,
        "identity": {"cells": cells, "all_identical": all_identical},
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result


def main(
    output_path: Optional[str] = "BENCH_scale.json",
    workers: Optional[int] = None,
    smoke: bool = False,
    rounds: Optional[int] = None,
    sizes: Optional[Sequence[int]] = None,
    engines: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    result = run_scale_bench(
        rounds=rounds, workers=workers, smoke=smoke,
        sizes=sizes, engines=engines, output_path=output_path,
    )
    for sweep in result["sweeps"]:
        print("BENCH " + json.dumps(
            {
                k: sweep[k]
                for k in (
                    "n", "rounds", "workers",
                    "legacy_run_s", "serial_run_s", "sharded_run_s",
                    "sharded_pickle_run_s", "sharded_rec_run_s",
                    "serial_vs_sharded_speedup", "legacy_vs_serial_speedup",
                    "legacy_vs_sharded_speedup", "frame_vs_pickle_speedup",
                    "recorder_overhead_ratio",
                    "transcripts_identical",
                )
                if k in sweep
            },
            sort_keys=True,
        ))
        if "ipc" in sweep:
            ipc = sweep["ipc"]
            print(
                f"  ipc n={sweep['n']}: "
                f"frames={ipc['frames_payload_bytes']}B "
                f"pickle={ipc['pickle_payload_bytes']}B "
                f"reduction={ipc['bytes_reduction']:.2f}x "
                f"interned={ipc['frames']['interned_hits']}"
            )
        if "profile" in sweep:
            prof = sweep["profile"]
            shares = " ".join(
                f"{stage}={prof[f'{stage}_s']:.3f}s"
                for stage in ("encode", "ipc", "step", "replay", "merge")
            )
            print(f"  profile n={sweep['n']}: {shares}")
        if "recorder" in sweep:
            rec = sweep["recorder"]
            ratio = sweep.get("recorder_overhead_ratio")
            overhead = f"{ratio:.3f}x" if ratio is not None else "n/a"
            print(
                f"  recorder n={sweep['n']}: overhead={overhead} "
                f"events={rec['events_recorded']} "
                f"dropped={rec['events_dropped']} "
                f"shipped_bytes={rec['event_bytes']} "
                f"(raw {rec['event_raw_bytes']})"
            )
    print(
        "identity: "
        + ", ".join(
            f"{c['cell']}[{'frames' if c['frame_ipc'] else 'pickle'}]="
            + ("OK" if c["transcripts_identical"] and c["counters_identical"]
               and c["traces_identical"]
               else "DIFF")
            for c in result["identity"]["cells"]
        )
        + f" -- all_identical={result['identity']['all_identical']}"
    )
    return result


if __name__ == "__main__":
    main()
