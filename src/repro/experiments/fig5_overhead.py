"""Figure 5: steady-state overhead of the bare protocol vs system size.

The paper runs REBOUND-BASIC and REBOUND-MULTI *without a higher-level
protocol* for 50 rounds on Erdos-Renyi topologies (p = 3 ln n / n,
n = 4..100, 10 topologies per size) and measures, in the final round:

* (a) bandwidth per link per round,
* (b) storage per node,
* (c) cryptographic operations per node per round.

Expected shape: BASIC grows linearly with n on all three axes (every node
forwards and verifies a heartbeat from every other node); MULTI levels off
(bandwidth tracks the max-fail distance ~ O(log n); one aggregate
verification per neighbor per in-flight round).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import MetricsCollector
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.net.topology import erdos_renyi_topology
from repro.sched.task import Workload

DEFAULT_SIZES = (4, 10, 20, 35, 50)
DEFAULT_ROUNDS = 30


def run_one(
    n: int,
    variant: str,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    rsa_bits: int = 512,
) -> Dict:
    """One (size, variant) cell of Fig. 5; returns a row dict."""
    topology = erdos_renyi_topology(n, seed=seed)
    config = ReboundConfig(
        fmax=1, fconc=1, variant=variant, rsa_bits=rsa_bits
    )
    system = ReboundSystem(topology, Workload([]), config, seed=seed)
    collector = MetricsCollector(system)
    collector.run_and_sample(rounds)
    steady = collector.steady_state(tail=3)
    ops = steady.forwarding_ops
    return {
        "n": n,
        "variant": variant,
        "bandwidth_kb_per_link_round": steady.bytes_per_link / 1024.0,
        "storage_kb_per_node": steady.storage_per_node / 1024.0,
        "sign_ops_per_node_round": ops.rsa_sign + ops.ms_sign,
        "verify_ops_per_node_round": ops.rsa_verify + ops.ms_verify,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    rounds: int = DEFAULT_ROUNDS,
    seeds: Sequence[int] = (0,),
    rsa_bits: int = 512,
) -> List[Dict]:
    """The full Fig. 5 sweep: every size x variant, averaged over seeds."""
    rows: List[Dict] = []
    for n in sizes:
        for variant in ("basic", "multi"):
            cells = [
                run_one(n, variant, rounds=rounds, seed=seed, rsa_bits=rsa_bits)
                for seed in seeds
            ]
            k = len(cells)
            rows.append(
                {
                    "n": n,
                    "variant": variant,
                    "bandwidth_kb_per_link_round": sum(
                        c["bandwidth_kb_per_link_round"] for c in cells
                    )
                    / k,
                    "storage_kb_per_node": sum(
                        c["storage_kb_per_node"] for c in cells
                    )
                    / k,
                    "sign_ops_per_node_round": sum(
                        c["sign_ops_per_node_round"] for c in cells
                    )
                    / k,
                    "verify_ops_per_node_round": sum(
                        c["verify_ops_per_node_round"] for c in cells
                    )
                    / k,
                }
            )
    return rows


def check_shape(rows: Sequence[Dict]) -> Dict[str, bool]:
    """The paper's qualitative claims, as checkable booleans."""
    basic = sorted(
        (r for r in rows if r["variant"] == "basic"), key=lambda r: r["n"]
    )
    multi = sorted(
        (r for r in rows if r["variant"] == "multi"), key=lambda r: r["n"]
    )
    biggest = basic[-1]["n"]
    basic_big = basic[-1]
    multi_big = next(r for r in multi if r["n"] == biggest)
    return {
        # (a) BASIC bandwidth grows ~linearly; MULTI stays far below.
        "basic_bandwidth_grows": basic[-1]["bandwidth_kb_per_link_round"]
        > 2 * basic[0]["bandwidth_kb_per_link_round"],
        "multi_bandwidth_much_lower": multi_big["bandwidth_kb_per_link_round"]
        < basic_big["bandwidth_kb_per_link_round"] / 3,
        # (b) MULTI storage far below BASIC at scale.
        "multi_storage_much_lower": multi_big["storage_kb_per_node"]
        < basic_big["storage_kb_per_node"] / 3,
        # (c) BASIC verifications grow linearly with n; MULTI's grow much
        # more slowly (O(degree x in-flight rounds) ~ O(log^2 n)).  The
        # paper notes BASIC can even be cheaper on small topologies.
        "basic_verifies_grow": basic[-1]["verify_ops_per_node_round"]
        > 2 * basic[0]["verify_ops_per_node_round"],
        "multi_verifies_sublinear": (
            multi[-1]["verify_ops_per_node_round"]
            / max(1e-9, multi[0]["verify_ops_per_node_round"])
        )
        < (
            basic[-1]["verify_ops_per_node_round"]
            / max(1e-9, basic[0]["verify_ops_per_node_round"])
        ),
        # Both variants sign once per round.
        "one_signature_per_round": abs(basic_big["sign_ops_per_node_round"] - 1)
        < 0.5
        and abs(multi_big["sign_ops_per_node_round"] - 1) < 0.5,
    }
