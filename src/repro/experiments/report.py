"""One-shot reproduction report: run every experiment, write markdown.

``python -m repro report [--out results.md] [--scale small|full]`` runs all
seven figure drivers with the chosen scale and writes a self-contained
markdown report with every regenerated table and the pass/fail status of
each of the paper's qualitative claims -- the artifact a reviewer would
attach to a reproduction study.
"""

from __future__ import annotations

import datetime
import io
import platform
import time
from typing import Dict, Sequence

from repro.experiments import (
    fig5_overhead,
    fig6_modechange,
    fig7_scheduling,
    fig8_casestudy,
    fig9_pbft,
    fig10_xc90,
    fig11_testbed,
    timescales,
)

SMALL = {
    "fig5": {"sizes": (4, 10, 20, 35), "rounds": 20},
    "fig6": {"n": 30, "fault_round": 35, "total_rounds": 60},
    "fig7": {"sizes": (15, 30), "fmax_values": (1, 2)},
    "fig8": {"fconc_values": (None, 1, 2, 3), "n": 18, "rounds": 40},
    "fig9": {"f_values": (1, 2, 3), "node_counts": (25,), "workloads_per_cell": 8},
    "fig10": {"duration_s": 1.5},
    "fig11": {"post_rounds": 25},
}
FULL = {
    "fig5": {"sizes": (4, 10, 20, 35, 50, 75, 100), "rounds": 50},
    "fig6": {"n": 45, "fault_round": 50, "total_rounds": 100},
    "fig7": {"sizes": (20, 50, 100, 200), "fmax_values": (1, 2, 3)},
    "fig8": {"fconc_values": (None, 1, 2, 3), "n": 26, "rounds": 100},
    "fig9": {"f_values": (1, 2, 3), "node_counts": (25, 50, 75),
             "workloads_per_cell": 25},
    "fig10": {"duration_s": 3.0},
    "fig11": {"post_rounds": 40},
}


def _md_table(rows: Sequence[Dict]) -> str:
    if not rows:
        return "(no rows)\n"
    columns = list(rows[0].keys())
    out = ["| " + " | ".join(str(c) for c in columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c)
            cells.append(f"{value:.3f}" if isinstance(value, float) else str(value))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"


def _md_checks(checks: Dict[str, bool]) -> str:
    lines = [
        f"- {'✔' if ok else '✘ FAILED'} `{name}`" for name, ok in checks.items()
    ]
    return "\n".join(lines) + "\n"


def generate_report(scale: str = "small") -> str:
    """Run everything and return the markdown report text."""
    params = FULL if scale == "full" else SMALL
    out = io.StringIO()
    started = time.time()
    out.write("# REBOUND reproduction report\n\n")
    out.write(
        f"Generated {datetime.datetime.now().isoformat(timespec='seconds')} "
        f"on Python {platform.python_version()} ({platform.machine()}), "
        f"scale = {scale}.\n\n"
    )

    out.write("## Table 1 — recovery timescales (reference data)\n\n")
    out.write(_md_table(timescales.TABLE_1))

    out.write("\n## Figure 5 — protocol overhead vs system size\n\n")
    rows5 = fig5_overhead.run(**params["fig5"])
    out.write(_md_table(rows5))
    out.write("\n" + _md_checks(fig5_overhead.check_shape(rows5)))

    out.write("\n## Figure 6 — mode-change dynamics\n\n")
    rows6 = fig6_modechange.run(**params["fig6"])
    fault_round = params["fig6"]["fault_round"]
    window = [
        r for r in rows6 if fault_round - 3 <= r["round"] <= fault_round + 10
    ]
    out.write(_md_table(window))
    summary = fig6_modechange.summarize(rows6, fault_round=fault_round)
    out.write(f"\nSummary: {summary}\n")

    out.write("\n## Figure 7 — scheduling trees\n\n")
    rows7 = fig7_scheduling.run(**params["fig7"])
    out.write(_md_table(rows7))
    out.write("\n" + _md_checks(fig7_scheduling.check_shape(rows7)))

    out.write("\n## Figure 8 — case-study runtime costs\n\n")
    rows8 = fig8_casestudy.run(**params["fig8"])
    out.write(_md_table(rows8))
    out.write("\n" + _md_checks(fig8_casestudy.check_shape(rows8)))

    out.write("\n## Figure 9 — comparison to PBFT\n\n")
    rows9 = fig9_pbft.run(**params["fig9"])
    out.write(_md_table(rows9))
    out.write("\n" + _md_checks(fig9_pbft.check_shape(rows9)))

    out.write("\n## Figure 10 — XC90 cruise-control attack\n\n")
    results10 = fig10_xc90.run_all(**params["fig10"])
    out.write(_md_table([
        {
            "scenario": name,
            "peak_mph": r["peak_mph"],
            "final_mph": r["final_mph"],
            "excursion_mph": r["excursion_mph"],
            "recovery_ms": r["recovery_ms"],
        }
        for name, r in results10.items()
    ]))
    out.write("\n" + _md_checks(fig10_xc90.check_shape(results10)))

    out.write("\n## Figure 11 — testbed attack scenarios\n\n")
    results11 = fig11_testbed.run_all(**params["fig11"])
    out.write(_md_table([
        {
            "scenario": name,
            "active": ", ".join(r["active_flows"]),
            "dropped": ", ".join(r["dropped_flows"]) or "-",
        }
        for name, r in results11.items()
    ]))
    out.write("\n" + _md_checks(fig11_testbed.check_shape(results11)))

    out.write(f"\n---\nTotal generation time: {time.time() - started:.1f} s\n")
    return out.getvalue()
