"""Benchmark regression diff: a current ``BENCH_*.json`` vs a baseline.

The repo commits its benchmark files, which makes every PR a natural
before/after pair -- ``git show HEAD:BENCH_scale.json`` is the baseline,
the working tree is the candidate.  This module walks both documents in
parallel and compares every wall-clock key (``*_run_s``, ``*elapsed_s``)
at the same path, flagging ratios beyond a threshold in either direction
(a big "improvement" is usually a broken measurement, so it is surfaced
too, just labelled differently).

Benchmarks from different machines are not comparable, so the diff
*skips itself* when the two ``env`` blocks disagree on ``cpu_count``,
platform, or interpreter implementation -- exactly the situation in CI
where the baseline was committed from a different runner class.  The CI
step runs warn-only (``continue-on-error``); ``--strict`` turns
regressions into a non-zero exit for local use.

Lists of sweep dicts are matched by their ``n`` key when present (so
adding a sweep size does not misalign every later entry), by index
otherwise; keys present on only one side are reported as added/removed,
never as regressions.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

#: a numeric leaf is timing iff its key ends with one of these.
#: ``time_to_new_tree_s`` is the online mode-tree refresh headline
#: (BENCH_modegen's refresh sweep and the chaos churn preset's drift
#: cells).
_TIMING_SUFFIXES = ("_run_s", "elapsed_s", "time_to_new_tree_s")

#: env keys that must match for wall-clock numbers to be comparable.
_ENV_COMPARABLE_KEYS = ("cpu_count", "platform", "implementation")


def _is_timing_key(key: str) -> bool:
    return any(key.endswith(suffix) for suffix in _TIMING_SUFFIXES)


def _match_lists(
    current: List[Any], baseline: List[Any]
) -> List[Tuple[str, Any, Any]]:
    """Pair list entries: by ``n`` when both sides are dicts carrying one
    (sweep lists), positionally otherwise."""
    if (
        all(isinstance(x, dict) and "n" in x for x in current)
        and all(isinstance(x, dict) and "n" in x for x in baseline)
    ):
        base_by_n = {x["n"]: x for x in baseline}
        return [
            (f"[n={x['n']}]", x, base_by_n.get(x["n"]))
            for x in current
        ]
    pairs: List[Tuple[str, Any, Any]] = []
    for i in range(max(len(current), len(baseline))):
        pairs.append(
            (
                f"[{i}]",
                current[i] if i < len(current) else None,
                baseline[i] if i < len(baseline) else None,
            )
        )
    return pairs


def _walk(
    current: Any, baseline: Any, path: str, rows: List[Dict[str, Any]]
) -> None:
    if isinstance(current, dict) and isinstance(baseline, dict):
        for key in sorted(set(current) | set(baseline)):
            sub = f"{path}.{key}" if path else key
            if key not in baseline:
                if _is_timing_key(key):
                    rows.append({"path": sub, "status": "added"})
                continue
            if key not in current:
                if _is_timing_key(key):
                    rows.append({"path": sub, "status": "removed"})
                continue
            _walk(current[key], baseline[key], sub, rows)
    elif isinstance(current, list) and isinstance(baseline, list):
        for suffix, cur, base in _match_lists(current, baseline):
            if cur is None or base is None:
                continue
            _walk(cur, base, path + suffix, rows)
    else:
        key = path.rsplit(".", 1)[-1]
        if not _is_timing_key(key):
            return
        if not isinstance(current, (int, float)) or not isinstance(
            baseline, (int, float)
        ):
            return
        if baseline <= 0 or math.isnan(float(baseline)):
            return
        rows.append(
            {
                "path": path,
                "status": "compared",
                "baseline_s": float(baseline),
                "current_s": float(current),
                "ratio": float(current) / float(baseline),
            }
        )


def env_mismatch(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Optional[str]:
    """A human-readable reason the two documents are not comparable, or
    None when they are.  Missing env blocks compare as comparable (older
    BENCH files predate the provenance block)."""
    cur_env = current.get("env") or {}
    base_env = baseline.get("env") or {}
    if not cur_env or not base_env:
        return None
    for key in _ENV_COMPARABLE_KEYS:
        if cur_env.get(key) != base_env.get(key):
            return (
                f"env.{key} differs: baseline={base_env.get(key)!r} "
                f"current={cur_env.get(key)!r}"
            )
    return None


def diff_docs(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 1.5,
) -> Dict[str, Any]:
    """Compare two loaded BENCH documents; see the module docstring."""
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")
    skip_reason = env_mismatch(current, baseline)
    rows: List[Dict[str, Any]] = []
    if skip_reason is None:
        _walk(current, baseline, "", rows)
    regressions = []
    improvements = []
    for row in rows:
        if row["status"] != "compared":
            continue
        if row["ratio"] > threshold:
            row["flag"] = "slower"
            regressions.append(row)
        elif row["ratio"] < 1.0 / threshold:
            row["flag"] = "faster"
            improvements.append(row)
    return {
        "skipped": skip_reason is not None,
        "skip_reason": skip_reason,
        "threshold": threshold,
        "compared": [r for r in rows if r["status"] == "compared"],
        "added": [r["path"] for r in rows if r["status"] == "added"],
        "removed": [r["path"] for r in rows if r["status"] == "removed"],
        "regressions": regressions,
        "improvements": improvements,
    }


def main(
    current_path: str,
    baseline_path: str,
    threshold: float = 1.5,
    strict: bool = False,
) -> int:
    """CLI driver: load, diff, print, and gate (``strict`` only)."""
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    report = diff_docs(current, baseline, threshold=threshold)
    name = current.get("benchmark", current_path)
    if report["skipped"]:
        print(f"bench-diff[{name}]: SKIPPED -- {report['skip_reason']}")
        return 0
    for row in report["compared"]:
        flag = row.get("flag", "")
        marker = {"slower": " <-- SLOWER", "faster": " (faster)"}.get(flag, "")
        print(
            f"  {row['path']}: {row['baseline_s']:.3f}s -> "
            f"{row['current_s']:.3f}s  x{row['ratio']:.2f}{marker}"
        )
    for path in report["added"]:
        print(f"  {path}: added (no baseline)")
    for path in report["removed"]:
        print(f"  {path}: removed (baseline only)")
    n_reg = len(report["regressions"])
    print(
        f"bench-diff[{name}]: {len(report['compared'])} timings compared, "
        f"{n_reg} regression(s) beyond x{threshold:.2f}, "
        f"{len(report['improvements'])} large improvement(s)"
    )
    if n_reg and not strict:
        print("(warn-only; pass --strict to fail on regressions)")
    return 1 if strict and n_reg else 0
