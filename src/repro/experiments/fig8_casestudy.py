"""Figure 8: per-node runtime costs of a full BTR deployment vs fconc.

The paper's case study: 26 nodes, 4 application flows, 100 rounds, EDF,
comparing an unprotected system against REBOUND-MULTI + auditing with
fconc = 1..3.  Three per-node metrics, each decomposed by layer:

* (a) average bandwidth: payload vs REBOUND (heartbeats/evidence) vs
  auditing (input bundles, authenticators, replica exchange);
* (b) average computation: auditing RSA sign/verify vs REBOUND
  multisignature sign/verify;
* (c) average storage: payload/protocol state vs auditing state.

Expected shape: REBOUND adds a fixed overhead independent of fconc;
auditing costs grow with fconc (each task effectively executes fconc+1
times, and replicas store the primary's streamed state), with a small
O(fconc^2) term from authenticator relaying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import ReboundConfig
from repro.core.identity import DOMAIN_AUDITING, DOMAIN_FORWARDING
from repro.core.runtime import ReboundSystem
from repro.net.topology import erdos_renyi_topology
from repro.sched.workload import WorkloadGenerator

DEFAULT_N = 26
DEFAULT_FLOWS = 4
DEFAULT_ROUNDS = 60


def _build_workload(seed: int, flows: int):
    generator = WorkloadGenerator(seed=seed, chain_length_range=(2, 3))
    built = []
    next_task = 1
    for flow_id in range(flows):
        flow = generator.flow(flow_id, next_task)
        built.append(flow)
        next_task += len(flow.tasks)
    from repro.sched.task import Workload

    return Workload(built)


def run_one(
    fconc: Optional[int],
    n: int = DEFAULT_N,
    flows: int = DEFAULT_FLOWS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    rsa_bits: int = 512,
) -> Dict:
    """One bar group of Fig. 8.  ``fconc=None`` is the unprotected system."""
    topology = erdos_renyi_topology(n, seed=seed)
    workload = _build_workload(seed, flows)
    protected = fconc is not None
    config = ReboundConfig(
        fmax=max(1, fconc or 0),
        fconc=fconc or 0,
        variant="multi",
        rsa_bits=rsa_bits,
        protocol_enabled=protected,
    )
    system = ReboundSystem(topology, workload, config, seed=seed)
    for node in system.nodes.values():
        node.traffic_accounting = True
    system.run(rounds)

    num_nodes = len(system.nodes)
    per_node_rounds = num_nodes * rounds
    traffic = {"payload": 0, "rebound": 0, "auditing": 0}
    for node in system.nodes.values():
        for key in traffic:
            traffic[key] += node.traffic_bytes[key]

    fwd_ops = {"sign": 0.0, "verify": 0.0}
    aud_ops = {"sign": 0.0, "verify": 0.0}
    rebound_storage = 0
    auditing_storage = 0
    for node in system.nodes.values():
        fwd = node.crypto.counters[DOMAIN_FORWARDING]
        aud = node.crypto.counters[DOMAIN_AUDITING]
        fwd_ops["sign"] += fwd.total_signatures()
        fwd_ops["verify"] += fwd.total_verifications()
        aud_ops["sign"] += aud.total_signatures()
        aud_ops["verify"] += aud.total_verifications()
        rebound_storage += node.forwarding.storage_bytes() if protected else 0
        auditing_storage += node.auditing.storage_bytes()

    return {
        "config": "unprot" if fconc is None else f"fconc={fconc}",
        "payload_kb_per_node_round": traffic["payload"] / per_node_rounds / 1024.0,
        "rebound_kb_per_node_round": traffic["rebound"] / per_node_rounds / 1024.0,
        "auditing_kb_per_node_round": traffic["auditing"] / per_node_rounds / 1024.0,
        "rebound_ms_ops_per_node_round": (fwd_ops["sign"] + fwd_ops["verify"])
        / per_node_rounds,
        "auditing_rsa_ops_per_node_round": (aud_ops["sign"] + aud_ops["verify"])
        / per_node_rounds,
        "rebound_storage_kb_per_node": rebound_storage / num_nodes / 1024.0,
        "auditing_storage_kb_per_node": auditing_storage / num_nodes / 1024.0,
    }


def run(
    fconc_values: Sequence[Optional[int]] = (None, 1, 2, 3),
    n: int = DEFAULT_N,
    flows: int = DEFAULT_FLOWS,
    rounds: int = DEFAULT_ROUNDS,
    seed: int = 0,
    rsa_bits: int = 512,
) -> List[Dict]:
    return [
        run_one(fconc, n=n, flows=flows, rounds=rounds, seed=seed, rsa_bits=rsa_bits)
        for fconc in fconc_values
    ]


def check_shape(rows: Sequence[Dict]) -> Dict[str, bool]:
    by_config = {r["config"]: r for r in rows}
    unprot = by_config.get("unprot")
    f1 = by_config.get("fconc=1")
    f3 = by_config.get("fconc=3")
    checks: Dict[str, bool] = {}
    if unprot and f1:
        checks["unprotected_has_no_protocol_traffic"] = (
            unprot["rebound_kb_per_node_round"] == 0.0
            and unprot["rebound_ms_ops_per_node_round"] == 0.0
        )
        checks["rebound_adds_overhead"] = (
            f1["rebound_kb_per_node_round"] > 0
            and f1["rebound_ms_ops_per_node_round"] > 0
        )
    if f1 and f3:
        checks["auditing_grows_with_fconc"] = (
            f3["auditing_kb_per_node_round"] > f1["auditing_kb_per_node_round"]
            and f3["auditing_storage_kb_per_node"]
            >= f1["auditing_storage_kb_per_node"]
        )
        # The REBOUND (forwarding) overhead is roughly fconc-independent.
        checks["rebound_overhead_fixed"] = (
            abs(
                f3["rebound_ms_ops_per_node_round"]
                - f1["rebound_ms_ops_per_node_round"]
            )
            < 0.5 * max(1e-9, f1["rebound_ms_ops_per_node_round"])
        )
    return checks
