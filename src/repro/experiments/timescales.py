"""Table 1: timescales for recovery (paper S2.2, from Morari's survey).

This is background data the paper reproduces from the cited works, not a
measured experiment; we carry it so the documentation and examples can
relate simulated recovery times to the application classes that could
tolerate them.
"""

from __future__ import annotations

from typing import Dict, List

# (system, recovery window in microseconds, citation in the paper)
TABLE_1: List[Dict] = [
    {"system": "DC/DC converters (STM)", "window_us": 20, "source": "[52]"},
    {"system": "Direct torque control (ABB)", "window_us": 25, "source": "[53, 95]"},
    {"system": "AC/DC converters", "window_us": 50, "source": "[100]"},
    {"system": "Electronic throttle control (Ford)", "window_us": 5_000, "source": "[115]"},
    {"system": "Traction control (Ford)", "window_us": 20_000, "source": "[18]"},
    {"system": "Micro-scale race cars", "window_us": 40_000, "source": "[24]"},
    {"system": "Autonomous vehicle steering", "window_us": 50_000, "source": "[15]"},
    {"system": "Energy-efficient building control", "window_us": 500_000, "source": "[93]"},
]


def feasible_applications(recovery_us: int) -> List[str]:
    """Which Table 1 application classes tolerate a given recovery time."""
    return [row["system"] for row in TABLE_1 if row["window_us"] >= recovery_us]
