"""Fast-path benchmark: cache-enabled vs cache-disabled wall-clock.

Runs the same 20-node grid REBOUND deployment twice in one process -- once
with every fast path disabled (plain-exponentiation signing, no
verification cache, no codec memo: the pre-fast-path code path) and once
with them all enabled -- and records both wall-clock times, the speedup,
and full transcripts proving the runs are *byte-identical*: same per-node
evidence sets and same mode switches every round.  (CRT signing produces
bit-identical signatures, so toggling it cannot change a transcript; it is
additionally reported as a standalone microbenchmark.)

The result is written to ``BENCH_fastpath.json`` so regressions are
diffable across commits; ``python -m repro bench-fastpath`` prints the
JSON line.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import (
    fastpath_stats,
    reset_fastpath_stats,
    transcript_entry as _transcript_entry,
)
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.crypto import rsa, verify_cache
from repro.crypto.rsa import RSAKeyPair
from repro.faults.adversary import CrashBehavior
from repro.net import message
from repro.net.topology import grid_topology
from repro.sched.workload import WorkloadGenerator

DEFAULT_ROWS = 4
DEFAULT_COLS = 5
DEFAULT_ROUNDS = 30
DEFAULT_CRASH_ROUND = 10


def _run_once(
    rows: int,
    cols: int,
    rounds: int,
    crash_round: Optional[int],
    seed: int,
    variant: str,
    fast: bool,
) -> Dict[str, Any]:
    """Build and run one deployment; returns time, transcript, stats."""
    verify_cache.GLOBAL.clear()
    verify_cache.GLOBAL.reset_stats()
    verify_cache.configure(enabled=True)  # per-run opt-out goes via config
    message.configure_codec_memo(enabled=fast)
    rsa.configure_crt(enabled=fast)
    reset_fastpath_stats()

    topology = grid_topology(rows, cols)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=1, fconc=1, variant=variant, rsa_bits=512, verify_cache=fast
    )
    t0 = time.perf_counter()
    system = ReboundSystem(topology, workload, config, seed=seed)
    build_s = time.perf_counter() - t0

    # Only the protocol rounds are timed; transcript capture (evidence
    # digests for the byte-identity check) is measurement overhead shared
    # by both runs and stays outside the clock.
    transcript: List[Tuple] = []
    run_s = 0.0
    for r in range(1, rounds + 1):
        if crash_round is not None and r == crash_round:
            victim = max(system.topology.controllers)
            system.inject_now(victim, CrashBehavior())
        t0 = time.perf_counter()
        system.run_round()
        run_s += time.perf_counter() - t0
        transcript.append(_transcript_entry(system))

    stats = fastpath_stats()
    message.configure_codec_memo(enabled=True)
    rsa.configure_crt(enabled=True)
    return {
        "fast": fast,
        "build_s": build_s,
        "run_s": run_s,
        "transcript": transcript,
        "stats": stats,
    }


def _crt_microbench(bits: int = 512, iterations: int = 50) -> Dict[str, float]:
    """CRT vs plain signing on one key (bit-identical outputs)."""
    pair = RSAKeyPair(bits=bits, seed=12345)
    messages = [i.to_bytes(4, "big") * 8 for i in range(iterations)]
    t0 = time.perf_counter()
    crt = [pair.sign(m).value for m in messages]
    crt_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plain = [pair.sign_plain(m).value for m in messages]
    plain_s = time.perf_counter() - t0
    return {
        "bits": bits,
        "iterations": iterations,
        "crt_s": crt_s,
        "plain_s": plain_s,
        "speedup": (plain_s / crt_s) if crt_s else float("inf"),
        "identical": crt == plain,
    }


def run_fastpath_bench(
    rows: int = DEFAULT_ROWS,
    cols: int = DEFAULT_COLS,
    rounds: int = DEFAULT_ROUNDS,
    crash_round: Optional[int] = DEFAULT_CRASH_ROUND,
    seed: int = 0,
    variant: str = "basic",
    output_path: Optional[str] = "BENCH_fastpath.json",
) -> Dict[str, Any]:
    """The headline before/after measurement (see module docstring).

    Returns the result dict; also writes it to ``output_path`` (JSON)
    unless that is None.  Transcripts are compared in full but only their
    digest is persisted.
    """
    baseline = _run_once(rows, cols, rounds, crash_round, seed, variant, fast=False)
    fast = _run_once(rows, cols, rounds, crash_round, seed, variant, fast=True)
    transcripts_identical = baseline["transcript"] == fast["transcript"]
    from repro.experiments.common import bench_env

    result = {
        "benchmark": "fastpath",
        "env": bench_env(),
        "topology": f"grid_{rows}x{cols}",
        "nodes": rows * cols,
        "rounds": rounds,
        "variant": variant,
        "crash_round": crash_round,
        "seed": seed,
        "baseline_run_s": baseline["run_s"],
        "fast_run_s": fast["run_s"],
        "speedup": (
            baseline["run_s"] / fast["run_s"] if fast["run_s"] else float("inf")
        ),
        "transcripts_identical": transcripts_identical,
        "crt_microbench": _crt_microbench(),
        "fast_stats": fast["stats"],
        "baseline_stats": baseline["stats"],
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result


def main(
    output_path: Optional[str] = "BENCH_fastpath.json",
    rounds: int = DEFAULT_ROUNDS,
) -> Dict[str, Any]:
    result = run_fastpath_bench(rounds=rounds, output_path=output_path)
    print("BENCH " + json.dumps(
        {
            k: result[k]
            for k in (
                "benchmark", "topology", "rounds", "variant",
                "baseline_run_s", "fast_run_s", "speedup",
                "transcripts_identical",
            )
        },
        sort_keys=True,
    ))
    return result


if __name__ == "__main__":
    main()
