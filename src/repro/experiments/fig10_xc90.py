"""Figure 10: the XC90 cruise-control attack case study (paper S5.7).

The adversary compromises the ECM (which runs cruise control, set to
65 mph) and commands full throttle -- the "sudden unintended acceleration"
scenario.  Four panels:

* (a) normal operation: speed holds ~65 mph;
* (b) no defense: the attack succeeds, speed reaches ~100 mph within ~3 s;
* (c) REBOUND enabled: the fault is detected by deterministic replay and
  cruise control is reassigned to another ECU within ~50 ms;
* (d) detail of (c): the excursion is a fraction of a mph -- bounded by the
  XC90's 4.96 m/s^2 acceleration cap times the recovery window.

We run the closed loop on the (device-augmented) XC90 network at 10 ms
rounds; the plant and the distributed system advance in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.auditing import TaskRegistry
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.faults.adversary import RandomOutputBehavior
from repro.net.topology import volvo_xc90_topology
from repro.plant.cruise import CruiseControlTask
from repro.plant.fixedpoint import MICRO, decode_micro, encode_micro, to_micro
from repro.plant.vehicle import MPH_PER_MS, VehicleModel
from repro.sched.task import (
    CRITICALITY_HIGH,
    CRITICALITY_VERY_HIGH,
    MS,
    Flow,
    Task,
    Workload,
)

TARGET_MPH = 65.0
ROUND_US = 10_000  # 10 ms control period
CRUISE_TASK_ID = 1


def _cruise_workload(sensor: int, actuator: int) -> Workload:
    """The cruise-control flow plus a background high-criticality flow."""
    cruise = Flow(
        flow_id=0,
        name="cruise-control",
        criticality=CRITICALITY_VERY_HIGH,
        tasks=(
            Task(
                task_id=CRUISE_TASK_ID,
                flow_id=0,
                name="cruise",
                period_us=ROUND_US,
                wcet_us=2_000,
                deadline_us=ROUND_US,
            ),
        ),
        sensors=(sensor,),
        actuators=(actuator,),
    )
    background = Flow(
        flow_id=1,
        name="lane-keeping",
        criticality=CRITICALITY_HIGH,
        tasks=(
            Task(task_id=2, flow_id=1, name="lk1", period_us=ROUND_US,
                 wcet_us=1_000, deadline_us=ROUND_US),
            Task(task_id=3, flow_id=1, name="lk2", period_us=ROUND_US,
                 wcet_us=1_000, deadline_us=ROUND_US),
        ),
        edges=((2, 3),),
    )
    return Workload([cruise, background])


@dataclass
class XC90Scenario:
    """One panel of Fig. 10."""

    name: str
    protected: bool
    attack_at_s: Optional[float]
    duration_s: float = 3.0
    seed: int = 1

    def run(self) -> Dict:
        topology = volvo_xc90_topology(include_devices=True)
        sensor = topology.node_by_name("SPD")
        actuator = topology.node_by_name("ENG")
        ecm = topology.node_by_name("ECM")
        workload = _cruise_workload(sensor, actuator)

        target_ms = TARGET_MPH / MPH_PER_MS
        car = VehicleModel(initial_speed_ms=target_ms)
        feedforward = int(car.steady_state_throttle(target_ms) * MICRO)
        registry = TaskRegistry()
        registry.register(
            CRUISE_TASK_ID,
            CruiseControlTask(
                setpoint_micro_ms=to_micro(target_ms),
                dt_micro_s=ROUND_US,
                feedforward_micro=feedforward,
            ),
        )

        def read_speed(round_no: int) -> bytes:
            return encode_micro(to_micro(car.speed_ms))

        def apply_throttle(round_no: int, payload: bytes, origin: int) -> None:
            car.set_throttle(decode_micro(payload) / MICRO)

        config = ReboundConfig(
            fmax=1 if self.protected else 1,
            fconc=1 if self.protected else 0,
            round_length_us=ROUND_US,
            variant="multi",
            rsa_bits=256,
            protocol_enabled=self.protected,
        )
        # Pin the cruise primary to the ECM so the attack compromises the
        # right node (the paper: "the adversary compromises the ECM unit").
        system = ReboundSystem(
            topology,
            workload,
            config,
            registry=registry,
            sensor_reads={sensor: read_speed},
            actuator_applies={actuator: apply_throttle},
            seed=self.seed,
            pin_primaries={CRUISE_TASK_ID: ecm},
        )

        rounds = int(self.duration_s * 1e6 / ROUND_US)
        attack_round = (
            int(self.attack_at_s * 1e6 / ROUND_US)
            if self.attack_at_s is not None
            else None
        )
        dt = ROUND_US / 1e6
        series: List[Tuple[float, float]] = []
        detected_round = None
        recovered_round = None
        for i in range(rounds):
            if attack_round is not None and system.round_no + 1 == attack_round:
                system.inject_now(
                    ecm,
                    RandomOutputBehavior(constant=encode_micro(MICRO)),
                )
            system.run_round()
            car.step(dt)
            series.append((system.round_no * dt, car.speed_mph))
            if (
                self.protected
                and attack_round is not None
                and system.round_no >= attack_round
            ):
                if detected_round is None and system.detected():
                    detected_round = system.round_no
                if (
                    recovered_round is None
                    and detected_round is not None
                    and system.converged()
                ):
                    recovered_round = system.round_no
        peak = max(v for _t, v in series)
        final = series[-1][1]
        return {
            "scenario": self.name,
            "series": series,
            "peak_mph": peak,
            "final_mph": final,
            "excursion_mph": peak - TARGET_MPH,
            "detected_round": detected_round,
            "recovered_round": recovered_round,
            "attack_round": attack_round,
            "recovery_ms": (
                (recovered_round - attack_round) * ROUND_US / 1000.0
                if recovered_round is not None and attack_round is not None
                else None
            ),
        }


def run_all(duration_s: float = 3.0, seed: int = 1) -> Dict[str, Dict]:
    """All four panels of Fig. 10."""
    scenarios = {
        "normal": XC90Scenario("normal", protected=True, attack_at_s=None,
                               duration_s=duration_s, seed=seed),
        "attack_unprotected": XC90Scenario(
            "attack_unprotected", protected=False, attack_at_s=0.3,
            duration_s=duration_s, seed=seed,
        ),
        "attack_rebound": XC90Scenario(
            "attack_rebound", protected=True, attack_at_s=0.3,
            duration_s=duration_s, seed=seed,
        ),
    }
    return {name: scenario.run() for name, scenario in scenarios.items()}


def check_shape(results: Dict[str, Dict]) -> Dict[str, bool]:
    normal = results["normal"]
    unprotected = results["attack_unprotected"]
    protected = results["attack_rebound"]
    return {
        # (a) normal operation holds the setpoint.
        "normal_holds_65mph": abs(normal["final_mph"] - TARGET_MPH) < 2.0,
        # (b) without defense the attack succeeds dramatically (the paper
        # reaches ~100 mph in 3 s; our drag model is slightly more
        # conservative but the runaway is unambiguous).
        "unprotected_runs_away": unprotected["excursion_mph"] > 7.0,
        # (c) with REBOUND the speed barely moves.
        "rebound_excursion_small": protected["excursion_mph"] < 2.0,
        "rebound_recovers_setpoint": abs(protected["final_mph"] - TARGET_MPH) < 2.0,
        # (d) recovery within tens of milliseconds (paper: ~50 ms).
        "recovery_within_100ms": (
            protected["recovery_ms"] is not None
            and protected["recovery_ms"] <= 100.0
        ),
    }
