"""Figure 11: testbed attack scenarios on the Fig. 1 chemical plant.

The paper's testbed runs the Fig. 1 topology and workload on 10 Raspberry
Pis with 40 ms rounds (fconc = 1, fmax = 3) and injects three faults: the
adversary compromises N4, N3, and N3+N4 (one second apart), each feeding
random data downstream -- the worst case for latency because the fault is
only discovered during an audit.  An oscilloscope watches the actuators:

* (a) unprotected, N4 attacked: the disturbed actuator shows an irregular
  pattern indefinitely;
* (b) REBOUND, N4 attacked: the output recovers in ~5 rounds (~200 ms) and
  the least-critical flow (monitor) is dropped (flat line);
* (c) REBOUND, N3 attacked: same, different disturbed flow;
* (d) REBOUND, N3 then N4: an additional flow is dropped; the two most
  critical survive.

We reproduce all four with the closed-loop reactor, PWM traces standing in
for the oscilloscope.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import ReboundConfig
from repro.experiments.common import ChemicalPlantLoop
from repro.faults.adversary import RandomOutputBehavior
from repro.plant.fixedpoint import MICRO

ROUND_US = 40_000  # the testbed's 40 ms rounds
WARMUP_ROUNDS = 15
# Any legitimate duty lies in [0, MICRO]; random 8-byte garbage essentially
# never does, so the band cleanly separates disrupted from normal output.
EXPECTED_BAND = (0, MICRO)


def run_scenario(
    victims: Sequence[str],
    protected: bool = True,
    second_fault_delay_rounds: int = 25,
    post_rounds: int = 30,
    seed: int = 1,
) -> Dict:
    """One panel: compromise ``victims`` (e.g. ["N4"] or ["N3", "N4"])."""
    config = ReboundConfig(
        fmax=3,
        fconc=1,
        round_length_us=ROUND_US,
        variant="multi",
        rsa_bits=256,
        protocol_enabled=protected,
    )
    loop = ChemicalPlantLoop(config=config, seed=seed)
    system = loop.system
    topology = system.topology
    loop.run(WARMUP_ROUNDS)

    fault_rounds: List[int] = []
    for i, victim_name in enumerate(victims):
        victim = topology.node_by_name(victim_name)
        system.inject_now(victim, RandomOutputBehavior(seed=7 + i))
        fault_rounds.append(system.round_no + 1)
        if i + 1 < len(victims):
            loop.run(second_fault_delay_rounds)
    loop.run(post_rounds)

    first_fault = fault_rounds[0]
    last_round = system.round_no
    result: Dict = {
        "victims": list(victims),
        "protected": protected,
        "fault_rounds": fault_rounds,
        "traces": {},
    }
    for name, trace in loop.traces.items():
        disrupted = trace.disrupted_rounds(first_fault, last_round, EXPECTED_BAND)
        recovery = trace.recovery_round(first_fault, EXPECTED_BAND)
        starved = trace.starved_rounds(last_round - 5, last_round)
        result["traces"][name] = {
            "disrupted_rounds": disrupted,
            "recovery_round": recovery,
            "recovery_rounds_after_fault": (
                recovery - first_fault if recovery is not None else None
            ),
            "flat_at_end": len(starved) >= 5,
        }
    schedule = (
        system.nodes[system.correct_controllers()[0]].current_schedule
        if system.correct_controllers()
        else None
    )
    result["active_flows"] = (
        sorted(
            system.workload.flows[f].name for f in schedule.active_flows
        )
        if schedule
        else []
    )
    result["dropped_flows"] = (
        sorted(
            system.workload.flows[f].name for f in schedule.dropped_flows
        )
        if schedule
        else []
    )
    return result


def run_all(seed: int = 1, post_rounds: int = 30) -> Dict[str, Dict]:
    """All four panels of Fig. 11."""
    return {
        "a_n4_unprotected": run_scenario(["N4"], protected=False,
                                         post_rounds=post_rounds, seed=seed),
        "b_n4_rebound": run_scenario(["N4"], protected=True,
                                     post_rounds=post_rounds, seed=seed),
        "c_n3_rebound": run_scenario(["N3"], protected=True,
                                     post_rounds=post_rounds, seed=seed),
        "d_n3_n4_rebound": run_scenario(["N3", "N4"], protected=True,
                                        post_rounds=post_rounds, seed=seed),
    }


def check_shape(results: Dict[str, Dict]) -> Dict[str, bool]:
    """The paper's qualitative Fig. 11 claims."""
    checks: Dict[str, bool] = {}
    unprot = results["a_n4_unprotected"]
    # (a) the unprotected system sends bad data indefinitely on at least one
    # disturbed actuator (no recovery).
    disturbed = [
        t for t in unprot["traces"].values() if t["disrupted_rounds"]
    ]
    checks["unprotected_stays_disrupted"] = bool(disturbed) and all(
        t["recovery_round"] is None for t in disturbed
    )
    # (b)/(c): protected runs recover within ~5-8 rounds and drop the
    # monitor flow.
    for key in ("b_n4_rebound", "c_n3_rebound"):
        run = results[key]
        fault = run["fault_rounds"][0]
        # Every disturbed actuator either resumes normal output within
        # ~5-10 rounds, or its flow was deliberately dropped (flat line --
        # the paper's "the least critical flow is dropped ... a flat green
        # line").  Either way the disruption itself must stop quickly.
        ok = True
        for t in run["traces"].values():
            if not t["disrupted_rounds"]:
                continue
            disruption_over = max(t["disrupted_rounds"]) - fault <= 10
            recovered = (
                t["recovery_rounds_after_fault"] is not None
                and t["recovery_rounds_after_fault"] <= 10
            )
            ok &= disruption_over and (recovered or t["flat_at_end"])
        checks[f"{key}_recovers"] = ok
        checks[f"{key}_drops_monitor"] = "monitor" in run["dropped_flows"]
    # (d): two faults leave only the two most critical flows.
    double = results["d_n3_n4_rebound"]
    checks["double_fault_keeps_two_most_critical"] = set(
        double["active_flows"]
    ) == {"pressure-alarm", "burner-control"}
    return checks
