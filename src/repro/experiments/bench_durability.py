"""Durability-layer benchmark: persistence overhead and verified restore.

Runs the same 20-node grid deployment (with a mid-run crash, so evidence
actually flows) twice in one process -- persistence off and persistence
on (chained log + sealed snapshots to a tempdir) -- and records:

* both wall-clock times and the persistence overhead ratio;
* full transcripts proving the runs are *byte-identical* (the durable
  write path is observation-only);
* per-store write-side counters (appends, flushes, snapshots, bytes);
* on-disk footprint (log + snapshot sizes across all nodes);
* verified-restore timing: every node's store is re-opened cold and
  ``load()``-ed (snapshot seal check + full chain verification + suffix
  decode), with the per-node restore time distribution.

The result is written to ``BENCH_durability.json``;
``python -m repro bench-durability`` prints the JSON line.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.metrics import transcript_entry as _transcript_entry
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.faults.adversary import CrashBehavior
from repro.net.topology import grid_topology
from repro.sched.workload import WorkloadGenerator

DEFAULT_ROWS = 4
DEFAULT_COLS = 5
DEFAULT_ROUNDS = 24
DEFAULT_CRASH_ROUND = 10
SNAPSHOT_INTERVAL = 8


def _run_once(
    rows: int,
    cols: int,
    rounds: int,
    crash_round: Optional[int],
    seed: int,
    durability_dir: Optional[str],
) -> Dict[str, Any]:
    topology = grid_topology(rows, cols)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    kwargs: Dict[str, Any] = {}
    if durability_dir is not None:
        kwargs = {
            "durability_enabled": True,
            "durability_dir": durability_dir,
            "snapshot_interval": SNAPSHOT_INTERVAL,
        }
    config = ReboundConfig(fmax=1, fconc=1, variant="multi", rsa_bits=256, **kwargs)
    t0 = time.perf_counter()
    system = ReboundSystem(topology, workload, config, seed=seed)
    build_s = time.perf_counter() - t0
    transcript: List[Tuple] = []
    run_s = 0.0
    for r in range(1, rounds + 1):
        if crash_round is not None and r == crash_round:
            system.inject_now(max(topology.controllers), CrashBehavior())
        t0 = time.perf_counter()
        system.run_round()
        run_s += time.perf_counter() - t0
        transcript.append(_transcript_entry(system))
    timings: Dict[str, float] = {}
    if durability_dir is not None:
        for node in system.nodes.values():
            durable = getattr(node, "durable", None)
            if durable is None:
                continue
            for key, value in durable.timings.items():
                timings[key] = timings.get(key, 0) + value
    system.close()
    return {
        "build_s": build_s,
        "run_s": run_s,
        "transcript": transcript,
        "write_counters": timings,
        "config": config,
    }


def _disk_footprint(durability_dir: str) -> Dict[str, int]:
    log_bytes = snapshot_bytes = files = 0
    for root, _dirs, names in os.walk(durability_dir):
        for name in names:
            size = os.path.getsize(os.path.join(root, name))
            files += 1
            if name.endswith(".bin"):
                snapshot_bytes += size
            else:
                log_bytes += size
    return {
        "files": files,
        "log_bytes": log_bytes,
        "snapshot_bytes": snapshot_bytes,
        "total_bytes": log_bytes + snapshot_bytes,
    }


def _restore_all(durability_dir: str, seed: int) -> Dict[str, Any]:
    """Cold-open every node's store and run the verified restore path."""
    from repro.durability import NodeDurableStore

    times: List[float] = []
    restored = tampered = replayed = 0
    node_dirs = sorted(
        d for d in os.listdir(durability_dir) if d.startswith("node_")
    )
    for name in node_dirs:
        node_id = int(name.split("_")[1])
        store = NodeDurableStore(
            durability_dir, node_id, seed=seed,
            snapshot_interval=SNAPSHOT_INTERVAL,
        )
        t0 = time.perf_counter()
        result = store.load()
        times.append(time.perf_counter() - t0)
        if result.node is not None:
            restored += 1
        if result.tampered:
            tampered += 1
        replayed += len(result.evidence)
    return {
        "stores": len(node_dirs),
        "restored_from_snapshot": restored,
        "tampered": tampered,
        "suffix_items_replayed": replayed,
        "restore_s_total": sum(times),
        "restore_s_max": max(times) if times else 0.0,
        "restore_s_mean": (sum(times) / len(times)) if times else 0.0,
        # Every store must restore clean: a snapshot for each node and
        # zero tamper detections on an untouched disk.
        "ok": tampered == 0 and restored == len(node_dirs) and bool(node_dirs),
    }


def run_durability_bench(
    rows: int = DEFAULT_ROWS,
    cols: int = DEFAULT_COLS,
    rounds: int = DEFAULT_ROUNDS,
    crash_round: Optional[int] = DEFAULT_CRASH_ROUND,
    seed: int = 0,
    output_path: Optional[str] = "BENCH_durability.json",
) -> Dict[str, Any]:
    """The headline measurement (see module docstring)."""
    from repro.experiments.common import bench_env

    durability_dir = tempfile.mkdtemp(prefix="rebound-bench-durable-")
    try:
        baseline = _run_once(rows, cols, rounds, crash_round, seed, None)
        durable = _run_once(rows, cols, rounds, crash_round, seed, durability_dir)
        footprint = _disk_footprint(durability_dir)
        restore = _restore_all(durability_dir, seed)
    finally:
        shutil.rmtree(durability_dir, ignore_errors=True)
    result = {
        "benchmark": "durability",
        "env": bench_env(),
        "topology": f"grid_{rows}x{cols}",
        "nodes": rows * cols,
        "rounds": rounds,
        "crash_round": crash_round,
        "seed": seed,
        "snapshot_interval": SNAPSHOT_INTERVAL,
        "baseline_run_s": baseline["run_s"],
        "durable_run_s": durable["run_s"],
        "overhead_ratio": (
            durable["run_s"] / baseline["run_s"]
            if baseline["run_s"] else float("inf")
        ),
        "transcripts_identical": baseline["transcript"] == durable["transcript"],
        "write_counters": durable["write_counters"],
        "disk": footprint,
        "restore": restore,
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result


def main(
    output_path: Optional[str] = "BENCH_durability.json",
    rounds: int = DEFAULT_ROUNDS,
) -> Dict[str, Any]:
    result = run_durability_bench(rounds=rounds, output_path=output_path)
    print("BENCH " + json.dumps(
        {
            "benchmark": result["benchmark"],
            "topology": result["topology"],
            "rounds": result["rounds"],
            "baseline_run_s": result["baseline_run_s"],
            "durable_run_s": result["durable_run_s"],
            "overhead_ratio": result["overhead_ratio"],
            "transcripts_identical": result["transcripts_identical"],
            "restore_ok": result["restore"]["ok"],
            "restore_s_total": result["restore"]["restore_s_total"],
        },
        sort_keys=True,
    ))
    return result


if __name__ == "__main__":
    main()
