"""Figure 6: mode-change dynamics around a worst-case fault.

The paper runs REBOUND-MULTI for 100 rounds on a 45-node topology; in round
50 the highest-degree node turns faulty and performs the most expensive
action -- declaring a different link failure over each of its links
(S3.6's worst case).  Two metrics per round:

* the fraction of correct nodes in the initial mode / intermediate modes /
  the final mode (top panel), and
* the per-link bandwidth (bottom panel), which spikes during the change
  (evidence transfers + lost aggregation opportunities) and then settles.

The storm first splinters the network into many transient modes; once the
evidence floods and stabilizes, everyone converges on one final mode.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.faults.adversary import LFDStormBehavior
from repro.net.topology import erdos_renyi_topology
from repro.sched.task import Workload

DEFAULT_N = 45
FAULT_ROUND = 50
TOTAL_ROUNDS = 80

_INITIAL_MODE = ((), ())


def run(
    n: int = DEFAULT_N,
    fault_round: int = FAULT_ROUND,
    total_rounds: int = TOTAL_ROUNDS,
    seed: int = 0,
    rsa_bits: int = 512,
) -> List[Dict]:
    """Returns one row per round: mode fractions + mean link bandwidth.

    ``frac_final`` is measured against the mode the system eventually
    settles in (known only post hoc, as in the paper's plot).
    """
    topology = erdos_renyi_topology(n, seed=seed)
    config = ReboundConfig(fmax=3, fconc=1, variant="multi", rsa_bits=rsa_bits)
    system = ReboundSystem(topology, Workload([]), config, seed=seed)
    victim = topology.max_degree_node()

    censuses: List[Tuple[int, Counter, float]] = []
    injected = False
    for _ in range(total_rounds):
        if system.round_no + 1 == fault_round and not injected:
            system.inject_now(victim, LFDStormBehavior())
            injected = True
        system.run_round()
        censuses.append(
            (
                system.round_no,
                system.mode_census(),
                system.mean_link_bytes_in_round() / 1024.0,
            )
        )

    final_census = censuses[-1][1]
    final_mode = _dominant_mode(final_census, exclude=_INITIAL_MODE)
    rows: List[Dict] = []
    for round_no, census, bandwidth in censuses:
        total = sum(census.values())
        in_initial = census.get(_INITIAL_MODE, 0)
        in_final = census.get(final_mode, 0) if final_mode is not None else 0
        rows.append(
            {
                "round": round_no,
                "frac_initial": in_initial / total,
                "frac_final": in_final / total,
                "frac_other": max(0.0, (total - in_initial - in_final) / total),
                "modes": len(census),
                "bandwidth_kb_per_link": bandwidth,
            }
        )
    return rows


def _dominant_mode(census: Counter, exclude) -> Optional[tuple]:
    candidates = [m for m in census if m != exclude]
    if not candidates:
        return None
    return max(candidates, key=lambda m: census[m])


def summarize(rows: List[Dict], fault_round: int = FAULT_ROUND) -> Dict:
    """Convergence and bandwidth-spike summary (the Fig. 6 narrative)."""
    pre_rows = [r for r in rows if r["round"] < fault_round]
    post_rows = [r for r in rows if r["round"] >= fault_round]
    tail = pre_rows[-5:] or pre_rows
    pre_bw = sum(r["bandwidth_kb_per_link"] for r in tail) / max(1, len(tail))
    peak_bw = max((r["bandwidth_kb_per_link"] for r in post_rows), default=0.0)
    converge_round = None
    for row in post_rows:
        if row["frac_final"] == 1.0:
            converge_round = row["round"]
            break
    splinter = max((r["modes"] for r in post_rows), default=1)
    return {
        "pre_fault_bandwidth_kb": pre_bw,
        "peak_bandwidth_kb": peak_bw,
        "bandwidth_spike_factor": peak_bw / pre_bw if pre_bw else 0.0,
        "max_concurrent_modes": splinter,
        "converged_round": converge_round,
        "rounds_to_converge": (
            converge_round - fault_round if converge_round is not None else None
        ),
    }
