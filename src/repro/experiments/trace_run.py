"""Trace driver: run a seeded fault scenario under the flight recorder.

``python -m repro trace --preset smoke`` runs a small deployment with the
:class:`~repro.obs.recorder.FlightRecorder` installed, reconstructs the
recovery timeline from the recorded events alone, cross-checks it against
the live :class:`~repro.chaos.monitor.BTRMonitor`, and exports both a JSONL
event log and a Chrome-trace / Perfetto file (protocol instants on tid 0,
mode spans on tid 1, recovery-phase spans on tid 2).

Presets:

* ``smoke`` -- the bench-fastpath deployment (4x5 grid, seeded crash at
  round 10): the CI-sized end-to-end check that trace-derived detection and
  convergence match the runtime's own ``detected()`` / ``converged()``.
* ``equivocation-gap`` -- the formerly open equivocation storm
  (Erdos-Renyi n=6, REBOUND-MULTI, fmax=2, heartbeat equivocation).  Now
  that epoch-aware Rule B attribution closes the gap, this preset is a
  pass/fail gate like ``smoke``: it exits non-zero unless the
  trace-derived decomposition is consistent and the monitor cross-check is
  clean.  The exported ``divergence_report`` still shows which evidence
  digests the correct nodes ended on, for regression diagnosis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.chaos.monitor import BTRMonitor
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.faults.adversary import CrashBehavior, EquivocateBehavior
from repro.net.topology import Topology, erdos_renyi_topology, grid_topology
from repro.obs.recorder import FlightRecorder
from repro.obs.timeline import (
    crosscheck,
    divergence_report,
    phase_spans,
    reconstruct,
)
from repro.sched.workload import WorkloadGenerator


@dataclass(frozen=True)
class TracePreset:
    """One canned scenario: topology, variant, adversary, schedule."""

    name: str
    variant: str
    fmax: int
    fault_round: int
    rounds: int
    behavior_factory: Any
    topology_factory: Any
    victim: Optional[int] = None  # None -> highest-numbered controller
    diagnosis_only: bool = False  # exit 0 regardless of convergence


def _smoke_topology() -> Topology:
    return grid_topology(4, 5)


def _gap_topology() -> Topology:
    return erdos_renyi_topology(6, seed=0)


PRESETS: Dict[str, TracePreset] = {
    "smoke": TracePreset(
        name="smoke",
        variant="basic",
        fmax=1,
        fault_round=10,
        rounds=30,
        behavior_factory=CrashBehavior,
        topology_factory=_smoke_topology,
    ),
    "equivocation-gap": TracePreset(
        name="equivocation-gap",
        variant="multi",
        fmax=2,
        fault_round=10,
        rounds=34,
        behavior_factory=EquivocateBehavior,
        topology_factory=_gap_topology,
        victim=0,
    ),
}


def _pick_victim(system: ReboundSystem) -> int:
    """Highest-numbered controller hosting a placement in the initial mode.

    Crashing a node that hosts nothing leaves ``converged()`` trivially
    true (the placements already exclude it), so the timeline would have no
    recovery episode to decompose.
    """
    controllers = set(system.topology.controllers)
    reference = min(system.nodes)
    schedule = system.nodes[reference].current_schedule
    hosts = set(schedule.placements.values()) if schedule else set()
    candidates = sorted(hosts & controllers)
    return candidates[-1] if candidates else max(controllers)


def run_trace(
    preset: str = "smoke",
    rounds: Optional[int] = None,
    seed: int = 0,
    jsonl_path: Optional[str] = None,
    chrome_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one preset under the recorder; returns the full analysis dict.

    The exported files default to ``TRACE_<preset>.jsonl`` and
    ``TRACE_<preset>.chrome.json``; pass empty strings to skip writing.
    """
    spec = PRESETS[preset]
    total_rounds = spec.rounds if rounds is None else rounds
    if jsonl_path is None:
        jsonl_path = f"TRACE_{spec.name}.jsonl"
    if chrome_path is None:
        chrome_path = f"TRACE_{spec.name}.chrome.json"

    topology = spec.topology_factory()
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=spec.fmax, fconc=1, variant=spec.variant, rsa_bits=512
    )

    recorder = FlightRecorder()
    recorder.install()
    observed_detection: Optional[int] = None
    observed_convergence: Optional[int] = None
    try:
        system = ReboundSystem(topology, workload, config, seed=seed)
        monitor = BTRMonitor(
            record_only=True, context={"preset": spec.name, "seed": seed}
        )
        system.attach_monitor(monitor)
        victim = spec.victim if spec.victim is not None else _pick_victim(system)
        for r in range(1, total_rounds + 1):
            if r == spec.fault_round:
                system.inject_now(victim, spec.behavior_factory())
            system.run_round()
            # The runtime's own verdicts, sampled per round: the ground
            # truth the trace-derived decomposition must reproduce.
            if r >= spec.fault_round:
                if observed_detection is None and system.detected():
                    observed_detection = r
                if observed_convergence is None and system.converged():
                    observed_convergence = r
    finally:
        recorder.uninstall()

    events = recorder.events()
    decomposition = reconstruct(events)
    check = crosscheck(decomposition, monitor)
    divergence = divergence_report(events)

    if jsonl_path:
        recorder.export_jsonl(jsonl_path)
    if chrome_path:
        recorder.export_chrome_trace(
            chrome_path, phase_spans=phase_spans(decomposition)
        )

    observed_recovery = (
        None
        if observed_convergence is None
        else observed_convergence - spec.fault_round
    )
    max_total = decomposition.max_node_total()
    decomposition_consistent = (
        observed_recovery is not None
        and max_total is not None
        and abs(max_total - observed_recovery) <= 1
        and decomposition.convergence_round == observed_convergence
        and decomposition.detection_round == observed_detection
    )

    return {
        "preset": spec.name,
        "variant": spec.variant,
        "seed": seed,
        "rounds": total_rounds,
        "fault_round": spec.fault_round,
        "victim": victim,
        "events_recorded": len(recorder),
        "events_dropped": recorder.dropped,
        "observed_detection_round": observed_detection,
        "observed_convergence_round": observed_convergence,
        "observed_recovery_rounds": observed_recovery,
        "decomposition": decomposition.as_dict(),
        "max_node_total_rounds": max_total,
        "decomposition_consistent": decomposition_consistent,
        "crosscheck": check,
        "divergence": divergence,
        "diagnosis_only": spec.diagnosis_only,
        "jsonl_path": jsonl_path or None,
        "chrome_path": chrome_path or None,
    }


def main(
    preset: str = "smoke",
    rounds: Optional[int] = None,
    seed: int = 0,
    jsonl_path: Optional[str] = None,
    chrome_path: Optional[str] = None,
) -> int:
    """CLI entry point: prints a summary, returns the exit code."""
    result = run_trace(
        preset=preset,
        rounds=rounds,
        seed=seed,
        jsonl_path=jsonl_path,
        chrome_path=chrome_path,
    )
    print(
        f"trace[{result['preset']}]: {result['events_recorded']} events "
        f"({result['events_dropped']} dropped), fault at round "
        f"{result['fault_round']} on node {result['victim']}"
    )
    print(
        f"  observed:  detection r{result['observed_detection_round']}, "
        f"convergence r{result['observed_convergence_round']} "
        f"({result['observed_recovery_rounds']} recovery rounds)"
    )
    d = result["decomposition"]
    print(
        f"  trace:     detection r{d['detection_round']}, "
        f"convergence r{d['convergence_round']} "
        f"({d['recovery_rounds']} recovery rounds)"
    )
    for node_key in sorted(d["per_node"], key=int):
        nr = d["per_node"][node_key]
        if nr["total_rounds"]:
            print(
                f"    node {node_key}: detection {nr['detection_rounds']} + "
                f"evidence {nr['evidence_rounds']} + "
                f"switch {nr['switch_rounds']} = {nr['total_rounds']} rounds"
            )
    print(f"  monitor agrees on detection: {result['crosscheck']['detection_agrees']}")
    if result["divergence"]["divergent"]:
        groups = result["divergence"]["digest_groups"]
        print(f"  evidence DIVERGED into {len(groups)} digest groups:")
        for digest, nodes in groups.items():
            print(f"    {digest}: nodes {nodes}")
    if result["jsonl_path"]:
        print(f"  wrote {result['jsonl_path']}")
    if result["chrome_path"]:
        print(f"  wrote {result['chrome_path']}")
    print("TRACE " + json.dumps(
        {
            k: result[k]
            for k in (
                "preset", "events_recorded", "observed_detection_round",
                "observed_convergence_round", "decomposition_consistent",
            )
        },
        sort_keys=True,
    ))
    if result["diagnosis_only"]:
        return 0
    ok = (
        result["decomposition_consistent"]
        and result["crosscheck"]["detection_agrees"]
        and not result["crosscheck"]["violations"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main(*sys.argv[1:2]))
