"""Mode-tree generation benchmark: seed serial path vs the optimized engine.

Runs a Fig. 7-style node-fault sweep three times per cell in one process:

* ``seed``      -- the pre-optimization serial path (no ILP warm starts, no
                   batch admission, no placement memo, no schedule
                   interning): the code path the repo shipped before the
                   parallel engine landed.
* ``opt_serial``-- all solver-level optimizations on, ``workers=1``.
* ``opt_par``   -- the same configuration fanned out across a worker pool.

For every cell the benchmark itself verifies the parallel tree is
*identical* to the serial tree (schedules, parents, child order, and both
serialized encodings), and that the optimized trees admit exactly the same
flow sets as the seed tree (ILP warm starts may pick a different
equally-optimal placement, so full bit-identity to the seed path is only
asserted for greedy cells, where every optimization is result-preserving).

The result is written to ``BENCH_modegen.json`` so regressions are
diffable across commits; ``python -m repro bench-modegen`` prints the
JSON line.  ``quick=True`` shrinks the sweep to a CI-sized smoke run.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.net.topology import erdos_renyi_topology
from repro.sched.modegen import FailureScenario, ModeTree, ModeTreeGenerator
from repro.sched.workload import WorkloadGenerator

DEFAULT_WORKERS = 2

#: Fig. 7-style sweep cells.  ILP cells are deliberately small: the
#: pure-Python branch-and-bound seed path takes tens of seconds per cell
#: already at n=6 (that cost is exactly what this benchmark measures).
CELLS: List[Dict[str, Any]] = [
    {"name": "ilp_n6_f1", "n": 6, "fmax": 1, "method": "ilp", "util": 1.2},
    {"name": "ilp_n6_f2", "n": 6, "fmax": 2, "method": "ilp", "util": 1.2},
    {"name": "greedy_n12_f2", "n": 12, "fmax": 2, "method": "greedy", "util": 2.0},
]

QUICK_CELLS: List[Dict[str, Any]] = [
    {"name": "greedy_n8_f2", "n": 8, "fmax": 2, "method": "greedy", "util": 1.5},
    {"name": "ilp_n5_f1", "n": 5, "fmax": 1, "method": "ilp", "util": 1.0},
]

#: Online-refresh sweep: base tree at ``fmax``, one observed pattern with
#: ``fmax + extra`` node faults, extended via ``extend_for`` (serial and
#: parallel) vs a from-scratch generation at ``fmax + extra``.  The key
#: ``nodes`` (not ``n``) keeps bench-diff's by-``n`` list matcher off this
#: sweep -- two cells share a node count.
REFRESH_CELLS: List[Dict[str, Any]] = [
    {"name": "refresh_n8_f2_x1", "nodes": 8, "fmax": 2, "extra": 1, "util": 1.5},
    {"name": "refresh_n8_f2_x2", "nodes": 8, "fmax": 2, "extra": 2, "util": 1.5},
    {"name": "refresh_n12_f2_x1", "nodes": 12, "fmax": 2, "extra": 1, "util": 2.0},
]

QUICK_REFRESH_CELLS: List[Dict[str, Any]] = [
    {"name": "refresh_n6_f2_x1", "nodes": 6, "fmax": 2, "extra": 1, "util": 1.2},
]


def _trees_identical(a: ModeTree, b: ModeTree) -> bool:
    """Full structural identity: schedules, canonical parents, child order."""
    return (
        a.schedules == b.schedules
        and a.parents == b.parents
        and a.children == b.children
        and a.serialized_size() == b.serialized_size()
        and a.serialized_size(dedup=False) == b.serialized_size(dedup=False)
    )


def _same_flow_sets(a: ModeTree, b: ModeTree) -> bool:
    """Same scenarios with the same active/dropped flows (placements may
    differ between equally-optimal ILP solutions)."""
    if set(a.schedules) != set(b.schedules):
        return False
    for scenario, sched_a in a.schedules.items():
        sched_b = b.schedules[scenario]
        if sched_a.active_flows != sched_b.active_flows:
            return False
        if sched_a.dropped_flows != sched_b.dropped_flows:
            return False
    return True


def _subtree_identical(
    extended: ModeTree, scratch: ModeTree, target: FailureScenario
) -> bool:
    """The extended tree's sub-lattice under ``target`` is byte-identical
    to from-scratch generation: same schedules, same canonical parents,
    same child order (restricted to the sub-lattice on both sides --
    the trees legitimately differ outside it)."""
    for scenario in scratch.schedules:
        if not target.covers(scenario):
            continue
        if scenario not in extended.schedules:
            return False
        if extended.schedules[scenario] != scratch.schedules[scenario]:
            return False
        if extended.parents.get(scenario) != scratch.parents.get(scenario):
            return False
        ext_kids = [
            c for c in extended.children.get(scenario, [])
            if target.covers(c)
        ]
        scr_kids = [
            c for c in scratch.children.get(scenario, [])
            if target.covers(c)
        ]
        if ext_kids != scr_kids:
            return False
    return True


def _refresh_setup(cell: Dict[str, Any], fmax: int, seed: int):
    topology = erdos_renyi_topology(cell["nodes"], seed=seed)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=cell["util"]
    )
    generator = ModeTreeGenerator(
        topology,
        workload,
        fmax=fmax,
        fconc=1,
        method="greedy",
        place_memo=True,
        intern_schedules=True,
    )
    return topology, generator


def _run_refresh_cell(
    cell: Dict[str, Any], workers: int, seed: int
) -> Dict[str, Any]:
    fmax, extra = cell["fmax"], cell["extra"]
    topology, _ = _refresh_setup(cell, fmax, seed)
    target = FailureScenario(
        nodes=frozenset(topology.controllers[: fmax + extra]),
        links=frozenset(),
    )

    def extend(n_workers: int):
        _, generator = _refresh_setup(cell, fmax, seed)
        tree = generator.generate(workers=1)
        t0 = time.perf_counter()
        stats = generator.extend_for(tree, target, workers=n_workers)
        return tree, stats, time.perf_counter() - t0

    tree_serial, stats, extend_serial_s = extend(1)
    tree_parallel, _, extend_parallel_s = extend(workers)
    _, scratch_gen = _refresh_setup(cell, fmax + extra, seed)
    t0 = time.perf_counter()
    scratch = scratch_gen.generate(workers=1)
    scratch_s = time.perf_counter() - t0
    return {
        **{k: cell[k] for k in ("name", "nodes", "fmax", "extra", "util")},
        "target_faults": fmax + extra,
        "added_modes": stats["added_modes"],
        "extend_serial_run_s": extend_serial_s,
        "extend_parallel_run_s": extend_parallel_s,
        "scratch_run_s": scratch_s,
        "speedup_vs_scratch": (
            scratch_s / extend_serial_s if extend_serial_s else float("inf")
        ),
        "identical_to_scratch": (
            _subtree_identical(tree_serial, scratch, target)
            and _subtree_identical(tree_parallel, scratch, target)
        ),
        "parallel_identical_to_serial": (
            tree_serial.schedules == tree_parallel.schedules
            and tree_serial.parents == tree_parallel.parents
            and tree_serial.children == tree_parallel.children
        ),
    }


def _generate(cell: Dict[str, Any], optimized: bool, workers: int, seed: int):
    topology = erdos_renyi_topology(cell["n"], seed=seed)
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=cell["util"]
    )
    generator = ModeTreeGenerator(
        topology,
        workload,
        fmax=cell["fmax"],
        fconc=1,
        method=cell["method"],
        ilp_warm_start=optimized,
        ilp_batch_admit=optimized,
        place_memo=optimized,
        intern_schedules=optimized,
    )
    t0 = time.perf_counter()
    tree = generator.generate(workers=workers)
    elapsed = time.perf_counter() - t0
    return tree, elapsed


def _run_cell(cell: Dict[str, Any], workers: int, seed: int) -> Dict[str, Any]:
    tree_seed, seed_s = _generate(cell, optimized=False, workers=1, seed=seed)
    tree_opt, opt_serial_s = _generate(cell, optimized=True, workers=1, seed=seed)
    tree_par, opt_parallel_s = _generate(
        cell, optimized=True, workers=workers, seed=seed
    )
    solver_seed = tree_seed.stats.solver
    solver_opt = tree_par.stats.solver
    row = {
        **{k: cell[k] for k in ("name", "n", "fmax", "method", "util")},
        "modes": tree_seed.num_modes,
        "seed_s": seed_s,
        "opt_serial_s": opt_serial_s,
        "opt_parallel_s": opt_parallel_s,
        "speedup_serial": seed_s / opt_serial_s if opt_serial_s else float("inf"),
        "speedup_parallel": (
            seed_s / opt_parallel_s if opt_parallel_s else float("inf")
        ),
        # The headline identity claim: the pool produces the very tree the
        # serial engine does.
        "parallel_identical_to_serial": _trees_identical(tree_opt, tree_par),
        "same_flow_sets_as_seed": _same_flow_sets(tree_seed, tree_par),
        "size_flat_bytes": tree_seed.serialized_size(dedup=False),
        "size_dedup_bytes": tree_par.serialized_size(),
        "interned_schedules": tree_par.stats.interned_schedules,
        "unique_schedule_bodies": tree_par.stats.unique_schedule_bodies,
        "seed_ilp_nodes": solver_seed.get("ilp_nodes_explored", 0),
        "opt_ilp_nodes": solver_opt.get("ilp_nodes_explored", 0),
        "seed_ilp_solves": solver_seed.get("ilp_solves", 0),
        "opt_ilp_solves": solver_opt.get("ilp_solves", 0),
        "opt_warm_proved_optimal": solver_opt.get("ilp_warm_proved_optimal", 0),
        "opt_place_memo_hits": solver_opt.get("place_memo_hits", 0),
    }
    if cell["method"] == "greedy":
        # Every optimization is result-preserving for greedy placement, so
        # the optimized trees must be bit-identical to the seed tree.
        row["identical_to_seed"] = _trees_identical(tree_seed, tree_par)
    return row


def run_modegen_bench(
    workers: int = DEFAULT_WORKERS,
    seed: int = 0,
    quick: bool = False,
    output_path: Optional[str] = "BENCH_modegen.json",
) -> Dict[str, Any]:
    """The headline before/after measurement (see module docstring).

    Returns the result dict; also writes it to ``output_path`` (JSON)
    unless that is None.
    """
    cells = QUICK_CELLS if quick else CELLS
    rows = [_run_cell(cell, workers=workers, seed=seed) for cell in cells]
    refresh_cells = QUICK_REFRESH_CELLS if quick else REFRESH_CELLS
    refresh_rows = [
        _run_refresh_cell(cell, workers=workers, seed=seed)
        for cell in refresh_cells
    ]
    total_seed = sum(r["seed_s"] for r in rows)
    total_serial = sum(r["opt_serial_s"] for r in rows)
    total_parallel = sum(r["opt_parallel_s"] for r in rows)
    from repro.experiments.common import bench_env

    result = {
        "benchmark": "modegen",
        "env": bench_env(workers=workers),
        "quick": quick,
        "workers": workers,
        "seed": seed,
        "cells": rows,
        "total_seed_s": total_seed,
        "total_opt_serial_s": total_serial,
        "total_opt_parallel_s": total_parallel,
        "speedup_serial": (
            total_seed / total_serial if total_serial else float("inf")
        ),
        "speedup_end_to_end": (
            total_seed / total_parallel if total_parallel else float("inf")
        ),
        "all_parallel_identical": all(
            r["parallel_identical_to_serial"] for r in rows
        ),
        "all_flow_sets_match_seed": all(
            r["same_flow_sets_as_seed"] for r in rows
        ),
        # Online tree refresh (PROTOCOL.md §16.5): time to extend a live
        # tree with the sub-lattice of one >fmax pattern, vs regenerating
        # the whole tree at the larger budget from scratch.
        "time_to_new_tree": {
            "cells": refresh_rows,
            "total_extend_serial_run_s": sum(
                r["extend_serial_run_s"] for r in refresh_rows
            ),
            "total_extend_parallel_run_s": sum(
                r["extend_parallel_run_s"] for r in refresh_rows
            ),
            "total_scratch_run_s": sum(
                r["scratch_run_s"] for r in refresh_rows
            ),
            "all_identical_to_scratch": all(
                r["identical_to_scratch"] for r in refresh_rows
            ),
            "all_parallel_identical": all(
                r["parallel_identical_to_serial"] for r in refresh_rows
            ),
        },
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result


def main(
    output_path: Optional[str] = "BENCH_modegen.json",
    workers: int = DEFAULT_WORKERS,
    quick: bool = False,
) -> Dict[str, Any]:
    result = run_modegen_bench(
        workers=workers, quick=quick, output_path=output_path
    )
    refresh = result["time_to_new_tree"]
    print("BENCH " + json.dumps(
        {
            **{
                k: result[k]
                for k in (
                    "benchmark", "quick", "workers",
                    "total_seed_s", "total_opt_serial_s",
                    "total_opt_parallel_s",
                    "speedup_serial", "speedup_end_to_end",
                    "all_parallel_identical", "all_flow_sets_match_seed",
                )
            },
            "time_to_new_tree_s": refresh["total_extend_serial_run_s"],
            "refresh_identical_to_scratch": refresh["all_identical_to_scratch"],
        },
        sort_keys=True,
    ))
    return result


if __name__ == "__main__":
    main()
