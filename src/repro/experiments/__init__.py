"""Experiment drivers: one module per figure of the paper's evaluation.

Each driver is a pure function taking parameters and returning row dicts /
series, so the same code backs the benchmarks (``benchmarks/``), the
examples (``examples/``), and EXPERIMENTS.md.

| Paper artifact | Module |
|---|---|
| Table 1 (recovery timescales)      | :mod:`repro.experiments.timescales` |
| Fig. 5 (protocol overhead)         | :mod:`repro.experiments.fig5_overhead` |
| Fig. 6 (mode-change dynamics)      | :mod:`repro.experiments.fig6_modechange` |
| Fig. 7 (scheduling trees)          | :mod:`repro.experiments.fig7_scheduling` |
| Fig. 8 (case-study runtime costs)  | :mod:`repro.experiments.fig8_casestudy` |
| Fig. 9 (comparison to PBFT)        | :mod:`repro.experiments.fig9_pbft` |
| Fig. 10 (XC90 cruise-control)      | :mod:`repro.experiments.fig10_xc90` |
| Fig. 11 (testbed attack scenarios) | :mod:`repro.experiments.fig11_testbed` |
"""
