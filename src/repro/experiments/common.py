"""Shared experiment plumbing: system builders, closed loops, printing."""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence


def bench_env(workers: Optional[int] = None) -> Dict[str, Any]:
    """Provenance block shared by every ``BENCH_*.json`` writer.

    Records the interpreter, platform, CPU budget, worker count, and the
    commit the numbers were taken at, so benchmark files are comparable
    across machines and commits.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    try:
        import numpy  # noqa: F401
        have_numpy = True
    except ImportError:
        have_numpy = False
    env: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": have_numpy,
        "commit": commit,
    }
    if workers is not None:
        env["workers"] = workers
    return env

from repro.core.auditing import TaskRegistry
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.net.topology import chemical_plant_topology
from repro.plant.actuator import PWMTrace
from repro.plant.chemical import (
    BurnerActuationTask,
    BurnerControlTask,
    ChemicalReactor,
    MonitorTask,
    PressureAlarmTask,
    SensorStageTask,
    ValveActuationTask,
    ValveControlTask,
)
from repro.plant.fixedpoint import MICRO, encode_micro, to_micro
from repro.sched.task import chemical_plant_workload


def print_table(rows: Sequence[Dict], title: str = "") -> None:
    """Render row dicts as an aligned text table (benchmark output)."""
    if title:
        print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def chemical_plant_registry() -> TaskRegistry:
    """Fig. 1(c)'s eight tasks with their real control logic."""
    registry = TaskRegistry()
    registry.register(1, PressureAlarmTask())
    registry.register(2, BurnerControlTask())
    registry.register(3, BurnerActuationTask())
    registry.register(4, ValveControlTask())
    registry.register(5, ValveActuationTask())
    registry.register(6, SensorStageTask())
    registry.register(7, SensorStageTask())
    registry.register(8, MonitorTask())
    return registry


@dataclass
class ChemicalPlantLoop:
    """The Fig. 1 system in closed loop with the reactor physics.

    The REBOUND system and the reactor advance in lockstep: sensors read
    the reactor each round, actuator commands drive it, and
    :meth:`run` steps both.
    """

    config: ReboundConfig
    seed: int = 1
    reactor: ChemicalReactor = field(default_factory=ChemicalReactor)

    def __post_init__(self) -> None:
        topology = chemical_plant_topology()
        workload = chemical_plant_workload()
        s1 = topology.node_by_name("S1")  # pressure gauge
        s2 = topology.node_by_name("S2")  # temperature sensor
        self.traces: Dict[str, PWMTrace] = {
            name: PWMTrace(name=name) for name in ("A1", "A2", "A3", "A4")
        }

        def read_pressure(round_no: int) -> bytes:
            return encode_micro(to_micro(self.reactor.pressure_kpa))

        def read_temperature(round_no: int) -> bytes:
            return encode_micro(to_micro(self.reactor.temperature_k))

        def apply_burner(round_no: int, payload: bytes, origin: int) -> None:
            self.traces["A2"].apply(round_no, payload, origin)
            from repro.plant.fixedpoint import decode_micro

            self.reactor.set_burner(decode_micro(payload) / MICRO)

        def apply_valve(round_no: int, payload: bytes, origin: int) -> None:
            self.traces["A3"].apply(round_no, payload, origin)
            from repro.plant.fixedpoint import decode_micro

            self.reactor.set_valve(decode_micro(payload) / MICRO)

        self.system = ReboundSystem(
            topology,
            workload,
            self.config,
            registry=chemical_plant_registry(),
            sensor_reads={s1: read_pressure, s2: read_temperature},
            actuator_applies={
                topology.node_by_name("A1"): self.traces["A1"].apply,
                topology.node_by_name("A2"): apply_burner,
                topology.node_by_name("A3"): apply_valve,
                topology.node_by_name("A4"): self.traces["A4"].apply,
            },
            seed=self.seed,
        )

    def run(self, rounds: int) -> None:
        dt = self.config.round_length_us / 1e6
        for _ in range(rounds):
            self.system.run_round()
            self.reactor.step(dt)

    @property
    def round_no(self) -> int:
        return self.system.round_no
