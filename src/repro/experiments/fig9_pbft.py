"""Figure 9: supported workload, REBOUND vs PBFT.

The paper derives PBFT scheduling constraints analogous to S3.9, randomly
generates 75 workloads, schedules them on systems of N = 25..75 nodes under
either defense (packing in more tasks than fit and letting the scheduler
drop the excess), and measures the median total utilization of the admitted
tasks *without* replicas.  Normalized to PBFT, REBOUND supports at least
twice the workload, closely tracking (3f+1)/(f+1).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence

from repro.bft.replication import pbft_model, rebound_model, useful_utilization
from repro.sched.workload import WorkloadGenerator

DEFAULT_F_VALUES = (1, 2, 3)
DEFAULT_NODE_COUNTS = (25, 50, 75)
DEFAULT_WORKLOADS = 15


def run(
    f_values: Sequence[int] = DEFAULT_F_VALUES,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    workloads_per_cell: int = DEFAULT_WORKLOADS,
    seed: int = 0,
) -> List[Dict]:
    """One row per f: median useful utilization under each defense,
    normalized to PBFT, plus the analytic (3f+1)/(f+1) ratio."""
    rows: List[Dict] = []
    for f in f_values:
        pbft_utils: List[float] = []
        rebound_utils: List[float] = []
        for n in node_counts:
            for w in range(workloads_per_cell):
                workload = WorkloadGenerator(seed=seed + 1000 * f + 31 * n + w).workload(
                    # Overpack: more work than even REBOUND can admit.
                    target_utilization=n * 1.2
                )
                pbft_utils.append(
                    useful_utilization(workload, n, f, pbft_model())
                )
                rebound_utils.append(
                    useful_utilization(workload, n, f, rebound_model())
                )
        pbft_median = statistics.median(pbft_utils)
        rebound_median = statistics.median(rebound_utils)
        rows.append(
            {
                "f": f,
                "pbft_normalized": 1.0,
                "rebound_normalized": rebound_median / pbft_median
                if pbft_median
                else float("inf"),
                "analytic_ratio": (3 * f + 1) / (f + 1),
                "pbft_median_utilization": pbft_median,
                "rebound_median_utilization": rebound_median,
            }
        )
    return rows


def check_shape(rows: Sequence[Dict]) -> Dict[str, bool]:
    checks = {
        # Headline: REBOUND runs workloads at least ~2x PBFT's.
        "rebound_at_least_2x": all(r["rebound_normalized"] >= 1.8 for r in rows),
        # The ratio tracks (3f+1)/(f+1) within a modest tolerance.
        "tracks_analytic_ratio": all(
            abs(r["rebound_normalized"] - r["analytic_ratio"])
            <= 0.35 * r["analytic_ratio"]
            for r in rows
        ),
        # The ratio grows with f (toward 3 in the limit).
        "ratio_grows_with_f": all(
            a["rebound_normalized"] <= b["rebound_normalized"] + 0.25
            for a, b in zip(rows, rows[1:])
        ),
    }
    return checks
