"""Figure 7: mode-tree size and generation time vs system size.

The paper generates schedules for randomized topologies/workloads of
growing size with fmax = 1..3 and fconc = 1, measuring (a) the per-node
data size of the scheduling tree and (b) the time to compute it.  Expected
shape: both grow as sum_{i<=fmax} C(n, i) -- roughly n^fmax -- reaching a
few MB and minutes-to-an-hour at n = 200, fmax = 3.

The full tree is intractable to *schedule* exhaustively in pure Python at
n = 200 (the paper parallelizes across a machine and still takes up to 10
hours), so this driver follows the paper's structure exactly but uses the
sampling estimator of :class:`~repro.sched.modegen.ModeTreeGenerator` for
large sizes: the analytic per-layer mode counts are combined with measured
per-mode scheduling time and serialized size from a random sample of each
layer.  Small sizes are generated exactly; the benchmark cross-checks the
estimator against exact generation where both are feasible.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Sequence

from repro.net.topology import erdos_renyi_topology
from repro.sched.modegen import ModeTreeGenerator
from repro.sched.workload import WorkloadGenerator

DEFAULT_SIZES = (20, 50, 100, 200)
DEFAULT_FMAX = (1, 2, 3)
EXACT_LIMIT = 600  # generate exactly when the tree has at most this many modes


def run_cell(
    n: int,
    fmax: int,
    seed: int = 0,
    samples_per_layer: int = 6,
    workers: int = 1,
) -> Dict:
    """One (n, fmax) cell: exact when small, estimated otherwise.

    ``workers > 1`` fans each fault layer out across a process pool (the
    tree -- and hence every reported metric except wall time -- is
    identical to a serial run; see :meth:`ModeTreeGenerator.generate`).
    """
    topology = erdos_renyi_topology(n, seed=seed)
    workload = WorkloadGenerator(seed=seed).workload(
        target_utilization=max(2.0, n * 0.3)
    )
    generator = ModeTreeGenerator(
        topology, workload, fmax=fmax, fconc=1, workers=workers
    )
    total_modes = sum(generator.layer_counts())
    if total_modes <= EXACT_LIMIT:
        start = time.perf_counter()
        tree = generator.generate()
        elapsed = time.perf_counter() - start
        return {
            "n": n,
            "fmax": fmax,
            "modes": tree.num_modes,
            "size_bytes": tree.serialized_size(),
            "generation_s": elapsed,
            "method": "exact",
            "workers": workers,
        }
    stats = generator.estimate(samples_per_layer=samples_per_layer, seed=seed)
    return {
        "n": n,
        "fmax": fmax,
        "modes": stats.estimated_total_modes,
        "size_bytes": stats.estimated_size_bytes,
        "generation_s": stats.estimated_total_time_s,
        "method": "estimated",
        "workers": workers,
    }


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    fmax_values: Sequence[int] = DEFAULT_FMAX,
    seed: int = 0,
    samples_per_layer: int = 6,
    workers: int = 1,
) -> List[Dict]:
    return [
        run_cell(
            n,
            fmax,
            seed=seed,
            samples_per_layer=samples_per_layer,
            workers=workers,
        )
        for n in sizes
        for fmax in fmax_values
    ]


def check_shape(rows: Sequence[Dict]) -> Dict[str, bool]:
    """The paper's qualitative claims about Fig. 7."""
    def cell(n, fmax):
        return next(r for r in rows if r["n"] == n and r["fmax"] == fmax)

    sizes = sorted({r["n"] for r in rows})
    fmaxes = sorted({r["fmax"] for r in rows})
    big, small = sizes[-1], sizes[0]
    checks = {}
    # Mode count matches the combinatorial formula.
    for row in rows:
        expected = sum(math.comb(row["n"], i) for i in range(row["fmax"] + 1))
        checks.setdefault("mode_counts_match_formula", True)
        if row["modes"] != expected:
            checks["mode_counts_match_formula"] = False
    # Size/time grow with n and with fmax.
    if len(sizes) > 1:
        checks["size_grows_with_n"] = all(
            cell(big, f)["size_bytes"] > cell(small, f)["size_bytes"]
            for f in fmaxes
        )
    if len(fmaxes) > 1:
        checks["size_grows_with_fmax"] = all(
            cell(n, fmaxes[-1])["size_bytes"] > cell(n, fmaxes[0])["size_bytes"]
            for n in sizes
        )
        checks["time_grows_with_fmax"] = all(
            cell(n, fmaxes[-1])["generation_s"]
            > cell(n, fmaxes[0])["generation_s"]
            for n in sizes
        )
    # Paper: "the schedules are only a few MB" at the largest settings.
    biggest = cell(big, fmaxes[-1])
    checks["fits_embedded_flash"] = biggest["size_bytes"] < 512 * 1024 * 1024
    return checks
