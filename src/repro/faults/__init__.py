"""Adversarial fault injection (paper S2.5 threat model).

The adversary can cause up to fmax controllers/links to fail, at most fconc
within one recovery window.  Compromised controllers are *Byzantine*: the
behaviours here cover the attack classes the paper's evaluation exercises --
crashes, silence, selective omission, commission (random data to downstream
tasks, the Fig. 11 attack), heartbeat equivocation, the Fig. 6 worst case
(an LFD over every link of the highest-degree node), and garbage flooding.
"""

from repro.faults.adversary import (
    AdversaryBehavior,
    CorruptOutputRegistry,
    CrashBehavior,
    DelayBehavior,
    EquivocateBehavior,
    GarbageFloodBehavior,
    LFDStormBehavior,
    RandomOutputBehavior,
    SelectiveOmissionBehavior,
    SilenceBehavior,
)
from repro.faults.scenarios import FaultEvent, FaultScenario

__all__ = [
    "AdversaryBehavior",
    "CrashBehavior",
    "DelayBehavior",
    "SilenceBehavior",
    "SelectiveOmissionBehavior",
    "RandomOutputBehavior",
    "CorruptOutputRegistry",
    "EquivocateBehavior",
    "LFDStormBehavior",
    "GarbageFloodBehavior",
    "FaultEvent",
    "FaultScenario",
]
