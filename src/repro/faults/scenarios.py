"""Declarative fault scenarios: which node fails how, and when."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.faults.adversary import AdversaryBehavior


@dataclass
class FaultEvent:
    """One scheduled fault: at ``round``, install ``behavior`` on ``node``
    (or cut ``link`` when ``node`` is None)."""

    round_no: int
    node: Optional[int] = None
    behavior: Optional[AdversaryBehavior] = None
    link: Optional[Tuple[int, int]] = None


@dataclass
class FaultScenario:
    """A timetable of fault events, applied by the system runtime."""

    events: List[FaultEvent] = field(default_factory=list)

    def add_node_fault(
        self, round_no: int, node: int, behavior: AdversaryBehavior
    ) -> "FaultScenario":
        self.events.append(FaultEvent(round_no=round_no, node=node, behavior=behavior))
        return self

    def add_link_fault(self, round_no: int, a: int, b: int) -> "FaultScenario":
        self.events.append(FaultEvent(round_no=round_no, link=(a, b)))
        return self

    def due(self, round_no: int) -> List[FaultEvent]:
        return [e for e in self.events if e.round_no == round_no]

    @property
    def faulty_nodes(self) -> List[int]:
        return sorted({e.node for e in self.events if e.node is not None})

    @property
    def failed_links(self) -> List[Tuple[int, int]]:
        return sorted(
            {tuple(sorted(e.link)) for e in self.events if e.link is not None}
        )
