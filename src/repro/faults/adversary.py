"""Concrete adversary behaviours installed on compromised controllers."""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.auditing import TaskRegistry
from repro.core.forwarding import RoundMessage
from repro.core.heartbeat import HeartbeatRecord


class AdversaryBehavior:
    """Base class; a behaviour is activated on one compromised node.

    Hooks:
        * :meth:`activate` -- called once at the compromise round.
        * :meth:`on_round` -- called each round while active (for staged
          attacks like the LFD storm).
        * :meth:`tamper` -- installed as the network tamper hook; may drop
          (return None) or rewrite outgoing messages.
    """

    def __init__(self) -> None:
        self.system = None
        self.node_id: Optional[int] = None
        self.detached = False

    def activate(self, system, node_id: int) -> None:
        self.system = system
        self.node_id = node_id
        self.detached = False

    def detach(self) -> None:
        """Evict the adversary (operator repair): after this, the behaviour
        must never act again, even if a stale reference to it survives."""
        self.detached = True

    def on_round(self, round_no: int) -> None:
        """Per-round adversarial action (default: none)."""

    def tamper(
        self, round_no: int, sender: int, destination: int, payload: Any
    ) -> Optional[Any]:
        """Message rewrite hook (default: pass through)."""
        return payload


class CrashBehavior(AdversaryBehavior):
    """Fail-stop: the node is silenced entirely at the network layer."""

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        system.network.crash_node(node_id)


class SilenceBehavior(AdversaryBehavior):
    """The node keeps receiving but sends nothing (omission on all links)."""

    def tamper(self, round_no, sender, destination, payload):
        return None


class SelectiveOmissionBehavior(AdversaryBehavior):
    """Drop all messages to a chosen set of victims (targeted omission)."""

    def __init__(self, victims: Iterable[int]):
        super().__init__()
        self.victims = set(victims)

    def tamper(self, round_no, sender, destination, payload):
        return None if destination in self.victims else payload


class CorruptOutputRegistry(TaskRegistry):
    """A registry wrapper whose task outputs are attacker-controlled.

    Wraps the shared registry; ``compute`` is re-dispatched through
    corrupted logic for every task, producing deterministic-looking garbage
    (seeded PRNG) -- the Fig. 11 attack ("feeding random data to their
    downstream tasks").
    """

    def __init__(
        self,
        base: TaskRegistry,
        seed: int = 0,
        constant: Optional[bytes] = None,
        task_ids: Optional[Iterable[int]] = None,
    ):
        super().__init__()
        self._base = base
        self._seed = seed
        self._constant = constant
        self._task_ids = set(task_ids) if task_ids is not None else None

    def logic(self, task_id: int):
        base_logic = self._base.logic(task_id)
        if base_logic is None:
            return None
        if self._task_ids is not None and task_id not in self._task_ids:
            return base_logic
        return _CorruptLogic(base_logic, self._seed ^ task_id, self._constant)


class _CorruptLogic:
    def __init__(self, base, seed: int, constant: Optional[bytes]):
        self._base = base
        self._seed = seed
        self._constant = constant

    def initial_state(self) -> bytes:
        return self._base.initial_state()

    def compute(self, state, inputs, round_no):
        new_state, _output = self._base.compute(state, inputs, round_no)
        if self._constant is not None:
            return new_state, self._constant
        rng = random.Random((self._seed, round_no).__hash__())
        return new_state, bytes(rng.getrandbits(8) for _ in range(8))


class RandomOutputBehavior(AdversaryBehavior):
    """Commission fault: the node's primaries emit random data (Fig. 11).

    With ``primaries_only`` (default) the node corrupts only the tasks it
    runs as primary, keeping its replica audits honest -- the stealthiest
    variant, which only the deterministic-replay audit can catch.  With
    ``primaries_only=False`` it also audits dishonestly, emitting bogus
    PoMs that correct nodes reject (and LFD it for).
    """

    def __init__(self, seed: int = 0, constant: Optional[bytes] = None,
                 primaries_only: bool = True):
        super().__init__()
        self.seed = seed
        self.constant = constant
        self.primaries_only = primaries_only

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        node = system.node(node_id)
        task_ids = node.auditing.primaries if self.primaries_only else None
        node.auditing.registry = CorruptOutputRegistry(
            node.registry, seed=self.seed, constant=self.constant,
            task_ids=task_ids,
        )


class EquivocateBehavior(AdversaryBehavior):
    """Heartbeat equivocation: different delta counts to different neighbors.

    The compromised node re-signs its own heartbeat with a
    destination-dependent delta count, so any two neighbors comparing notes
    (or any node receiving both relayed copies) obtain a PoM.
    """

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        self._crypto = system.node(node_id).crypto
        self._variant = system.config.variant

    def tamper(self, round_no, sender, destination, payload):
        if not isinstance(payload, RoundMessage):
            return payload
        from repro.core.evidence import heartbeat_body

        records = []
        changed = False
        for rec in payload.records:
            if rec.origin == self.node_id:
                delta = destination % 3  # destination-dependent content
                body = heartbeat_body(rec.round_no, delta)
                if self._variant == "multi":
                    value = self._crypto.ms_sign(body)
                    sig = value.to_bytes(
                        self._crypto.directory.group.element_size, "big"
                    )
                else:
                    sig = self._crypto.sign(body)
                records.append(
                    HeartbeatRecord(
                        origin=rec.origin,
                        round_no=rec.round_no,
                        delta_count=delta,
                        signature=sig,
                    )
                )
                changed = True
            else:
                records.append(rec)
        aggregates = payload.aggregates
        if self._variant == "multi" and aggregates:
            # Per-destination aggregate perturbation: receivers' coverage
            # verification fails, deliveries stall, and Rule B attributes
            # the shortfall to this node's links.
            from repro.core.heartbeat import AggregateHeartbeat

            aggregates = tuple(
                AggregateHeartbeat(
                    round_no=agg.round_no,
                    sig_value=agg.sig_value + destination + 1,
                    epoch_digest=agg.epoch_digest,
                )
                for agg in aggregates
            )
            changed = True
        if not changed:
            return payload
        return RoundMessage(
            sender=payload.sender,
            round_no=payload.round_no,
            records=tuple(records),
            aggregates=aggregates,
            evidence=payload.evidence,
            packets=payload.packets,
        )


class EvidenceFloodBehavior(AdversaryBehavior):
    """Resource-exhaustion attack on the evidence layer: flood neighbors
    with *validly signed* evidence items.

    Every item verifies -- self-LFDs about the attacker's own links with
    rotating declared rounds, and self-incriminating equivocation PoMs --
    so without admission control each one costs every receiver a signature
    verification and a store slot.  The admission quotas
    (:mod:`repro.core.quotas`) bound the per-round verification budget and
    the bounded :class:`~repro.core.evidence.EvidenceSet` keeps resident
    state at two items per bucket, whatever ``rate`` is.

    The batch is memoized per round (identical to all destinations), so
    the attacker pays ``rate`` signatures per round, not per message.
    """

    def __init__(self, rate: int = 100, seed: int = 0):
        super().__init__()
        self.rate = rate
        self.seed = seed
        self._neighbors: List[int] = []
        self._memo_round: Optional[int] = None
        self._memo: Tuple[Any, ...] = ()

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        self._crypto = system.node(node_id).crypto
        topo = system.topology
        self._neighbors = [
            x for x in topo.neighbors(node_id) if x in topo.controllers
        ]

    def _batch(self, round_no: int) -> Tuple[Any, ...]:
        if round_no == self._memo_round:
            return self._memo
        from repro.core.evidence import (
            LFD,
            EquivocationPoM,
            heartbeat_body,
            lfd_body,
        )

        items: List[Any] = []
        neighbors = self._neighbors or [self.node_id + 1]
        for k in range(self.rate):
            if k % 4 == 3:
                # A self-incriminating equivocation PoM: verifies (both
                # halves carry this node's real signature) and accurately
                # accuses the attacker -- pure storage/CPU pressure.
                slot_round = round_no - (k % 7)
                body_a = heartbeat_body(slot_round, 0)
                body_b = heartbeat_body(slot_round, 1)
                items.append(
                    EquivocationPoM(
                        accused=self.node_id,
                        body_a=body_a,
                        sig_a=self._crypto.sign(body_a),
                        body_b=body_b,
                        sig_b=self._crypto.sign(body_b),
                    )
                )
            else:
                other = neighbors[k % len(neighbors)]
                declared = round_no - (k % 11)
                body = lfd_body(self.node_id, other, declared)
                lo, hi = sorted((self.node_id, other))
                items.append(
                    LFD(
                        a=lo,
                        b=hi,
                        declared_round=declared,
                        issuer=self.node_id,
                        signature=self._crypto.sign(body),
                    )
                )
        self._memo_round = round_no
        self._memo = tuple(items)
        return self._memo

    def tamper(self, round_no, sender, destination, payload):
        if not isinstance(payload, RoundMessage):
            return payload
        return RoundMessage(
            sender=payload.sender,
            round_no=payload.round_no,
            records=payload.records,
            aggregates=payload.aggregates,
            evidence=payload.evidence + self._batch(round_no),
            packets=payload.packets,
        )


class EpochSplitEquivocateBehavior(AdversaryBehavior):
    """Equivocation across *epoch digests*: split the neighborhood in two
    and feed each half a different heartbeat history.

    Even-numbered destinations see the node's true records; odd-numbered
    destinations get re-signed records with a different delta count *and*
    aggregates relabeled to a divergent epoch digest, so the two halves
    build conflicting views of the same epoch.  This is the storm variant
    that used to defeat Rule B attribution: the mismatch surfaced only as
    coverage shortfalls on correct relayers.  With epoch-aware attribution
    the receivers probe with individual records, mint a PoM against this
    node, and charge the shortfall to it alone.
    """

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        self._crypto = system.node(node_id).crypto
        self._variant = system.config.variant

    def tamper(self, round_no, sender, destination, payload):
        if not isinstance(payload, RoundMessage):
            return payload
        if destination % 2 == 0:
            return payload
        from repro.core.evidence import heartbeat_body
        from repro.core.heartbeat import AggregateHeartbeat

        records = []
        changed = False
        for rec in payload.records:
            if rec.origin == self.node_id:
                delta = rec.delta_count + 1
                body = heartbeat_body(rec.round_no, delta)
                if self._variant == "multi":
                    value = self._crypto.ms_sign(body)
                    sig = value.to_bytes(
                        self._crypto.directory.group.element_size, "big"
                    )
                else:
                    sig = self._crypto.sign(body)
                records.append(
                    HeartbeatRecord(
                        origin=rec.origin,
                        round_no=rec.round_no,
                        delta_count=delta,
                        signature=sig,
                    )
                )
                changed = True
            else:
                records.append(rec)
        aggregates = payload.aggregates
        if aggregates:
            # Relabel the epoch so the odd half of the neighborhood sees a
            # diverged history whose aggregate no longer verifies.
            aggregates = tuple(
                AggregateHeartbeat(
                    round_no=agg.round_no,
                    sig_value=agg.sig_value,
                    epoch_digest=bytes(b ^ 0xA5 for b in agg.epoch_digest),
                )
                for agg in aggregates
            )
            changed = True
        if not changed:
            return payload
        return RoundMessage(
            sender=payload.sender,
            round_no=payload.round_no,
            records=tuple(records),
            aggregates=aggregates,
            evidence=payload.evidence,
            packets=payload.packets,
        )


class LFDStormBehavior(AdversaryBehavior):
    """The Fig. 6 worst case: declare a different link failure over each of
    the node's links, one per round, to maximize mode churn and defeat
    signature aggregation."""

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[int] = []

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        topo = system.topology
        self._pending = [
            x for x in topo.neighbors(node_id) if x in topo.controllers
        ]

    def on_round(self, round_no: int) -> None:
        if not self._pending or self.system is None:
            return
        victim = self._pending.pop(0)
        node = self.system.node(self.node_id)
        node.forwarding.issue_lfd(victim)


class DelayBehavior(AdversaryBehavior):
    """Timing fault (paper S2.4: 'we also consider attacks on timing').

    The node holds every outgoing message back by ``delay_rounds``: in the
    synchronous model a late message is indistinguishable from a wrong one
    -- its round number no longer matches the round it arrives in, so
    receivers reject it and declare the link failed.  The paper's example:
    'a faulty controller could cause an explosion simply by delaying a
    (valid) command'.
    """

    def __init__(self, delay_rounds: int = 2):
        super().__init__()
        self.delay_rounds = delay_rounds
        self._held: List[Tuple[int, int, Any]] = []

    def tamper(self, round_no, sender, destination, payload):
        self._held.append((round_no + self.delay_rounds, destination, payload))
        return None  # held back now...

    def detach(self) -> None:
        super().detach()
        self._held.clear()

    def on_round(self, round_no: int) -> None:
        # ...and released late, straight into the network (bypassing the
        # tamper hook would loop, so send via a one-shot re-entry guard).
        if self.system is None:
            return
        if self.detached:
            self._held.clear()
            return
        if self.system.network.is_crashed(self.node_id):
            # A crashed node radiates nothing; holding the queue across the
            # crash would let a later repair-and-bless emit stale rounds.
            self._held.clear()
            return
        due = [h for h in self._held if h[0] <= round_no]
        self._held = [h for h in self._held if h[0] > round_no]
        network = self.system.network
        hook = network._tamper_hooks.pop(self.node_id, None)
        try:
            for _due_round, destination, payload in due:
                try:
                    network.send(self.node_id, destination, payload)
                except KeyError:
                    continue
        finally:
            if hook is not None:
                network._tamper_hooks[self.node_id] = hook


class GarbageFloodBehavior(AdversaryBehavior):
    """Send huge garbage messages to distract correct nodes; the bandwidth
    guardian (paper S2.2) bounds the damage.

    Payloads are drawn in one ``randbytes`` call and memoized per
    (round, destination): a node broadcasting on several buses tampers the
    same (round, destination) pair repeatedly, and regenerating 50 kB a
    byte at a time dominated the flood scenarios.  The bytes are a pure
    function of (seed, round, destination), pinned by a golden test so
    transcripts stay identical across refactors.
    """

    def __init__(self, size: int = 50_000, seed: int = 0):
        super().__init__()
        self.size = size
        self.seed = seed
        self._memo_round: Optional[int] = None
        self._memo: dict = {}

    def tamper(self, round_no, sender, destination, payload):
        if round_no != self._memo_round:
            self._memo_round = round_no
            self._memo.clear()
        blob = self._memo.get(destination)
        if blob is None:
            rng = random.Random(
                (self.seed * 0x9E3779B1 + round_no * 1_000_003 + destination)
                & 0xFFFFFFFFFFFFFFFF
            )
            blob = rng.randbytes(self.size)
            self._memo[destination] = blob
        return blob
