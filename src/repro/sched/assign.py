"""Per-mode task assignment (paper S3.9).

A *mode schedule* maps every task of every active flow -- plus ``fconc``
replicas of each -- to specific controllers, subject to:

1. **EDF schedulability**: each controller's utilization (primaries +
   replicas + the REBOUND protocol task) stays within its cap.  Replica
   audit work costs the same as the primary (deterministic replay re-executes
   the task, S5.5), so replicas count at full utilization.
2. **Replica anti-affinity**: no controller hosts two copies of one task.
3. **Fault avoidance**: failed controllers host nothing; failed links are
   removed from the connectivity graph.
4. **Connectivity**: an active flow's sensors, task hosts, and actuators
   must lie in one surviving component.
5. **Criticality triage**: when the full flow set is infeasible, flows are
   dropped from least to most critical until the rest fits.
6. **Transition cost**: task copies keep their parent-mode placement when
   possible (migrations are minimized -- exactly with the ILP, greedily
   otherwise).

Two builders share these checks: a greedy first-fit scheduler (used for the
large Fig. 7/9 sweeps) and an exact ILP scheduler on the from-scratch
branch-and-bound solver (the Gurobi substitute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.net.message import register_message
from repro.net.topology import Topology
from repro.sched.ilp import ILPStatus, ZeroOneILP
from repro.sched.task import Flow, Task, Workload

# A copy is (task_id, copy_index); copy 0 is the primary, 1..fconc replicas.
Copy = Tuple[int, int]


@register_message
@dataclass(frozen=True)
class ModeSchedule:
    """The schedule for one failure scenario.

    Attributes:
        failed_nodes: controllers known faulty in this mode.
        failed_links: links known faulty, as sorted (a, b) tuples.
        placements: mapping from (task_id, copy_index) to controller id.
        active_flows: flows that remain scheduled in this mode.
        dropped_flows: flows deactivated for lack of resources/connectivity.
    """

    failed_nodes: FrozenSet[int]
    failed_links: FrozenSet[Tuple[int, int]]
    placements: Dict[Copy, int]
    active_flows: FrozenSet[int]
    dropped_flows: FrozenSet[int]

    def primary_of(self, task_id: int) -> Optional[int]:
        return self.placements.get((task_id, 0))

    def replicas_of(self, task_id: int) -> List[int]:
        return [
            node
            for (tid, copy), node in sorted(self.placements.items())
            if tid == task_id and copy > 0
        ]

    def copies_on(self, node: int) -> List[Copy]:
        return sorted(c for c, n in self.placements.items() if n == node)

    def utilization_of(self, node: int, workload: Workload) -> float:
        return sum(
            workload.task(task_id).utilization
            for (task_id, _copy), host in self.placements.items()
            if host == node
        )

    def migration_cost(self, other: "ModeSchedule") -> int:
        """Number of task copies placed differently than in ``other``."""
        moved = 0
        for copy, node in self.placements.items():
            previous = other.placements.get(copy)
            if previous is not None and previous != node:
                moved += 1
        return moved


class InfeasibleSchedule(Exception):
    """No schedule exists even after dropping all but zero flows."""


class ScheduleBuilder:
    """Builds mode schedules over a topology + workload.

    Args:
        topology: the physical network (controllers host tasks).
        workload: the flow set.
        fconc: number of replicas per task (paper's concurrent-fault bound).
        utilization_cap: per-node EDF budget after reserving protocol
            overhead (paper folds REBOUND's crypto costs into WCETs; we
            reserve headroom instead, equivalent at the schedulability
            level).
        method: ``"greedy"`` or ``"ilp"``.
        pinned_primaries: task_id -> preferred controller for the primary
            copy (used by case studies to model a function's natural home,
            e.g. cruise control on the ECM); honored when feasible, ignored
            when the node is failed or full.
    """

    def __init__(
        self,
        topology: Topology,
        workload: Workload,
        fconc: int = 1,
        utilization_cap: float = 0.9,
        method: str = "greedy",
        pinned_primaries: Optional[Dict[int, int]] = None,
    ):
        if fconc < 0:
            raise ValueError("fconc must be non-negative")
        if method not in ("greedy", "ilp"):
            raise ValueError(f"unknown method {method!r}")
        self.topology = topology
        self.workload = workload
        self.fconc = fconc
        self.utilization_cap = utilization_cap
        self.method = method
        self.pinned_primaries = dict(pinned_primaries or {})

    # -- scenario geometry ------------------------------------------------

    def surviving_graph(
        self, failed_nodes: FrozenSet[int], failed_links: FrozenSet[Tuple[int, int]]
    ) -> nx.Graph:
        g = self.topology.graph().copy()
        g.remove_nodes_from(failed_nodes)
        for a, b in failed_links:
            if g.has_edge(a, b):
                g.remove_edge(a, b)
        return g

    def _controller_components(self, graph: nx.Graph) -> List[Set[int]]:
        """Connected components of the *controller* subgraph.

        Only controllers relay protocol traffic (devices are endpoints), so
        a controller whose every controller-link has failed cannot host
        tasks even if bus edges to devices survive: it can no longer
        exchange heartbeats, evidence, or audit traffic with anyone.
        """
        controllers = [c for c in self.topology.controllers if c in graph]
        sub = graph.subgraph(controllers)
        return [set(c) for c in nx.connected_components(sub)]

    def _flow_component_nodes(
        self, flow: Flow, graph: nx.Graph, available: Sequence[int]
    ) -> Optional[List[int]]:
        """Controllers usable for ``flow``.

        A flow is placeable in a controller component C iff each of its
        sensors and actuators is directly attached (surviving edge) to some
        member of C.  Components are tried largest-first (deterministic
        tie-break on smallest member id), matching the goal of keeping as
        many flows alive as possible.
        """
        endpoints = [n for n in (*flow.sensors, *flow.actuators)]
        if any(e not in graph for e in endpoints):
            return None  # an endpoint was removed (failed sensor/actuator)
        components = sorted(
            self._controller_components(graph),
            key=lambda c: (-len(c), min(c)),
        )
        for component in components:
            usable = [n for n in available if n in component]
            if not usable:
                continue
            if all(
                any(graph.has_edge(e, c) for c in component) for e in endpoints
            ):
                return usable
        return None

    # -- public API --------------------------------------------------------

    def build(
        self,
        failed_nodes: Iterable[int] = (),
        failed_links: Iterable[Tuple[int, int]] = (),
        parent: Optional[ModeSchedule] = None,
    ) -> ModeSchedule:
        """Build the schedule for a failure scenario.

        Flows are admitted most-critical-first; a flow that cannot be placed
        (capacity or connectivity) is dropped, and placement is retried with
        the remaining set.  Raises :class:`InfeasibleSchedule` only if even
        the empty flow set fails (cannot happen with >= 1 live controller).
        """
        failed_node_set = frozenset(failed_nodes)
        failed_link_set = frozenset(tuple(sorted(l)) for l in failed_links)
        graph = self.surviving_graph(failed_node_set, failed_link_set)
        available = [c for c in self.topology.controllers if c not in failed_node_set]
        if not available:
            raise InfeasibleSchedule("no surviving controllers")

        admitted: List[Flow] = []
        dropped: Set[int] = set()
        placements: Optional[Dict[Copy, int]] = None

        def try_admit(flow: Flow) -> None:
            nonlocal admitted, placements
            candidate_nodes = self._flow_component_nodes(flow, graph, available)
            if candidate_nodes is None:
                dropped.add(flow.flow_id)
                return
            trial = admitted + [flow]
            result = self._place(trial, graph, available, parent)
            if result is None:
                dropped.add(flow.flow_id)
            else:
                admitted = trial
                placements = result

        for flow in self.workload.normal_flows():
            try_admit(flow)
        # Emergency substitutes (paper S2.7): active only while the flow
        # they stand in for is dropped.
        admitted_ids = {f.flow_id for f in admitted}
        for flow in self.workload.emergency_flows():
            if flow.emergency_for in admitted_ids:
                dropped.add(flow.flow_id)
            else:
                try_admit(flow)
        if placements is None:
            placements = {}
        return ModeSchedule(
            failed_nodes=failed_node_set,
            failed_links=failed_link_set,
            placements=placements,
            active_flows=frozenset(f.flow_id for f in admitted),
            dropped_flows=frozenset(dropped),
        )

    # -- placement engines ----------------------------------------------------

    def _candidates_for(
        self, flow: Flow, graph: nx.Graph, available: Sequence[int]
    ) -> List[int]:
        nodes = self._flow_component_nodes(flow, graph, available)
        return nodes if nodes is not None else []

    def _place(
        self,
        flows: Sequence[Flow],
        graph: nx.Graph,
        available: Sequence[int],
        parent: Optional[ModeSchedule],
    ) -> Optional[Dict[Copy, int]]:
        if self.method == "ilp":
            return self._place_ilp(flows, graph, available, parent)
        return self._place_greedy(flows, graph, available, parent)

    def _copies(self, flows: Sequence[Flow]) -> List[Tuple[Copy, Task, Flow]]:
        out: List[Tuple[Copy, Task, Flow]] = []
        for flow in flows:
            for task in flow.tasks:
                for copy_idx in range(self.fconc + 1):
                    out.append(((task.task_id, copy_idx), task, flow))
        return out

    def _place_greedy(
        self,
        flows: Sequence[Flow],
        graph: nx.Graph,
        available: Sequence[int],
        parent: Optional[ModeSchedule],
    ) -> Optional[Dict[Copy, int]]:
        load: Dict[int, float] = {n: 0.0 for n in available}
        placements: Dict[Copy, int] = {}
        per_flow_candidates = {
            flow.flow_id: self._candidates_for(flow, graph, available) for flow in flows
        }
        # Place heaviest tasks first (first-fit decreasing), primaries before
        # replicas so primaries get the parent-preferred slots.
        copies = sorted(
            self._copies(flows),
            key=lambda item: (item[0][1], -item[1].utilization, item[0][0]),
        )
        for copy, task, flow in copies:
            candidates = per_flow_candidates[flow.flow_id]
            if not candidates:
                return None
            taken = {
                placements[(task.task_id, c)]
                for c in range(self.fconc + 1)
                if (task.task_id, c) in placements
            }
            preferred = parent.placements.get(copy) if parent else None
            if preferred is None and copy[1] == 0:
                preferred = self.pinned_primaries.get(task.task_id)

            def rank(node: int) -> Tuple[int, float, int]:
                # Prefer the parent's (or pinned) placement, then least-loaded.
                return (0 if node == preferred else 1, load[node], node)

            placed = False
            for node in sorted(candidates, key=rank):
                if node in taken:
                    continue
                if load[node] + task.utilization <= self.utilization_cap + 1e-9:
                    placements[copy] = node
                    load[node] += task.utilization
                    placed = True
                    break
            if not placed:
                return None
        return placements

    def _place_ilp(
        self,
        flows: Sequence[Flow],
        graph: nx.Graph,
        available: Sequence[int],
        parent: Optional[ModeSchedule],
    ) -> Optional[Dict[Copy, int]]:
        ilp = ZeroOneILP()
        copies = self._copies(flows)
        per_flow_candidates = {
            flow.flow_id: self._candidates_for(flow, graph, available) for flow in flows
        }
        var_names: Dict[Tuple[Copy, int], str] = {}
        for copy, task, flow in copies:
            candidates = per_flow_candidates[flow.flow_id]
            if not candidates:
                return None
            for node in candidates:
                preferred = parent.placements.get(copy) if parent else None
                cost = 0.0 if preferred is None or node == preferred else 1.0
                name = f"x_{copy[0]}_{copy[1]}_{node}"
                ilp.add_variable(name, cost=cost)
                var_names[(copy, node)] = name
        # Each copy placed exactly once.
        for copy, task, flow in copies:
            coeffs = {
                var_names[(copy, node)]: 1.0
                for node in per_flow_candidates[flow.flow_id]
            }
            ilp.add_constraint(coeffs, "==", 1.0)
        # Anti-affinity: copies of one task on distinct nodes.
        by_task: Dict[int, List[Tuple[Copy, Task, Flow]]] = {}
        for item in copies:
            by_task.setdefault(item[0][0], []).append(item)
        for task_id, items in by_task.items():
            flow = items[0][2]
            for node in per_flow_candidates[flow.flow_id]:
                coeffs = {var_names[(item[0], node)]: 1.0 for item in items}
                ilp.add_constraint(coeffs, "<=", 1.0)
        # Capacity per node.
        for node in available:
            coeffs = {}
            for copy, task, flow in copies:
                if node in per_flow_candidates[flow.flow_id]:
                    coeffs[var_names[(copy, node)]] = task.utilization
            if coeffs:
                ilp.add_constraint(coeffs, "<=", self.utilization_cap)
        solution = ilp.solve(time_limit_s=20.0)
        if solution.status == ILPStatus.INFEASIBLE or not solution.assignment:
            return None
        placements: Dict[Copy, int] = {}
        for (copy, node), name in var_names.items():
            if solution.assignment.get(name) == 1:
                placements[copy] = node
        return placements
