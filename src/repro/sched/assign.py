"""Per-mode task assignment (paper S3.9).

A *mode schedule* maps every task of every active flow -- plus ``fconc``
replicas of each -- to specific controllers, subject to:

1. **EDF schedulability**: each controller's utilization (primaries +
   replicas + the REBOUND protocol task) stays within its cap.  Replica
   audit work costs the same as the primary (deterministic replay re-executes
   the task, S5.5), so replicas count at full utilization.
2. **Replica anti-affinity**: no controller hosts two copies of one task.
3. **Fault avoidance**: failed controllers host nothing; failed links are
   removed from the connectivity graph.
4. **Connectivity**: an active flow's sensors, task hosts, and actuators
   must lie in one surviving component.
5. **Criticality triage**: when the full flow set is infeasible, flows are
   dropped from least to most critical until the rest fits.
6. **Transition cost**: task copies keep their parent-mode placement when
   possible (migrations are minimized -- exactly with the ILP, greedily
   otherwise).

Two builders share these checks: a greedy first-fit scheduler (used for the
large Fig. 7/9 sweeps) and an exact ILP scheduler on the from-scratch
branch-and-bound solver (the Gurobi substitute).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.net.message import register_message
from repro.net.topology import Topology
from repro.sched.ilp import ILPStatus, ZeroOneILP
from repro.sched.task import Flow, Task, Workload

# A copy is (task_id, copy_index); copy 0 is the primary, 1..fconc replicas.
Copy = Tuple[int, int]

#: Process-wide placement-memo counters (surfaced via repro.analysis.metrics).
_PLACE_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def place_memo_stats() -> Dict[str, int]:
    """A copy of the process-wide placement-memo counters."""
    return dict(_PLACE_STATS)


def reset_place_memo_stats() -> None:
    for key in _PLACE_STATS:
        _PLACE_STATS[key] = 0


@register_message
@dataclass(frozen=True)
class ModeSchedule:
    """The schedule for one failure scenario.

    Attributes:
        failed_nodes: controllers known faulty in this mode.
        failed_links: links known faulty, as sorted (a, b) tuples.
        placements: mapping from (task_id, copy_index) to controller id.
        active_flows: flows that remain scheduled in this mode.
        dropped_flows: flows deactivated for lack of resources/connectivity.
    """

    failed_nodes: FrozenSet[int]
    failed_links: FrozenSet[Tuple[int, int]]
    placements: Dict[Copy, int]
    active_flows: FrozenSet[int]
    dropped_flows: FrozenSet[int]

    def primary_of(self, task_id: int) -> Optional[int]:
        return self.placements.get((task_id, 0))

    def replicas_of(self, task_id: int) -> List[int]:
        return [
            node
            for (tid, copy), node in sorted(self.placements.items())
            if tid == task_id and copy > 0
        ]

    def copies_on(self, node: int) -> List[Copy]:
        return sorted(c for c, n in self.placements.items() if n == node)

    def utilization_of(self, node: int, workload: Workload) -> float:
        return sum(
            workload.task(task_id).utilization
            for (task_id, _copy), host in self.placements.items()
            if host == node
        )

    def migration_cost(self, other: "ModeSchedule") -> int:
        """Number of task copies placed differently than in ``other``."""
        moved = 0
        for copy, node in self.placements.items():
            previous = other.placements.get(copy)
            if previous is not None and previous != node:
                moved += 1
        return moved


class InfeasibleSchedule(Exception):
    """No schedule exists even after dropping all but zero flows."""


class ScheduleBuilder:
    """Builds mode schedules over a topology + workload.

    Args:
        topology: the physical network (controllers host tasks).
        workload: the flow set.
        fconc: number of replicas per task (paper's concurrent-fault bound).
        utilization_cap: per-node EDF budget after reserving protocol
            overhead (paper folds REBOUND's crypto costs into WCETs; we
            reserve headroom instead, equivalent at the schedulability
            level).
        method: ``"greedy"`` or ``"ilp"``.
        pinned_primaries: task_id -> preferred controller for the primary
            copy (used by case studies to model a function's natural home,
            e.g. cruise control on the ECM); honored when feasible, ignored
            when the node is failed or full.
        ilp_warm_start: seed the ILP with the greedy placement as the
            initial incumbent (prunes from node one; solves with a
            provably-at-bound incumbent skip the search entirely).
            Objective-preserving but may return a different equally-optimal
            assignment than a cold solve, so it is opt-in.
        ilp_batch_admit: for the exact ILP method, admit the full normal
            flow set with a single solve when it is feasible instead of one
            solve per flow (the exact solver makes the incremental
            most-critical-first admission loop redundant in that case:
            every prefix of a feasible set is feasible, so the loop admits
            everything and its final solve equals the batch solve).
            Result-identical; opt-in alongside ``ilp_warm_start``.
        ilp_node_budget: deterministic branch-and-bound node budget passed
            to every ILP solve; makes solver outcomes (and thus mode
            trees) machine-independent, unlike the wall-clock limit.
        ilp_time_limit_s: wall-clock safety net behind the node budget.
        place_memo: memoize placement subproblems under a canonical key
            (flow set, per-flow candidate lists, parent placements).
            Scenarios whose failures do not disturb that structure --
            symmetric siblings, pruned-link modes, repeated on-demand
            lookups -- reuse the solved placement instead of re-solving.
            Exactly result-preserving (the key captures every input the
            placement engines read), so it defaults on.
    """

    #: Bounded size of the per-builder placement memo.
    PLACE_MEMO_MAX = 20_000

    def __init__(
        self,
        topology: Topology,
        workload: Workload,
        fconc: int = 1,
        utilization_cap: float = 0.9,
        method: str = "greedy",
        pinned_primaries: Optional[Dict[int, int]] = None,
        ilp_warm_start: bool = False,
        ilp_batch_admit: bool = False,
        ilp_node_budget: Optional[int] = 1_000_000,
        ilp_time_limit_s: float = 20.0,
        place_memo: bool = True,
    ):
        if fconc < 0:
            raise ValueError("fconc must be non-negative")
        if method not in ("greedy", "ilp"):
            raise ValueError(f"unknown method {method!r}")
        self.topology = topology
        self.workload = workload
        self.fconc = fconc
        self.utilization_cap = utilization_cap
        self.method = method
        self.pinned_primaries = dict(pinned_primaries or {})
        self.ilp_warm_start = ilp_warm_start
        self.ilp_batch_admit = ilp_batch_admit
        self.ilp_node_budget = ilp_node_budget
        self.ilp_time_limit_s = ilp_time_limit_s
        self.place_memo = place_memo
        self._place_cache: "OrderedDict[Tuple, Optional[Dict[Copy, int]]]" = (
            OrderedDict()
        )
        #: Per-builder counters; mirrored into the process-wide stats so
        #: parallel modegen workers can ship deltas back to the parent.
        self.counters: Dict[str, int] = {
            "builds": 0,
            "place_calls": 0,
            "place_memo_hits": 0,
            "ilp_solves": 0,
            "ilp_nodes_explored": 0,
            "ilp_warm_proved_optimal": 0,
            "ilp_budget_trips": 0,
        }

    # -- scenario geometry ------------------------------------------------

    def surviving_graph(
        self, failed_nodes: FrozenSet[int], failed_links: FrozenSet[Tuple[int, int]]
    ) -> nx.Graph:
        g = self.topology.graph().copy()
        g.remove_nodes_from(failed_nodes)
        for a, b in failed_links:
            if g.has_edge(a, b):
                g.remove_edge(a, b)
        return g

    def _controller_components(self, graph: nx.Graph) -> List[Set[int]]:
        """Connected components of the *controller* subgraph.

        Only controllers relay protocol traffic (devices are endpoints), so
        a controller whose every controller-link has failed cannot host
        tasks even if bus edges to devices survive: it can no longer
        exchange heartbeats, evidence, or audit traffic with anyone.
        """
        controllers = [c for c in self.topology.controllers if c in graph]
        sub = graph.subgraph(controllers)
        return [set(c) for c in nx.connected_components(sub)]

    def _flow_component_nodes(
        self, flow: Flow, graph: nx.Graph, available: Sequence[int]
    ) -> Optional[List[int]]:
        """Controllers usable for ``flow``.

        A flow is placeable in a controller component C iff each of its
        sensors and actuators is directly attached (surviving edge) to some
        member of C.  Components are tried largest-first (deterministic
        tie-break on smallest member id), matching the goal of keeping as
        many flows alive as possible.
        """
        endpoints = [n for n in (*flow.sensors, *flow.actuators)]
        if any(e not in graph for e in endpoints):
            return None  # an endpoint was removed (failed sensor/actuator)
        components = sorted(
            self._controller_components(graph),
            key=lambda c: (-len(c), min(c)),
        )
        for component in components:
            usable = [n for n in available if n in component]
            if not usable:
                continue
            if all(
                any(graph.has_edge(e, c) for c in component) for e in endpoints
            ):
                return usable
        return None

    # -- public API --------------------------------------------------------

    def build(
        self,
        failed_nodes: Iterable[int] = (),
        failed_links: Iterable[Tuple[int, int]] = (),
        parent: Optional[ModeSchedule] = None,
    ) -> ModeSchedule:
        """Build the schedule for a failure scenario.

        Flows are admitted most-critical-first; a flow that cannot be placed
        (capacity or connectivity) is dropped, and placement is retried with
        the remaining set.  Raises :class:`InfeasibleSchedule` only if even
        the empty flow set fails (cannot happen with >= 1 live controller).
        """
        failed_node_set = frozenset(failed_nodes)
        failed_link_set = frozenset(tuple(sorted(l)) for l in failed_links)
        graph = self.surviving_graph(failed_node_set, failed_link_set)
        available = [c for c in self.topology.controllers if c not in failed_node_set]
        if not available:
            raise InfeasibleSchedule("no surviving controllers")
        self.counters["builds"] += 1

        # Per-flow candidate sets depend only on the scenario, not on the
        # admitted prefix; compute each once per build instead of once per
        # admission trial (connected components are the dominant cost).
        candidate_cache: Dict[int, Optional[List[int]]] = {}

        def candidates(flow: Flow) -> Optional[List[int]]:
            if flow.flow_id not in candidate_cache:
                candidate_cache[flow.flow_id] = self._flow_component_nodes(
                    flow, graph, available
                )
            return candidate_cache[flow.flow_id]

        admitted: List[Flow] = []
        dropped: Set[int] = set()
        placements: Optional[Dict[Copy, int]] = None

        def try_admit(flow: Flow) -> None:
            nonlocal admitted, placements
            if candidates(flow) is None:
                dropped.add(flow.flow_id)
                return
            trial = admitted + [flow]
            result = self._place(trial, graph, available, parent, candidate_cache)
            if result is None:
                dropped.add(flow.flow_id)
            else:
                admitted = trial
                placements = result

        normal = self.workload.normal_flows()
        batch_done = False
        if self.method == "ilp" and self.ilp_batch_admit:
            placeable = [f for f in normal if candidates(f) is not None]
            result = (
                self._place(placeable, graph, available, parent, candidate_cache)
                if placeable
                else None
            )
            if result is not None:
                # The exact solver admits every placeable flow anyway when
                # the full set fits (any prefix of a feasible set is
                # feasible), so one solve replaces the per-flow loop and
                # produces the identical final placement.
                dropped.update(
                    f.flow_id for f in normal if candidates(f) is None
                )
                admitted = placeable
                placements = result
                batch_done = True
        if not batch_done:
            for flow in normal:
                try_admit(flow)
        # Emergency substitutes (paper S2.7): active only while the flow
        # they stand in for is dropped.
        admitted_ids = {f.flow_id for f in admitted}
        for flow in self.workload.emergency_flows():
            if flow.emergency_for in admitted_ids:
                dropped.add(flow.flow_id)
            else:
                try_admit(flow)
        if placements is None:
            placements = {}
        return ModeSchedule(
            failed_nodes=failed_node_set,
            failed_links=failed_link_set,
            placements=placements,
            active_flows=frozenset(f.flow_id for f in admitted),
            dropped_flows=frozenset(dropped),
        )

    # -- placement engines ----------------------------------------------------

    def _candidates_for(
        self, flow: Flow, graph: nx.Graph, available: Sequence[int]
    ) -> List[int]:
        nodes = self._flow_component_nodes(flow, graph, available)
        return nodes if nodes is not None else []

    def _resolve_candidates(
        self,
        flows: Sequence[Flow],
        graph: nx.Graph,
        available: Sequence[int],
        candidate_cache: Optional[Dict[int, Optional[List[int]]]],
    ) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for flow in flows:
            cached = (
                candidate_cache.get(flow.flow_id)
                if candidate_cache is not None
                else None
            )
            if cached is None:
                cached = self._candidates_for(flow, graph, available)
            out[flow.flow_id] = cached
        return out

    def _place_key(
        self,
        flows: Sequence[Flow],
        parent: Optional[ModeSchedule],
        per_flow_candidates: Dict[int, List[int]],
    ) -> Tuple:
        """Canonical key capturing every input the placement engines read.

        Two placement subproblems with identical flow sets, identical
        per-flow candidate lists, and identical parent placements for the
        copies being placed are the same instance -- whatever failure
        scenarios produced them -- so the solved placement can be reused.
        """
        prefs: Tuple = ()
        if parent is not None:
            prefs = tuple(
                parent.placements.get((task.task_id, copy_idx))
                for flow in flows
                for task in flow.tasks
                for copy_idx in range(self.fconc + 1)
            )
        return (
            self.method,
            tuple(f.flow_id for f in flows),
            tuple(tuple(per_flow_candidates[f.flow_id]) for f in flows),
            prefs,
        )

    def _place(
        self,
        flows: Sequence[Flow],
        graph: nx.Graph,
        available: Sequence[int],
        parent: Optional[ModeSchedule],
        candidate_cache: Optional[Dict[int, Optional[List[int]]]] = None,
    ) -> Optional[Dict[Copy, int]]:
        self.counters["place_calls"] += 1
        per_flow_candidates = self._resolve_candidates(
            flows, graph, available, candidate_cache
        )
        key: Optional[Tuple] = None
        if self.place_memo:
            key = self._place_key(flows, parent, per_flow_candidates)
            if key in self._place_cache:
                self._place_cache.move_to_end(key)
                self.counters["place_memo_hits"] += 1
                _PLACE_STATS["hits"] += 1
                return self._place_cache[key]
            _PLACE_STATS["misses"] += 1
        if self.method == "ilp":
            result = self._place_ilp(flows, available, parent, per_flow_candidates)
        else:
            result = self._place_greedy(flows, available, parent, per_flow_candidates)
        if key is not None:
            self._place_cache[key] = result
            while len(self._place_cache) > self.PLACE_MEMO_MAX:
                self._place_cache.popitem(last=False)
                _PLACE_STATS["evictions"] += 1
        return result

    def _copies(self, flows: Sequence[Flow]) -> List[Tuple[Copy, Task, Flow]]:
        out: List[Tuple[Copy, Task, Flow]] = []
        for flow in flows:
            for task in flow.tasks:
                for copy_idx in range(self.fconc + 1):
                    out.append(((task.task_id, copy_idx), task, flow))
        return out

    def _place_greedy(
        self,
        flows: Sequence[Flow],
        available: Sequence[int],
        parent: Optional[ModeSchedule],
        per_flow_candidates: Dict[int, List[int]],
    ) -> Optional[Dict[Copy, int]]:
        load: Dict[int, float] = {n: 0.0 for n in available}
        placements: Dict[Copy, int] = {}
        # Place heaviest tasks first (first-fit decreasing), primaries before
        # replicas so primaries get the parent-preferred slots.
        copies = sorted(
            self._copies(flows),
            key=lambda item: (item[0][1], -item[1].utilization, item[0][0]),
        )
        for copy, task, flow in copies:
            candidates = per_flow_candidates[flow.flow_id]
            if not candidates:
                return None
            taken = {
                placements[(task.task_id, c)]
                for c in range(self.fconc + 1)
                if (task.task_id, c) in placements
            }
            preferred = parent.placements.get(copy) if parent else None
            if preferred is None and copy[1] == 0:
                preferred = self.pinned_primaries.get(task.task_id)

            def rank(node: int) -> Tuple[int, float, int]:
                # Prefer the parent's (or pinned) placement, then least-loaded.
                return (0 if node == preferred else 1, load[node], node)

            placed = False
            for node in sorted(candidates, key=rank):
                if node in taken:
                    continue
                if load[node] + task.utilization <= self.utilization_cap + 1e-9:
                    placements[copy] = node
                    load[node] += task.utilization
                    placed = True
                    break
            if not placed:
                return None
        return placements

    def _place_ilp(
        self,
        flows: Sequence[Flow],
        available: Sequence[int],
        parent: Optional[ModeSchedule],
        per_flow_candidates: Dict[int, List[int]],
    ) -> Optional[Dict[Copy, int]]:
        ilp = ZeroOneILP()
        copies = self._copies(flows)
        var_names: Dict[Tuple[Copy, int], str] = {}
        for copy, task, flow in copies:
            candidates = per_flow_candidates[flow.flow_id]
            if not candidates:
                return None
            for node in candidates:
                preferred = parent.placements.get(copy) if parent else None
                cost = 0.0 if preferred is None or node == preferred else 1.0
                name = f"x_{copy[0]}_{copy[1]}_{node}"
                ilp.add_variable(name, cost=cost)
                var_names[(copy, node)] = name
        # Each copy placed exactly once.
        for copy, task, flow in copies:
            coeffs = {
                var_names[(copy, node)]: 1.0
                for node in per_flow_candidates[flow.flow_id]
            }
            ilp.add_constraint(coeffs, "==", 1.0)
        # Anti-affinity: copies of one task on distinct nodes.
        by_task: Dict[int, List[Tuple[Copy, Task, Flow]]] = {}
        for item in copies:
            by_task.setdefault(item[0][0], []).append(item)
        for task_id, items in by_task.items():
            flow = items[0][2]
            for node in per_flow_candidates[flow.flow_id]:
                coeffs = {var_names[(item[0], node)]: 1.0 for item in items}
                ilp.add_constraint(coeffs, "<=", 1.0)
        # Capacity per node.
        for node in available:
            coeffs = {}
            for copy, task, flow in copies:
                if node in per_flow_candidates[flow.flow_id]:
                    coeffs[var_names[(copy, node)]] = task.utilization
            if coeffs:
                ilp.add_constraint(coeffs, "<=", self.utilization_cap)
        warm_start: Optional[Dict[str, int]] = None
        if self.ilp_warm_start:
            greedy = self._place_greedy(
                flows, available, parent, per_flow_candidates
            )
            if greedy is not None:
                warm_start = {
                    name: 1 if greedy.get(copy) == node else 0
                    for (copy, node), name in var_names.items()
                }
        self.counters["ilp_solves"] += 1
        solution = ilp.solve(
            time_limit_s=self.ilp_time_limit_s,
            max_nodes=self.ilp_node_budget,
            warm_start=warm_start,
        )
        self.counters["ilp_nodes_explored"] += solution.nodes_explored
        if warm_start is not None and solution.nodes_explored == 0:
            self.counters["ilp_warm_proved_optimal"] += 1
        if solution.stopped_by is not None:
            self.counters["ilp_budget_trips"] += 1
        if solution.status == ILPStatus.INFEASIBLE or not solution.assignment:
            return None
        placements: Dict[Copy, int] = {}
        for (copy, node), name in var_names.items():
            if solution.assignment.get(name) == 1:
                placements[copy] = node
        return placements

from repro.obs import registry as _telemetry

_telemetry.register("place_memo", place_memo_stats, reset_place_memo_stats)
