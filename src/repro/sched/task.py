"""Task, flow, and workload model (paper S2.3, Fig. 1b/c).

A *flow* originates at sensors, crosses controller tasks, and terminates at
actuators.  Each task is periodic with a known worst-case execution time
(WCET) and deadline; each flow carries a criticality level used to triage
when resources run out.  Times are integer microseconds so that wire
encodings are canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.net.message import register_message

CRITICALITY_LOW = 1
CRITICALITY_MEDIUM = 2
CRITICALITY_HIGH = 3
CRITICALITY_VERY_HIGH = 4

CRITICALITY_NAMES = {
    CRITICALITY_LOW: "low",
    CRITICALITY_MEDIUM: "medium",
    CRITICALITY_HIGH: "high",
    CRITICALITY_VERY_HIGH: "very-high",
}

MS = 1000  # microseconds per millisecond


@register_message
@dataclass(frozen=True)
class Task:
    """A periodic task.

    Attributes:
        task_id: globally unique identifier.
        flow_id: the flow this task belongs to.
        name: human-readable label (e.g. ``"T3"``).
        period_us: release period in microseconds.
        wcet_us: worst-case execution time in microseconds.
        deadline_us: relative deadline in microseconds (<= period for
            constrained-deadline tasks; == period is the common CPS case).
    """

    task_id: int
    flow_id: int
    name: str
    period_us: int
    wcet_us: int
    deadline_us: int

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError(f"task {self.name}: period must be positive")
        if not 0 < self.wcet_us <= self.period_us:
            raise ValueError(f"task {self.name}: WCET must be in (0, period]")
        if not 0 < self.deadline_us <= self.period_us:
            raise ValueError(f"task {self.name}: deadline must be in (0, period]")

    @property
    def utilization(self) -> float:
        return self.wcet_us / self.period_us

    @property
    def implicit_deadline(self) -> bool:
        return self.deadline_us == self.period_us


@register_message
@dataclass(frozen=True)
class Flow:
    """A data flow: a DAG of tasks between sensors and actuators.

    Attributes:
        flow_id: unique identifier.
        name: label (e.g. ``"burner-control"``).
        criticality: one of the CRITICALITY_* levels; higher is dropped last.
        tasks: the flow's tasks in topological order.
        edges: precedence edges between task ids (empty for a single task;
            chain edges for pipeline flows; arbitrary DAG edges allowed --
            the paper notes REBOUND supports DAG flows where Cascade only
            supported chains).
        sensors: node ids of the originating sensors.
        actuators: node ids of the terminating actuators.
        emergency_for: if >= 0, this flow is an *emergency substitute*
            (paper S2.7): it stays inactive while the referenced flow runs,
            and is scheduled only when that flow has to be dropped -- e.g.
            a partition holding the burner but not the temperature sensor
            schedules a task that shuts the burner off.
    """

    flow_id: int
    name: str
    criticality: int
    tasks: Tuple[Task, ...]
    edges: Tuple[Tuple[int, int], ...] = ()
    sensors: Tuple[int, ...] = ()
    actuators: Tuple[int, ...] = ()
    emergency_for: int = -1

    def __post_init__(self) -> None:
        task_ids = {t.task_id for t in self.tasks}
        if len(task_ids) != len(self.tasks):
            raise ValueError(f"flow {self.name}: duplicate task ids")
        for a, b in self.edges:
            if a not in task_ids or b not in task_ids:
                raise ValueError(f"flow {self.name}: edge ({a},{b}) references unknown task")
        if self._has_cycle():
            raise ValueError(f"flow {self.name}: precedence edges form a cycle")

    def _has_cycle(self) -> bool:
        adj: Dict[int, List[int]] = {t.task_id: [] for t in self.tasks}
        indeg: Dict[int, int] = {t.task_id: 0 for t in self.tasks}
        for a, b in self.edges:
            adj[a].append(b)
            indeg[b] += 1
        queue = [t for t, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for nxt in adj[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        return seen != len(self.tasks)

    @property
    def utilization(self) -> float:
        return sum(t.utilization for t in self.tasks)

    def upstream_of(self, task_id: int) -> List[int]:
        return sorted(a for a, b in self.edges if b == task_id)

    def downstream_of(self, task_id: int) -> List[int]:
        return sorted(b for a, b in self.edges if a == task_id)

    def entry_tasks(self) -> List[Task]:
        """Tasks with no upstream task (fed directly by sensors)."""
        targets = {b for _, b in self.edges}
        return [t for t in self.tasks if t.task_id not in targets]

    def exit_tasks(self) -> List[Task]:
        """Tasks with no downstream task (feeding actuators)."""
        sources = {a for a, _ in self.edges}
        return [t for t in self.tasks if t.task_id not in sources]

    def is_chain(self) -> bool:
        return all(
            len(self.upstream_of(t.task_id)) <= 1 and len(self.downstream_of(t.task_id)) <= 1
            for t in self.tasks
        )


class Workload:
    """A collection of flows with unique task ids."""

    def __init__(self, flows: Iterable[Flow]):
        self.flows: Dict[int, Flow] = {}
        self._task_index: Dict[int, Tuple[Flow, Task]] = {}
        for flow in flows:
            if flow.flow_id in self.flows:
                raise ValueError(f"duplicate flow id {flow.flow_id}")
            self.flows[flow.flow_id] = flow
            for task in flow.tasks:
                if task.task_id in self._task_index:
                    raise ValueError(f"duplicate task id {task.task_id}")
                self._task_index[task.task_id] = (flow, task)

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def tasks(self) -> List[Task]:
        return [entry[1] for _, entry in sorted(self._task_index.items())]

    def task(self, task_id: int) -> Task:
        return self._task_index[task_id][1]

    def flow_of(self, task_id: int) -> Flow:
        return self._task_index[task_id][0]

    @property
    def total_utilization(self) -> float:
        return sum(flow.utilization for flow in self.flows.values())

    def flows_by_criticality(self) -> List[Flow]:
        """Flows from most to least critical (drop order is the reverse)."""
        return sorted(
            self.flows.values(), key=lambda f: (-f.criticality, f.flow_id)
        )

    def normal_flows(self) -> List[Flow]:
        """Non-emergency flows, most critical first."""
        return [f for f in self.flows_by_criticality() if f.emergency_for < 0]

    def emergency_flows(self) -> List[Flow]:
        """Emergency substitutes, most critical first."""
        return [f for f in self.flows_by_criticality() if f.emergency_for >= 0]

    def subset(self, flow_ids: Iterable[int]) -> "Workload":
        keep = set(flow_ids)
        return Workload(f for fid, f in sorted(self.flows.items()) if fid in keep)


def chemical_plant_workload(
    sensors: Sequence[int] = (4, 5),
    actuators: Sequence[int] = (6, 7, 8, 9),
) -> Workload:
    """The Fig. 1(b/c) workload: 8 tasks in 4 flows, 40 ms period, 8 ms WCET.

    Flows: pressure alarm (very high, T1), burner control (high, T2-T3),
    valve control (medium, T4-T5), monitor (low, T6-T7-T8).  Sensor and
    actuator node ids default to the :func:`chemical_plant_topology` layout.
    """
    period = 40 * MS
    wcet = 8 * MS

    def mk(task_id: int, flow_id: int) -> Task:
        return Task(
            task_id=task_id,
            flow_id=flow_id,
            name=f"T{task_id}",
            period_us=period,
            wcet_us=wcet,
            deadline_us=period,
        )

    s_pressure, s_temperature = sensors
    a_alarm, a_burner, a_valve, a_monitor = actuators
    flows = [
        Flow(
            flow_id=0,
            name="pressure-alarm",
            criticality=CRITICALITY_VERY_HIGH,
            tasks=(mk(1, 0),),
            sensors=(s_pressure,),
            actuators=(a_alarm,),
        ),
        Flow(
            flow_id=1,
            name="burner-control",
            criticality=CRITICALITY_HIGH,
            tasks=(mk(2, 1), mk(3, 1)),
            edges=((2, 3),),
            sensors=(s_temperature,),
            actuators=(a_burner,),
        ),
        Flow(
            flow_id=2,
            name="valve-control",
            criticality=CRITICALITY_MEDIUM,
            tasks=(mk(4, 2), mk(5, 2)),
            edges=((4, 5),),
            sensors=(s_pressure,),
            actuators=(a_valve,),
        ),
        Flow(
            flow_id=3,
            name="monitor",
            criticality=CRITICALITY_LOW,
            tasks=(mk(6, 3), mk(7, 3), mk(8, 3)),
            edges=((6, 7), (7, 8)),
            sensors=(s_pressure, s_temperature),
            actuators=(a_monitor,),
        ),
    ]
    return Workload(flows)
