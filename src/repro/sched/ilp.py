"""A from-scratch 0-1 integer linear program solver (Gurobi substitute).

The paper uses Gurobi to find per-mode schedules (S3.9, S4).  Gurobi is
proprietary and unavailable here, so we implement implicit enumeration
(Balas-style branch-and-bound) for binary programs:

    minimize    c . x
    subject to  A x {<=, >=, ==} b,   x in {0,1}^n

Pruning uses (a) constraint-interval propagation -- a partial assignment is
abandoned as soon as some constraint cannot be satisfied by any completion --
and (b) an optimistic objective bound -- the sum of all negative remaining
costs.  Variables are branched in decreasing |cost| order, trying the
cost-improving value first, so good incumbents are found early.

This is exact and fast enough for the per-mode assignment instances the
mode-tree generator produces (tens of binaries); the large Fig. 7/9 sweeps
use the greedy scheduler in :mod:`repro.sched.assign` with identical
feasibility checks.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class ILPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    TIME_LIMIT = "time-limit"


@dataclass
class ILPSolution:
    """Result of a solve: status, assignment by variable name, objective."""

    status: ILPStatus
    assignment: Dict[str, int]
    objective: Optional[float]
    nodes_explored: int = 0

    @property
    def feasible(self) -> bool:
        return self.objective is not None


@dataclass
class _Constraint:
    coeffs: Dict[int, float]
    sense: str  # "<=", ">=", "=="
    bound: float


class ZeroOneILP:
    """A binary integer program.

    Usage::

        ilp = ZeroOneILP()
        x = ilp.add_variable("x", cost=2.0)
        y = ilp.add_variable("y", cost=-1.0)
        ilp.add_constraint({"x": 1, "y": 1}, "<=", 1)
        solution = ilp.solve()
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._costs: List[float] = []
        self._constraints: List[_Constraint] = []

    # -- model building ------------------------------------------------------

    def add_variable(self, name: str, cost: float = 0.0) -> str:
        if name in self._index:
            raise ValueError(f"duplicate variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._costs.append(float(cost))
        return name

    def add_constraint(
        self, coeffs: Dict[str, float], sense: str, bound: float
    ) -> None:
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {sense!r}")
        resolved: Dict[int, float] = {}
        for name, coeff in coeffs.items():
            if name not in self._index:
                raise ValueError(f"unknown variable {name!r}")
            if coeff != 0:
                resolved[self._index[name]] = float(coeff)
        self._constraints.append(_Constraint(resolved, sense, float(bound)))

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- solving ----------------------------------------------------------------

    def solve(self, time_limit_s: float = 30.0) -> ILPSolution:
        """Exact branch-and-bound solve (minimization)."""
        n = len(self._names)
        # Normalize constraints to <= form; keep == as a pair.
        norm: List[Tuple[Dict[int, float], float]] = []
        for con in self._constraints:
            if con.sense in ("<=", "=="):
                norm.append((con.coeffs, con.bound))
            if con.sense in (">=", "=="):
                norm.append(({i: -c for i, c in con.coeffs.items()}, -con.bound))

        # Branch order: decreasing |cost|, then most-constrained.
        order = sorted(range(n), key=lambda i: -abs(self._costs[i]))
        position = {var: pos for pos, var in enumerate(order)}

        # For propagation: per-constraint running LHS and the min possible
        # remaining contribution (sum of negative coeffs of unassigned vars).
        con_lhs = [0.0] * len(norm)
        con_min_remaining = [
            sum(c for c in coeffs.values() if c < 0) for coeffs, _ in norm
        ]
        # Optimistic objective: sum of negative costs of unassigned vars.
        obj_min_remaining = sum(c for c in self._costs if c < 0)

        # Var -> list of (constraint index, coeff).
        var_cons: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for ci, (coeffs, _b) in enumerate(norm):
            for var, coeff in coeffs.items():
                var_cons[var].append((ci, coeff))

        assignment = [0] * n
        best_obj: Optional[float] = None
        best_assignment: Optional[List[int]] = None
        nodes = 0
        deadline = time.monotonic() + time_limit_s
        timed_out = False

        def feasible_now() -> bool:
            return all(
                con_lhs[ci] + con_min_remaining[ci] <= bound + 1e-9
                for ci, (_c, bound) in enumerate(norm)
            )

        def dfs(depth: int, current_obj: float) -> None:
            nonlocal best_obj, best_assignment, nodes, obj_min_remaining, timed_out
            nodes += 1
            if timed_out or (nodes % 1024 == 0 and time.monotonic() > deadline):
                timed_out = True
                return
            if best_obj is not None and current_obj + obj_min_remaining >= best_obj - 1e-12:
                return
            if not feasible_now():
                return
            if depth == n:
                if best_obj is None or current_obj < best_obj - 1e-12:
                    best_obj = current_obj
                    best_assignment = assignment.copy()
                return
            var = order[depth]
            cost = self._costs[var]
            values = (1, 0) if cost < 0 else (0, 1)
            for value in values:
                assignment[var] = value
                delta_obj = cost * value
                saved_minrem: List[Tuple[int, float]] = []
                for ci, coeff in var_cons[var]:
                    saved_minrem.append((ci, con_min_remaining[ci]))
                    con_lhs[ci] += coeff * value
                    if coeff < 0:
                        con_min_remaining[ci] -= coeff
                saved_obj_minrem = obj_min_remaining
                if cost < 0:
                    obj_min_remaining -= cost
                dfs(depth + 1, current_obj + delta_obj)
                obj_min_remaining = saved_obj_minrem
                for (ci, coeff), (_ci2, minrem) in zip(var_cons[var], saved_minrem):
                    con_lhs[ci] -= coeff * assignment[var]
                    con_min_remaining[ci] = minrem
                if timed_out:
                    return
            assignment[var] = 0

        dfs(0, 0.0)

        if best_assignment is None:
            status = ILPStatus.TIME_LIMIT if timed_out else ILPStatus.INFEASIBLE
            return ILPSolution(status=status, assignment={}, objective=None, nodes_explored=nodes)
        status = ILPStatus.TIME_LIMIT if timed_out else ILPStatus.OPTIMAL
        return ILPSolution(
            status=status,
            assignment={self._names[i]: best_assignment[i] for i in range(n)},
            objective=best_obj,
            nodes_explored=nodes,
        )
