"""A from-scratch 0-1 integer linear program solver (Gurobi substitute).

The paper uses Gurobi to find per-mode schedules (S3.9, S4).  Gurobi is
proprietary and unavailable here, so we implement implicit enumeration
(Balas-style branch-and-bound) for binary programs:

    minimize    c . x
    subject to  A x {<=, >=, ==} b,   x in {0,1}^n

Pruning uses (a) constraint-interval propagation -- a partial assignment is
abandoned as soon as some constraint cannot be satisfied by any completion --
and (b) an optimistic objective bound -- the sum of all negative remaining
costs.  Variables are branched in decreasing |cost| order, trying the
cost-improving value first, so good incumbents are found early.

Two features support the mode-tree generator's offline scheduling path:

* **Warm starts** -- :meth:`ZeroOneILP.solve` accepts an externally computed
  feasible assignment (modegen passes the greedy placement).  The incumbent
  prunes from node one; when its objective already meets an admissible
  lower bound (detected from exactly-one "GUB" constraints), the solve
  returns immediately without any search.  A warm-started solve always
  returns the *same objective* as a cold solve (the incumbent only prunes
  subtrees that cannot strictly improve), though it may return a different
  equally-optimal assignment, so it is opt-in where bit-identical
  placements matter.
* **Deterministic node budgets** -- ``max_nodes`` bounds the number of
  branch-and-bound nodes explored, a machine-independent alternative to the
  wall-clock ``time_limit_s``: identical models explore identical node
  sequences on every machine, so budget-limited outcomes (and thus mode
  trees) are reproducible across hosts and in CI.  ``ILPSolution.stopped_by``
  reports which budget tripped.

This is exact and fast enough for the per-mode assignment instances the
mode-tree generator produces; the large Fig. 7/9 sweeps use the greedy
scheduler in :mod:`repro.sched.assign` with identical feasibility checks.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ILPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    TIME_LIMIT = "time-limit"
    NODE_LIMIT = "node-limit"


#: Process-wide solver counters (surfaced via repro.analysis.metrics).
_SOLVER_STATS: Dict[str, int] = {
    "solves": 0,
    "nodes_explored": 0,
    "warm_starts": 0,
    "warm_proved_optimal": 0,
    "warm_start_infeasible": 0,
    "time_limit_trips": 0,
    "node_limit_trips": 0,
}


def solver_stats() -> Dict[str, int]:
    """A copy of the process-wide branch-and-bound counters."""
    return dict(_SOLVER_STATS)


def reset_solver_stats() -> None:
    for key in _SOLVER_STATS:
        _SOLVER_STATS[key] = 0


@dataclass
class ILPSolution:
    """Result of a solve: status, assignment by variable name, objective.

    Attributes:
        stopped_by: which budget ended the search early -- ``"time"``,
            ``"nodes"``, or None when the search ran to completion.
    """

    status: ILPStatus
    assignment: Dict[str, int]
    objective: Optional[float]
    nodes_explored: int = 0
    stopped_by: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.objective is not None


@dataclass
class _Constraint:
    coeffs: Dict[int, float]
    sense: str  # "<=", ">=", "=="
    bound: float


class ZeroOneILP:
    """A binary integer program.

    Usage::

        ilp = ZeroOneILP()
        x = ilp.add_variable("x", cost=2.0)
        y = ilp.add_variable("y", cost=-1.0)
        ilp.add_constraint({"x": 1, "y": 1}, "<=", 1)
        solution = ilp.solve()
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._costs: List[float] = []
        self._constraints: List[_Constraint] = []

    # -- model building ------------------------------------------------------

    def add_variable(self, name: str, cost: float = 0.0) -> str:
        if name in self._index:
            raise ValueError(f"duplicate variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._costs.append(float(cost))
        return name

    def add_constraint(
        self, coeffs: Dict[str, float], sense: str, bound: float
    ) -> None:
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {sense!r}")
        resolved: Dict[int, float] = {}
        for name, coeff in coeffs.items():
            if name not in self._index:
                raise ValueError(f"unknown variable {name!r}")
            if coeff != 0:
                resolved[self._index[name]] = float(coeff)
        self._constraints.append(_Constraint(resolved, sense, float(bound)))

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- warm-start helpers ---------------------------------------------------

    def _check_feasible(self, x: List[int]) -> bool:
        for con in self._constraints:
            lhs = sum(c * x[i] for i, c in con.coeffs.items())
            if con.sense == "<=" and lhs > con.bound + 1e-9:
                return False
            if con.sense == ">=" and lhs < con.bound - 1e-9:
                return False
            if con.sense == "==" and abs(lhs - con.bound) > 1e-9:
                return False
        return True

    def _gub_groups(self) -> List[List[int]]:
        """Disjoint exactly-one ("GUB") groups detected from the model.

        An equality constraint with all-ones coefficients and bound 1 forces
        exactly one member variable to 1; disjoint groups yield the
        admissible objective lower bound used to prove warm starts optimal
        without search.
        """
        groups: List[List[int]] = []
        grouped: set = set()
        for con in self._constraints:
            if con.sense != "==" or con.bound != 1.0 or not con.coeffs:
                continue
            if any(c != 1.0 for c in con.coeffs.values()):
                continue
            members = sorted(con.coeffs)
            if any(v in grouped for v in members):
                continue
            grouped.update(members)
            groups.append(members)
        return groups

    def _lower_bound(self, groups: List[List[int]]) -> float:
        """Admissible objective lower bound from the GUB relaxation."""
        grouped = {v for g in groups for v in g}
        bound = sum(min(self._costs[v] for v in g) for g in groups)
        bound += sum(
            c for i, c in enumerate(self._costs) if i not in grouped and c < 0
        )
        return bound

    # -- solving ----------------------------------------------------------------

    def solve(
        self,
        time_limit_s: float = 30.0,
        max_nodes: Optional[int] = None,
        warm_start: Optional[Dict[str, int]] = None,
    ) -> ILPSolution:
        """Exact branch-and-bound solve (minimization).

        Args:
            time_limit_s: wall-clock budget (machine-dependent).
            max_nodes: branch-and-bound node budget (machine-independent;
                the same model explores the same node sequence everywhere,
                so budget-limited outcomes are reproducible).
            warm_start: optional feasible assignment used as the initial
                incumbent; infeasible warm starts are ignored.  Guarantees
                the cold-solve objective; the returned assignment may be a
                different equally-optimal one.
        """
        _SOLVER_STATS["solves"] += 1
        n = len(self._names)

        warm_x: Optional[List[int]] = None
        warm_obj = 0.0
        if warm_start is not None:
            candidate = [0] * n
            for name, value in warm_start.items():
                idx = self._index.get(name)
                if idx is not None and value:
                    candidate[idx] = 1
            if self._check_feasible(candidate):
                warm_x = candidate
                warm_obj = sum(
                    c * candidate[i] for i, c in enumerate(self._costs)
                )
                _SOLVER_STATS["warm_starts"] += 1
            else:
                _SOLVER_STATS["warm_start_infeasible"] += 1

        groups: List[List[int]] = []
        if warm_x is not None:
            groups = self._gub_groups()
            if warm_obj <= self._lower_bound(groups) + 1e-9:
                # The incumbent meets an admissible lower bound: provably
                # optimal, no search needed.
                _SOLVER_STATS["warm_proved_optimal"] += 1
                return ILPSolution(
                    status=ILPStatus.OPTIMAL,
                    assignment={
                        self._names[i]: warm_x[i] for i in range(n)
                    },
                    objective=warm_obj,
                    nodes_explored=0,
                )

        # Normalize constraints to <= form; keep == as a pair.
        norm: List[Tuple[Dict[int, float], float]] = []
        for con in self._constraints:
            if con.sense in ("<=", "=="):
                norm.append((con.coeffs, con.bound))
            if con.sense in (">=", "=="):
                norm.append(({i: -c for i, c in con.coeffs.items()}, -con.bound))

        if warm_x is None:
            # Branch order: decreasing |cost|, then most-constrained.
            order = sorted(range(n), key=lambda i: -abs(self._costs[i]))
        else:
            # Warm-started order: exactly-one groups first (propagation
            # localizes infeasibility within a group), remaining variables
            # by decreasing |cost|.
            order = [v for g in groups for v in g]
            seen = set(order)
            order += sorted(
                (i for i in range(n) if i not in seen),
                key=lambda i: -abs(self._costs[i]),
            )

        # For propagation: per-constraint running LHS and the min possible
        # remaining contribution (sum of negative coeffs of unassigned vars).
        con_lhs = [0.0] * len(norm)
        con_min_remaining = [
            sum(c for c in coeffs.values() if c < 0) for coeffs, _ in norm
        ]
        # Optimistic objective: sum of negative costs of unassigned vars.
        obj_min_remaining = sum(c for c in self._costs if c < 0)

        # Var -> list of (constraint index, coeff).
        var_cons: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for ci, (coeffs, _b) in enumerate(norm):
            for var, coeff in coeffs.items():
                var_cons[var].append((ci, coeff))

        assignment = [0] * n
        best_obj: Optional[float] = None
        best_assignment: Optional[List[int]] = None
        if warm_x is not None:
            best_obj = warm_obj
            best_assignment = list(warm_x)
        nodes = 0
        deadline = time.monotonic() + time_limit_s
        stopped: Optional[str] = None

        def feasible_now() -> bool:
            return all(
                con_lhs[ci] + con_min_remaining[ci] <= bound + 1e-9
                for ci, (_c, bound) in enumerate(norm)
            )

        def dfs(depth: int, current_obj: float) -> None:
            nonlocal best_obj, best_assignment, nodes, obj_min_remaining, stopped
            nodes += 1
            if stopped is not None:
                return
            if max_nodes is not None and nodes > max_nodes:
                stopped = "nodes"
                return
            if nodes % 1024 == 0 and time.monotonic() > deadline:
                stopped = "time"
                return
            if best_obj is not None and current_obj + obj_min_remaining >= best_obj - 1e-12:
                return
            if not feasible_now():
                return
            if depth == n:
                if best_obj is None or current_obj < best_obj - 1e-12:
                    best_obj = current_obj
                    best_assignment = assignment.copy()
                return
            var = order[depth]
            cost = self._costs[var]
            if warm_x is not None:
                # Descend toward the warm incumbent first: deviations are
                # explored only where they can strictly improve.
                values = (warm_x[var], 1 - warm_x[var])
            else:
                values = (1, 0) if cost < 0 else (0, 1)
            for value in values:
                assignment[var] = value
                delta_obj = cost * value
                saved_minrem: List[Tuple[int, float]] = []
                for ci, coeff in var_cons[var]:
                    saved_minrem.append((ci, con_min_remaining[ci]))
                    con_lhs[ci] += coeff * value
                    if coeff < 0:
                        con_min_remaining[ci] -= coeff
                saved_obj_minrem = obj_min_remaining
                if cost < 0:
                    obj_min_remaining -= cost
                dfs(depth + 1, current_obj + delta_obj)
                obj_min_remaining = saved_obj_minrem
                for (ci, coeff), (_ci2, minrem) in zip(var_cons[var], saved_minrem):
                    con_lhs[ci] -= coeff * assignment[var]
                    con_min_remaining[ci] = minrem
                if stopped is not None:
                    return
            assignment[var] = 0

        dfs(0, 0.0)
        _SOLVER_STATS["nodes_explored"] += nodes
        if stopped == "time":
            _SOLVER_STATS["time_limit_trips"] += 1
        elif stopped == "nodes":
            _SOLVER_STATS["node_limit_trips"] += 1

        if best_assignment is None:
            if stopped == "nodes":
                status = ILPStatus.NODE_LIMIT
            elif stopped == "time":
                status = ILPStatus.TIME_LIMIT
            else:
                status = ILPStatus.INFEASIBLE
            return ILPSolution(
                status=status,
                assignment={},
                objective=None,
                nodes_explored=nodes,
                stopped_by=stopped,
            )
        if stopped == "nodes":
            status = ILPStatus.NODE_LIMIT
        elif stopped == "time":
            status = ILPStatus.TIME_LIMIT
        else:
            status = ILPStatus.OPTIMAL
        return ILPSolution(
            status=status,
            assignment={self._names[i]: best_assignment[i] for i in range(n)},
            objective=best_obj,
            nodes_explored=nodes,
            stopped_by=stopped,
        )

from repro.obs import registry as _telemetry

_telemetry.register("ilp_solver", solver_stats, reset_solver_stats)
