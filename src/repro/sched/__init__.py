"""Real-time scheduling substrate.

REBOUND's workload model (paper S2.3) is periodic data flows -- each a DAG
of tasks with known period, worst-case execution time, deadline, and a
per-flow criticality level -- executed under EDF on each controller.  Modes
map tasks (plus fconc replicas each) to controllers; schedules for every
reachable failure scenario are precomputed offline into a *mode tree*
(paper S3.9), with an ILP minimizing mode-transition costs.

* :mod:`repro.sched.task` -- tasks, flows, workloads, criticality levels.
* :mod:`repro.sched.edf` -- EDF schedulability analysis and a job-level
  EDF simulator.
* :mod:`repro.sched.workload` -- the random workload generator of S5.1.
* :mod:`repro.sched.ilp` -- a from-scratch 0-1 branch-and-bound ILP solver
  (the Gurobi substitute).
* :mod:`repro.sched.assign` -- per-mode task assignment: feasibility
  checking, greedy first-fit heuristic, and exact ILP assignment.
* :mod:`repro.sched.modegen` -- mode-tree generation, sizing, and lookup.
"""

from repro.sched.task import (
    CRITICALITY_HIGH,
    CRITICALITY_LOW,
    CRITICALITY_MEDIUM,
    CRITICALITY_VERY_HIGH,
    Flow,
    Task,
    Workload,
    chemical_plant_workload,
)
from repro.sched.edf import EDFSimulator, edf_schedulable
from repro.sched.workload import WorkloadGenerator
from repro.sched.ilp import ILPStatus, ZeroOneILP
from repro.sched.assign import ModeSchedule, ScheduleBuilder
from repro.sched.modegen import FailureScenario, ModeTree, ModeTreeGenerator

__all__ = [
    "CRITICALITY_VERY_HIGH",
    "CRITICALITY_HIGH",
    "CRITICALITY_MEDIUM",
    "CRITICALITY_LOW",
    "Task",
    "Flow",
    "Workload",
    "chemical_plant_workload",
    "edf_schedulable",
    "EDFSimulator",
    "WorkloadGenerator",
    "ZeroOneILP",
    "ILPStatus",
    "ModeSchedule",
    "ScheduleBuilder",
    "FailureScenario",
    "ModeTree",
    "ModeTreeGenerator",
]
