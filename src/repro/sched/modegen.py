"""Mode-tree generation (paper S3.9, evaluated in Fig. 7).

Conceptually there is a mode for every failure scenario (KN, KL).  The
generator organizes them into a tree rooted at the fault-free mode; children
differ from their parents by exactly one additional node (or link) failure,
and leaves are modes with ``fmax`` faults.  Schedules are computed bottom-up
against the parent to minimize transition cost, and the whole tree is
precomputed offline and stored on every node (a few MB, fitting embedded
flash -- Fig. 7a).

The number of node-fault vertices is sum_{i=0..fmax} C(n, i) (paper S5.4),
which explodes for large n; like the paper we parallelize "per fault layer"
conceptually, and additionally offer a *sampling estimator* used by the
Fig. 7 benchmark at large n: it schedules the root plus a random sample of
modes per layer and extrapolates total generation time and tree size.  The
exact and estimated paths share all scheduling code.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.message import encode, register_message
from repro.net.topology import Topology
from repro.sched.assign import InfeasibleSchedule, ModeSchedule, ScheduleBuilder
from repro.sched.task import Workload

Link = Tuple[int, int]


@register_message
@dataclass(frozen=True)
class FailureScenario:
    """A failure pattern (KN, KL): known-failed nodes and links."""

    nodes: FrozenSet[int]
    links: FrozenSet[Link]

    @property
    def fault_count(self) -> int:
        return len(self.nodes) + len(self.links)

    def with_node(self, node: int) -> "FailureScenario":
        # Once a node is failed, all of its link faults are implied and
        # dropped from KL (paper S3.2).
        links = frozenset(l for l in self.links if node not in l)
        return FailureScenario(nodes=self.nodes | {node}, links=links)

    def with_link(self, link: Link) -> "FailureScenario":
        a, b = sorted(link)
        if a in self.nodes or b in self.nodes:
            return self  # implied by a node fault already
        return FailureScenario(nodes=self.nodes, links=self.links | {(a, b)})

    def covers(self, other: "FailureScenario") -> bool:
        """True if this scenario includes every fault of ``other``."""
        if not other.nodes <= self.nodes:
            return False
        for link in other.links:
            if link not in self.links and not (set(link) & self.nodes):
                return False
        return True


EMPTY_SCENARIO = FailureScenario(nodes=frozenset(), links=frozenset())


def normalize_scenario(
    scenario: FailureScenario, fmax: int
) -> FailureScenario:
    """Map a scenario with more than ``fmax`` faults into the tree's domain.

    Paper S3.2: a mode (KN, KL) with |KN| + |KL| > fmax can always be mapped
    to one with |KN| + |KL| <= fmax by replacing some link faults with node
    faults -- e.g. two LFDs sharing endpoint A imply (under the fault budget)
    that A itself is faulty.  We greedily blame the endpoint incident to the
    most failed links until the budget is met.
    """
    nodes = set(scenario.nodes)
    links = {l for l in scenario.links if not (set(l) & nodes)}
    while len(nodes) + len(links) > fmax and links:
        counts: Dict[int, int] = {}
        for a, b in links:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        blamed = max(counts, key=lambda n: (counts[n], -n))
        nodes.add(blamed)
        links = {l for l in links if blamed not in l}
    return FailureScenario(nodes=frozenset(nodes), links=frozenset(links))


@dataclass
class ModeTree:
    """The generated tree: scenario -> schedule, with parent/child structure.

    ``builder`` (attached by the generator) enables deterministic *on-demand*
    scheduling for scenarios outside the precomputed tree -- chiefly
    link-fault combinations, whose full cross-product is too large to
    precompute (the paper notes schedules "could be computed on demand",
    S3.9).  Because the builder is deterministic, every correct node
    computes the identical schedule without coordination.
    """

    fmax: int
    fconc: int
    schedules: Dict[FailureScenario, ModeSchedule] = field(default_factory=dict)
    parents: Dict[FailureScenario, Optional[FailureScenario]] = field(default_factory=dict)
    children: Dict[FailureScenario, List[FailureScenario]] = field(default_factory=dict)
    builder: Optional["ScheduleBuilder"] = None

    @property
    def num_modes(self) -> int:
        return len(self.schedules)

    @property
    def num_edges(self) -> int:
        return sum(len(c) for c in self.children.values())

    def schedule_for(self, scenario: FailureScenario) -> ModeSchedule:
        """Look up the schedule for a (normalized) scenario.

        Scenarios over budget are normalized per S3.2; scenarios absent from
        the tree (e.g. a link combination that was pruned) fall back to the
        closest generated ancestor that covers a maximal subset of the
        faults -- conservative but always defined.
        """
        normalized = normalize_scenario(scenario, self.fmax)
        if normalized in self.schedules:
            return self.schedules[normalized]
        best: Optional[FailureScenario] = None
        for candidate in self.schedules:
            if normalized.covers(candidate):
                if best is None or candidate.fault_count > best.fault_count:
                    best = candidate
        if best is None:
            best = EMPTY_SCENARIO
        if self.builder is not None:
            # Deterministic on-demand scheduling against the closest
            # precomputed ancestor (minimizes transition cost).
            try:
                schedule = self.builder.build(
                    failed_nodes=normalized.nodes,
                    failed_links=normalized.links,
                    parent=self.schedules[best],
                )
            except Exception:
                return self.schedules[best]
            self.schedules[normalized] = schedule
            self.parents[normalized] = best
            self.children.setdefault(best, []).append(normalized)
            self.children.setdefault(normalized, [])
            return schedule
        return self.schedules[best]

    def serialized_size(self) -> int:
        """Bytes needed to store the tree on a node (Fig. 7a metric)."""
        payload = [
            (scenario, schedule)
            for scenario, schedule in sorted(
                self.schedules.items(), key=lambda kv: encode(kv[0])
            )
        ]
        return len(encode(payload))

    def depth_of(self, scenario: FailureScenario) -> int:
        depth = 0
        current = self.parents.get(scenario)
        while current is not None:
            depth += 1
            current = self.parents.get(current)
        return depth


@dataclass
class GenerationStats:
    """Bookkeeping from a generation run (drives Fig. 7)."""

    modes_generated: int
    wall_time_s: float
    estimated_total_modes: int
    estimated_total_time_s: float
    estimated_size_bytes: int


class ModeTreeGenerator:
    """Generates mode trees for node-fault (and optional link-fault) scenarios.

    Args:
        topology: the network.
        workload: the flows to schedule.
        fmax: maximum total faults planned for.
        fconc: replicas per task (concurrent-fault bound).
        include_link_faults: also expand single-link-failure children
            (the full cross-product of link faults is enormous; the paper's
            Fig. 7 sweep counts node-fault vertices, so the default is off).
        method: ``"greedy"`` or ``"ilp"`` placement.
    """

    def __init__(
        self,
        topology: Topology,
        workload: Workload,
        fmax: int = 1,
        fconc: int = 1,
        include_link_faults: bool = False,
        method: str = "greedy",
        utilization_cap: float = 0.9,
        pinned_primaries=None,
    ):
        if fmax < 0:
            raise ValueError("fmax must be non-negative")
        self.topology = topology
        self.workload = workload
        self.fmax = fmax
        self.fconc = fconc
        self.include_link_faults = include_link_faults
        self.builder = ScheduleBuilder(
            topology,
            workload,
            fconc=fconc,
            utilization_cap=utilization_cap,
            method=method,
            pinned_primaries=pinned_primaries,
        )

    # -- exact generation ----------------------------------------------------

    def generate(self) -> ModeTree:
        """Generate the full tree (exponential in fmax; use for small n)."""
        tree = ModeTree(fmax=self.fmax, fconc=self.fconc, builder=self.builder)
        root_schedule = self.builder.build()
        tree.schedules[EMPTY_SCENARIO] = root_schedule
        tree.parents[EMPTY_SCENARIO] = None
        tree.children[EMPTY_SCENARIO] = []
        frontier = [EMPTY_SCENARIO]
        for _layer in range(self.fmax):
            next_frontier: List[FailureScenario] = []
            for scenario in frontier:
                for child in self._children_of(scenario):
                    if child in tree.schedules:
                        # DAG-shaped scenario space collapses onto the first
                        # parent (the tree keeps one canonical parent).
                        if child not in tree.children[scenario]:
                            tree.children[scenario].append(child)
                        continue
                    try:
                        schedule = self.builder.build(
                            failed_nodes=child.nodes,
                            failed_links=child.links,
                            parent=tree.schedules[scenario],
                        )
                    except InfeasibleSchedule:
                        continue
                    tree.schedules[child] = schedule
                    tree.parents[child] = scenario
                    tree.children[scenario].append(child)
                    tree.children[child] = []
                    next_frontier.append(child)
            frontier = next_frontier
        return tree

    def _children_of(self, scenario: FailureScenario) -> Iterable[FailureScenario]:
        controllers = self.topology.controllers
        for node in controllers:
            if node not in scenario.nodes:
                yield scenario.with_node(node)
        if self.include_link_faults:
            for link in self.topology.p2p_links:
                a, b = tuple(sorted(link))
                if (a, b) in scenario.links:
                    continue
                if a in scenario.nodes or b in scenario.nodes:
                    continue
                yield scenario.with_link((a, b))

    # -- sampling estimator (Fig. 7 at large n) -----------------------------------

    def layer_counts(self) -> List[int]:
        """Number of node-fault scenarios per layer: C(n, i) for i <= fmax."""
        n = len(self.topology.controllers)
        return [math.comb(n, i) for i in range(self.fmax + 1)]

    def estimate(self, samples_per_layer: int = 8, seed: int = 0) -> GenerationStats:
        """Estimate full-tree generation cost by sampling each fault layer.

        Schedules the root exactly, then for each layer draws random
        scenarios, schedules them against the root (transition-cost parent),
        and extrapolates per-layer time and per-mode serialized size to the
        analytic layer counts.
        """
        rng = random.Random(seed)
        controllers = self.topology.controllers
        counts = self.layer_counts()
        start = time.perf_counter()
        root = self.builder.build()
        root_time = time.perf_counter() - start
        root_size = len(encode((EMPTY_SCENARIO, root)))

        total_time = root_time
        total_size = root_size
        modes_generated = 1
        for layer in range(1, self.fmax + 1):
            count = counts[layer]
            sample_n = min(samples_per_layer, count)
            layer_time = 0.0
            layer_size = 0
            scheduled = 0
            seen: Set[FrozenSet[int]] = set()
            attempts = 0
            while scheduled < sample_n and attempts < sample_n * 20:
                attempts += 1
                nodes = frozenset(rng.sample(controllers, layer))
                if nodes in seen:
                    continue
                seen.add(nodes)
                scenario = FailureScenario(nodes=nodes, links=frozenset())
                t0 = time.perf_counter()
                try:
                    schedule = self.builder.build(
                        failed_nodes=scenario.nodes, parent=root
                    )
                except InfeasibleSchedule:
                    continue
                layer_time += time.perf_counter() - t0
                layer_size += len(encode((scenario, schedule)))
                scheduled += 1
            if scheduled:
                total_time += layer_time / scheduled * count
                total_size += layer_size // scheduled * count
                modes_generated += scheduled
        return GenerationStats(
            modes_generated=modes_generated,
            wall_time_s=time.perf_counter() - start,
            estimated_total_modes=sum(counts),
            estimated_total_time_s=total_time,
            estimated_size_bytes=total_size,
        )
