"""Mode-tree generation (paper S3.9, evaluated in Fig. 7).

Conceptually there is a mode for every failure scenario (KN, KL).  The
generator organizes them into a tree rooted at the fault-free mode; children
differ from their parents by exactly one additional node (or link) failure,
and leaves are modes with ``fmax`` faults.  Schedules are computed bottom-up
against the parent to minimize transition cost, and the whole tree is
precomputed offline and stored on every node (a few MB, fitting embedded
flash -- Fig. 7a).

The number of node-fault vertices is sum_{i=0..fmax} C(n, i) (paper S5.4),
which explodes for large n.  Like the paper we parallelize per fault layer:
every scenario in a layer depends only on its parent's schedule (computed in
the previous layer), so the layer's solves are embarrassingly parallel.
:meth:`ModeTreeGenerator.generate` fans them out across a
``concurrent.futures.ProcessPoolExecutor`` when ``workers > 1`` (or the
``REBOUND_MODEGEN_WORKERS`` environment variable opts in); the expansion
plan and the merge are computed deterministically in the parent process, so
the parallel tree is byte-identical to the serial one -- same canonical
parents, same child ordering, same schedules.  Serial remains the default.

For large n the Fig. 7 benchmark additionally uses a *sampling estimator*:
it schedules the root plus a random sample of modes per layer and
extrapolates total generation time and tree size.  The exact and estimated
paths share all scheduling code (and the same worker pool).

Identical schedule *bodies* (placements + active/dropped flows, which
repeat heavily across sibling modes whose failed node hosted nothing) are
interned tree-wide, and :meth:`ModeTree.serialized_size` stores each unique
body once -- cutting both memory and the Fig. 7a flash footprint.
"""

from __future__ import annotations

import math
import os
import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.message import encode, register_message
from repro.net.topology import Topology
from repro.sched.assign import InfeasibleSchedule, ModeSchedule, ScheduleBuilder
from repro.sched.task import Workload

Link = Tuple[int, int]

#: Environment variable opting generation into a worker pool.
WORKERS_ENV = "REBOUND_MODEGEN_WORKERS"

#: Process-wide mode-lookup memo counters (surfaced via analysis.metrics).
_LOOKUP_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def lookup_memo_stats() -> Dict[str, int]:
    """A copy of the process-wide ``ModeTree.schedule_for`` memo counters."""
    return dict(_LOOKUP_STATS)


def reset_lookup_memo_stats() -> None:
    for key in _LOOKUP_STATS:
        _LOOKUP_STATS[key] = 0


@register_message
@dataclass(frozen=True)
class FailureScenario:
    """A failure pattern (KN, KL): known-failed nodes and links."""

    nodes: FrozenSet[int]
    links: FrozenSet[Link]

    @property
    def fault_count(self) -> int:
        return len(self.nodes) + len(self.links)

    def with_node(self, node: int) -> "FailureScenario":
        # Once a node is failed, all of its link faults are implied and
        # dropped from KL (paper S3.2).
        links = frozenset(l for l in self.links if node not in l)
        return FailureScenario(nodes=self.nodes | {node}, links=links)

    def with_link(self, link: Link) -> "FailureScenario":
        a, b = sorted(link)
        if a in self.nodes or b in self.nodes:
            return self  # implied by a node fault already
        return FailureScenario(nodes=self.nodes, links=self.links | {(a, b)})

    def covers(self, other: "FailureScenario") -> bool:
        """True if this scenario includes every fault of ``other``."""
        if not other.nodes <= self.nodes:
            return False
        for link in other.links:
            if link not in self.links and not (set(link) & self.nodes):
                return False
        return True


EMPTY_SCENARIO = FailureScenario(nodes=frozenset(), links=frozenset())


def normalize_scenario(
    scenario: FailureScenario, fmax: int
) -> FailureScenario:
    """Map a scenario with more than ``fmax`` faults into the tree's domain.

    Paper S3.2: a mode (KN, KL) with |KN| + |KL| > fmax can always be mapped
    to one with |KN| + |KL| <= fmax by replacing some link faults with node
    faults -- e.g. two LFDs sharing endpoint A imply (under the fault budget)
    that A itself is faulty.  We greedily blame the endpoint incident to the
    most failed links until the budget is met.
    """
    nodes = set(scenario.nodes)
    links = {l for l in scenario.links if not (set(l) & nodes)}
    while len(nodes) + len(links) > fmax and links:
        counts: Dict[int, int] = {}
        for a, b in links:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        blamed = max(counts, key=lambda n: (counts[n], -n))
        nodes.add(blamed)
        links = {l for l in links if blamed not in l}
    return FailureScenario(nodes=frozenset(nodes), links=frozenset(links))


def _body_key(schedule: ModeSchedule) -> Tuple:
    """Canonical key for a schedule's scenario-independent payload."""
    return (
        tuple(sorted(schedule.placements.items())),
        tuple(sorted(schedule.active_flows)),
        tuple(sorted(schedule.dropped_flows)),
    )


@dataclass
class ModeTree:
    """The generated tree: scenario -> schedule, with parent/child structure.

    ``builder`` (attached by the generator) enables deterministic *on-demand*
    scheduling for scenarios outside the precomputed tree -- chiefly
    link-fault combinations, whose full cross-product is too large to
    precompute (the paper notes schedules "could be computed on demand",
    S3.9).  Because the builder is deterministic, every correct node
    computes the identical schedule without coordination.

    Recovery experiments call :meth:`schedule_for` / :meth:`depth_of` once
    per node per round for the same handful of scenarios, so both are
    backed by bounded LRU memos (``LOOKUP_MEMO_MAX`` entries).  The memos
    are sound: an entry is only written after any on-demand insertion for
    that scenario has happened, and existing tree nodes never change.
    """

    #: Bound on the per-tree schedule_for / depth_of memos.
    LOOKUP_MEMO_MAX = 4096

    fmax: int
    fconc: int
    schedules: Dict[FailureScenario, ModeSchedule] = field(default_factory=dict)
    parents: Dict[FailureScenario, Optional[FailureScenario]] = field(default_factory=dict)
    children: Dict[FailureScenario, List[FailureScenario]] = field(default_factory=dict)
    builder: Optional["ScheduleBuilder"] = field(default=None, compare=False)
    stats: Optional["GenerationStats"] = field(
        default=None, compare=False, repr=False
    )
    _body_pool: Dict[Tuple, ModeSchedule] = field(
        default_factory=dict, compare=False, repr=False
    )
    _interned_count: int = field(default=0, compare=False, repr=False)
    _lookup_memo: "OrderedDict[FailureScenario, ModeSchedule]" = field(
        default_factory=OrderedDict, compare=False, repr=False
    )
    _depth_memo: "OrderedDict[FailureScenario, int]" = field(
        default_factory=OrderedDict, compare=False, repr=False
    )
    #: Scenarios inserted by the on-demand single-jump path
    #: (:meth:`_schedule_for_uncached`) rather than layered generation.
    #: :meth:`ModeTreeGenerator.extend_for` replaces these with canonical
    #: layered entries when it regenerates a subtree online.
    ondemand: Set[FailureScenario] = field(
        default_factory=set, compare=False, repr=False
    )

    @property
    def num_modes(self) -> int:
        return len(self.schedules)

    @property
    def num_edges(self) -> int:
        return sum(len(c) for c in self.children.values())

    # -- schedule interning ------------------------------------------------

    def intern(self, schedule: ModeSchedule) -> ModeSchedule:
        """Dedupe the schedule's body against the tree-wide pool.

        The returned schedule is value-equal to the input; when another
        mode already carries the same placements and flow sets, their
        container objects are shared, cutting the memory held by large
        trees (the per-scenario ``failed_nodes``/``failed_links`` stay
        distinct).
        """
        key = _body_key(schedule)
        pooled = self._body_pool.get(key)
        if pooled is None:
            self._body_pool[key] = schedule
            return schedule
        self._interned_count += 1
        if (
            pooled.placements is schedule.placements
            and pooled.active_flows is schedule.active_flows
            and pooled.dropped_flows is schedule.dropped_flows
        ):
            return schedule
        return ModeSchedule(
            failed_nodes=schedule.failed_nodes,
            failed_links=schedule.failed_links,
            placements=pooled.placements,
            active_flows=pooled.active_flows,
            dropped_flows=pooled.dropped_flows,
        )

    def intern_stats(self) -> Dict[str, int]:
        return {
            "unique_bodies": len(self._body_pool),
            "interned": self._interned_count,
        }

    # -- lookups -----------------------------------------------------------

    def schedule_for(self, scenario: FailureScenario) -> ModeSchedule:
        """Look up the schedule for a (normalized) scenario.

        Scenarios over budget are normalized per S3.2; scenarios absent from
        the tree (e.g. a link combination that was pruned) fall back to the
        closest generated ancestor that covers a maximal subset of the
        faults -- conservative but always defined.
        """
        memo_hit = self._lookup_memo.get(scenario)
        if memo_hit is not None:
            self._lookup_memo.move_to_end(scenario)
            _LOOKUP_STATS["hits"] += 1
            return memo_hit
        _LOOKUP_STATS["misses"] += 1
        result = self._schedule_for_uncached(scenario)
        self._lookup_memo[scenario] = result
        while len(self._lookup_memo) > self.LOOKUP_MEMO_MAX:
            self._lookup_memo.popitem(last=False)
        return result

    def _schedule_for_uncached(self, scenario: FailureScenario) -> ModeSchedule:
        normalized = normalize_scenario(scenario, self.fmax)
        if normalized in self.schedules:
            return self.schedules[normalized]
        best: Optional[FailureScenario] = None
        for candidate in self.schedules:
            if normalized.covers(candidate):
                if best is None or candidate.fault_count > best.fault_count:
                    best = candidate
        if best is None:
            best = EMPTY_SCENARIO
        if self.builder is not None:
            # Deterministic on-demand scheduling against the closest
            # precomputed ancestor (minimizes transition cost).
            try:
                schedule = self.builder.build(
                    failed_nodes=normalized.nodes,
                    failed_links=normalized.links,
                    parent=self.schedules[best],
                )
            except Exception:
                return self.schedules[best]
            schedule = self.intern(schedule)
            self.schedules[normalized] = schedule
            self.parents[normalized] = best
            self.children.setdefault(best, []).append(normalized)
            self.children.setdefault(normalized, [])
            self.ondemand.add(normalized)
            return schedule
        return self.schedules[best]

    def invalidate_lookups(self) -> None:
        """Drop the schedule_for/depth_of memos (after an online extension
        changed what a lookup should return)."""
        self._lookup_memo.clear()
        self._depth_memo.clear()

    def serialized_size(self, dedup: bool = True) -> int:
        """Bytes needed to store the tree on a node (Fig. 7a metric).

        With ``dedup`` (the default) each unique schedule body --
        placements plus active/dropped flow sets -- is stored once and
        scenarios reference it by index; the per-mode failure sets are
        recoverable from the scenario key itself.  ``dedup=False`` gives
        the legacy flat encoding (every mode carries its full schedule).
        """
        items = sorted(self.schedules.items(), key=lambda kv: encode(kv[0]))
        if not dedup:
            return len(encode(list(items)))
        bodies: List[Tuple] = []
        body_index: Dict[Tuple, int] = {}
        entries: List[Tuple[FailureScenario, int]] = []
        for scenario, schedule in items:
            key = _body_key(schedule)
            idx = body_index.get(key)
            if idx is None:
                idx = len(bodies)
                body_index[key] = idx
                bodies.append(
                    (
                        schedule.placements,
                        schedule.active_flows,
                        schedule.dropped_flows,
                    )
                )
            entries.append((scenario, idx))
        return len(encode(("modetree/v2", bodies, entries)))

    def depth_of(self, scenario: FailureScenario) -> int:
        cached = self._depth_memo.get(scenario)
        if cached is not None:
            self._depth_memo.move_to_end(scenario)
            return cached
        depth = 0
        current = self.parents.get(scenario)
        while current is not None:
            depth += 1
            current = self.parents.get(current)
        self._depth_memo[scenario] = depth
        while len(self._depth_memo) > self.LOOKUP_MEMO_MAX:
            self._depth_memo.popitem(last=False)
        return depth


@dataclass
class GenerationStats:
    """Bookkeeping from a generation or estimation run (drives Fig. 7).

    The first five fields predate the parallel engine and keep their
    positional meaning.  For :meth:`ModeTreeGenerator.generate` runs the
    "estimated" fields hold the actual totals (the run *is* the full tree)
    and ``estimated_size_bytes`` is left 0 -- call
    :meth:`ModeTree.serialized_size` for the real footprint.

    Attributes:
        workers: pool size used (1 = serial).
        per_layer: one dict per fault layer -- ``layer``, ``scenarios``
            (solve jobs), ``feasible`` (schedules produced), ``wall_s``,
            ``solve_s`` (summed per-job solver time, across workers).
        solver: aggregated ScheduleBuilder counters (ILP solves, explored
            nodes, warm-start proofs, placement-memo hits, ...), including
            deltas shipped back from pool workers.
        interned_schedules: schedule bodies deduped by the tree-wide pool.
        unique_schedule_bodies: distinct bodies kept.
    """

    modes_generated: int
    wall_time_s: float
    estimated_total_modes: int
    estimated_total_time_s: float
    estimated_size_bytes: int
    workers: int = 1
    per_layer: List[Dict[str, Any]] = field(default_factory=list)
    solver: Dict[str, int] = field(default_factory=dict)
    interned_schedules: int = 0
    unique_schedule_bodies: int = 0


# -- worker-pool plumbing -----------------------------------------------------
#
# Workers hold a per-process ScheduleBuilder (shipped once via the pool
# initializer); jobs carry only the scenario and its parent schedule.  Each
# job returns the schedule (or None when infeasible), its wall time, and
# the builder-counter delta so the parent can aggregate solver stats.

_WORKER_BUILDER: Optional[ScheduleBuilder] = None


def _pool_init(builder: ScheduleBuilder) -> None:
    global _WORKER_BUILDER
    _WORKER_BUILDER = builder


def _solve_with(
    builder: ScheduleBuilder,
    nodes: FrozenSet[int],
    links: FrozenSet[Link],
    parent: Optional[ModeSchedule],
) -> Tuple[Optional[ModeSchedule], float, Dict[str, int]]:
    before = dict(builder.counters)
    start = time.perf_counter()
    try:
        schedule = builder.build(
            failed_nodes=nodes, failed_links=links, parent=parent
        )
    except InfeasibleSchedule:
        schedule = None
    elapsed = time.perf_counter() - start
    delta = {
        key: builder.counters[key] - before.get(key, 0)
        for key in builder.counters
    }
    return schedule, elapsed, delta


def _pool_job(
    job: Tuple[FrozenSet[int], FrozenSet[Link], Optional[ModeSchedule]]
) -> Tuple[Optional[ModeSchedule], float, Dict[str, int]]:
    nodes, links, parent = job
    assert _WORKER_BUILDER is not None, "pool worker not initialized"
    return _solve_with(_WORKER_BUILDER, nodes, links, parent)


class ModeTreeGenerator:
    """Generates mode trees for node-fault (and optional link-fault) scenarios.

    Args:
        topology: the network.
        workload: the flows to schedule.
        fmax: maximum total faults planned for.
        fconc: replicas per task (concurrent-fault bound).
        include_link_faults: also expand single-link-failure children
            (the full cross-product of link faults is enormous; the paper's
            Fig. 7 sweep counts node-fault vertices, so the default is off).
        method: ``"greedy"`` or ``"ilp"`` placement.
        workers: fan each fault layer out across this many worker
            processes (layers are embarrassingly parallel; the merge is
            deterministic, so the tree is byte-identical to a serial run).
            None consults the ``REBOUND_MODEGEN_WORKERS`` environment
            variable and falls back to 1 (serial, the default).
        ilp_warm_start / ilp_batch_admit / ilp_node_budget / place_memo /
        intern_schedules: solver-level optimizations, forwarded to
            :class:`ScheduleBuilder` (see its docstring).  Warm starts and
            batch admission are opt-in; the placement memo and schedule
            interning are exactly result-preserving and default on.
    """

    def __init__(
        self,
        topology: Topology,
        workload: Workload,
        fmax: int = 1,
        fconc: int = 1,
        include_link_faults: bool = False,
        method: str = "greedy",
        utilization_cap: float = 0.9,
        pinned_primaries=None,
        workers: Optional[int] = None,
        ilp_warm_start: bool = False,
        ilp_batch_admit: bool = False,
        ilp_node_budget: Optional[int] = 1_000_000,
        place_memo: bool = True,
        intern_schedules: bool = True,
    ):
        if fmax < 0:
            raise ValueError("fmax must be non-negative")
        self.topology = topology
        self.workload = workload
        self.fmax = fmax
        self.fconc = fconc
        self.include_link_faults = include_link_faults
        self.workers = workers
        self.intern_schedules = intern_schedules
        self.last_stats: Optional[GenerationStats] = None
        self.builder = ScheduleBuilder(
            topology,
            workload,
            fconc=fconc,
            utilization_cap=utilization_cap,
            method=method,
            pinned_primaries=pinned_primaries,
            ilp_warm_start=ilp_warm_start,
            ilp_batch_admit=ilp_batch_admit,
            ilp_node_budget=ilp_node_budget,
            place_memo=place_memo,
        )

    # -- worker resolution --------------------------------------------------

    def _resolve_workers(self, workers: Optional[int]) -> int:
        if workers is None:
            workers = self.workers
        if workers is None:
            env = os.environ.get(WORKERS_ENV, "").strip()
            if env:
                try:
                    workers = int(env)
                except ValueError:
                    workers = 1
            else:
                workers = 1
        return max(1, int(workers))

    def _make_pool(self, workers: int):
        """A ProcessPoolExecutor primed with this generator's builder."""
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        method = "fork" if "fork" in mp.get_all_start_methods() else None
        context = mp.get_context(method) if method else mp.get_context()
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_pool_init,
            initargs=(self.builder,),
        )

    def _solve_batch(
        self,
        jobs: Sequence[Tuple[FrozenSet[int], FrozenSet[Link], Optional[ModeSchedule]]],
        pool,
    ) -> List[Tuple[Optional[ModeSchedule], float, Dict[str, int]]]:
        """Solve jobs in order; via the pool when one is attached.

        ``Executor.map`` preserves input order, so results merge
        deterministically regardless of completion order.
        """
        if pool is None:
            return [
                _solve_with(self.builder, nodes, links, parent)
                for nodes, links, parent in jobs
            ]
        chunksize = max(1, len(jobs) // (pool._max_workers * 4) or 1)
        return list(pool.map(_pool_job, jobs, chunksize=chunksize))

    # -- exact generation ----------------------------------------------------

    def generate(self, workers: Optional[int] = None) -> ModeTree:
        """Generate the full tree (exponential in fmax; use for small n).

        With ``workers > 1`` each fault layer's scenarios are solved by a
        process pool; the expansion plan (which child belongs to which
        canonical parent, and in which order) is fixed in the parent
        process before any solve, so the result is identical to a serial
        run -- the satellite equivalence tests assert this bit-for-bit.
        """
        workers = self._resolve_workers(workers)
        start = time.perf_counter()
        baseline = dict(self.builder.counters)
        extra: Dict[str, int] = {}
        tree = ModeTree(fmax=self.fmax, fconc=self.fconc, builder=self.builder)
        per_layer: List[Dict[str, Any]] = []

        root_t0 = time.perf_counter()
        root_schedule = self.builder.build()
        root_solve_s = time.perf_counter() - root_t0
        root_schedule = (
            tree.intern(root_schedule) if self.intern_schedules else root_schedule
        )
        tree.schedules[EMPTY_SCENARIO] = root_schedule
        tree.parents[EMPTY_SCENARIO] = None
        tree.children[EMPTY_SCENARIO] = []
        per_layer.append(
            {
                "layer": 0,
                "scenarios": 1,
                "feasible": 1,
                "wall_s": root_solve_s,
                "solve_s": root_solve_s,
            }
        )

        pool = self._make_pool(workers) if workers > 1 else None
        try:
            frontier = [EMPTY_SCENARIO]
            for layer_no in range(1, self.fmax + 1):
                layer_t0 = time.perf_counter()
                # Deterministic expansion plan: every (parent, child) edge
                # in serial visit order.  The first parent reaching a child
                # is canonical and owns the (single) solve.
                plan: List[Tuple[FailureScenario, FailureScenario]] = []
                claimed: Set[FailureScenario] = set()
                jobs = []
                job_children: List[FailureScenario] = []
                for scenario in frontier:
                    for child in self._children_of(scenario):
                        plan.append((scenario, child))
                        if child in tree.schedules or child in claimed:
                            continue
                        claimed.add(child)
                        job_children.append(child)
                        jobs.append(
                            (child.nodes, child.links, tree.schedules[scenario])
                        )
                results = self._solve_batch(jobs, pool)
                solved: Dict[FailureScenario, ModeSchedule] = {}
                solve_s = 0.0
                for child, (schedule, elapsed, delta) in zip(job_children, results):
                    solve_s += elapsed
                    if pool is not None:
                        for key, value in delta.items():
                            extra[key] = extra.get(key, 0) + value
                    if schedule is not None:
                        solved[child] = (
                            tree.intern(schedule)
                            if self.intern_schedules
                            else schedule
                        )
                # Deterministic merge replicating the serial insertion
                # semantics: first parent inserts, later parents only link.
                next_frontier: List[FailureScenario] = []
                for scenario, child in plan:
                    if child in tree.schedules:
                        # DAG-shaped scenario space collapses onto the first
                        # parent (the tree keeps one canonical parent).
                        if child not in tree.children[scenario]:
                            tree.children[scenario].append(child)
                        continue
                    schedule = solved.get(child)
                    if schedule is None:
                        continue  # infeasible under every parent
                    tree.schedules[child] = schedule
                    tree.parents[child] = scenario
                    tree.children[scenario].append(child)
                    tree.children[child] = []
                    next_frontier.append(child)
                frontier = next_frontier
                per_layer.append(
                    {
                        "layer": layer_no,
                        "scenarios": len(jobs),
                        "feasible": len(solved),
                        "wall_s": time.perf_counter() - layer_t0,
                        "solve_s": solve_s,
                    }
                )
        finally:
            if pool is not None:
                pool.shutdown()

        wall = time.perf_counter() - start
        intern = tree.intern_stats()
        # This run's solver work: the parent builder's delta plus the
        # deltas shipped back from pool workers.
        solver = {
            key: self.builder.counters.get(key, 0)
            - baseline.get(key, 0)
            + extra.get(key, 0)
            for key in set(self.builder.counters) | set(extra)
        }
        stats = GenerationStats(
            modes_generated=tree.num_modes,
            wall_time_s=wall,
            estimated_total_modes=tree.num_modes,
            estimated_total_time_s=wall,
            estimated_size_bytes=0,
            workers=workers,
            per_layer=per_layer,
            solver=solver,
            interned_schedules=intern["interned"],
            unique_schedule_bodies=intern["unique_bodies"],
        )
        tree.stats = stats
        self.last_stats = stats
        return tree

    # -- online subtree extension (PROTOCOL.md §16.5) -----------------------------

    def extend_for(
        self,
        tree: ModeTree,
        target: FailureScenario,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Extend ``tree`` in place with the sub-lattice under ``target``.

        When a live system observes a failure pattern with more than
        ``fmax`` faults, the precomputed tree has no exact mode for it and
        nodes degrade to a *holding mode* (the best covering ancestor, or a
        single-jump on-demand build against that ancestor).  This method
        regenerates online exactly the scenarios the overflow needs --
        ``{S : S ⊆ target, |S| > fmax}`` -- layer by layer with the same
        deterministic plan/solve/merge machinery as :meth:`generate`, so
        the added entries are **byte-identical** to what a from-scratch
        generation at ``fmax' = target.fault_count`` would have produced
        for those scenarios (the benchmark and the satellite tests assert
        this).  The identity holds because every parent of a scenario
        ``⊆ target`` is itself ``⊆ target``: restricting the frontier to
        the sub-lattice preserves both the serial visit order and the
        first-parent-canonical claims of the full expansion.

        Any scenarios in the open sub-lattice previously inserted by the
        on-demand single-jump path are replaced by their canonical layered
        entries (the jump parent differs, so its schedule may too).

        Returns a stats dict: ``added_modes``, ``replaced_ondemand``,
        ``layers`` (per-layer scenario/feasible counts), ``base_layer``,
        ``target_layer``, ``wall_s``, ``solve_s``, ``workers``.
        """
        workers = self._resolve_workers(workers)
        target = FailureScenario(
            nodes=frozenset(target.nodes), links=frozenset(target.links)
        )
        start = time.perf_counter()
        stats: Dict[str, Any] = {
            "added_modes": 0,
            "replaced_ondemand": 0,
            "layers": [],
            "base_layer": tree.fmax,
            "target_layer": target.fault_count,
            "wall_s": 0.0,
            "solve_s": 0.0,
            "workers": workers,
        }
        if target.fault_count <= tree.fmax:
            stats["wall_s"] = time.perf_counter() - start
            return stats

        # Evict on-demand single-jump entries inside the open sub-lattice:
        # their parent was a coarse covering ancestor, not the canonical
        # layered parent, so keeping them would break the identity.
        for scenario in [
            s
            for s in tree.ondemand
            if s.fault_count > tree.fmax and target.covers(s)
        ]:
            parent = tree.parents.pop(scenario, None)
            tree.schedules.pop(scenario, None)
            tree.children.pop(scenario, None)
            if parent is not None and scenario in tree.children.get(parent, ()):
                tree.children[parent].remove(scenario)
            tree.ondemand.discard(scenario)
            stats["replaced_ondemand"] += 1

        # Replay the full expansion's frontier order restricted to the
        # sub-lattice (plan only -- no solving).  Children outside the
        # target never produce descendants inside it, so filtering is
        # order-preserving; filtering to feasible (present in the tree)
        # mirrors generation, where infeasible children never joined the
        # frontier.
        frontier = [EMPTY_SCENARIO]
        seen: Set[FailureScenario] = {EMPTY_SCENARIO}
        for _layer in range(1, tree.fmax + 1):
            order: List[FailureScenario] = []
            for scenario in frontier:
                for child in self._children_of(scenario):
                    if not target.covers(child) or child in seen:
                        continue
                    seen.add(child)
                    order.append(child)
            frontier = [c for c in order if c in tree.schedules]

        pool = self._make_pool(workers) if workers > 1 else None
        try:
            for layer_no in range(tree.fmax + 1, target.fault_count + 1):
                layer_t0 = time.perf_counter()
                plan: List[Tuple[FailureScenario, FailureScenario]] = []
                claimed: Set[FailureScenario] = set()
                jobs = []
                job_children: List[FailureScenario] = []
                for scenario in frontier:
                    for child in self._children_of(scenario):
                        if not target.covers(child):
                            continue
                        plan.append((scenario, child))
                        if child in tree.schedules or child in claimed:
                            continue
                        claimed.add(child)
                        job_children.append(child)
                        jobs.append(
                            (child.nodes, child.links, tree.schedules[scenario])
                        )
                results = self._solve_batch(jobs, pool)
                solved: Dict[FailureScenario, ModeSchedule] = {}
                solve_s = 0.0
                for child, (schedule, elapsed, _delta) in zip(
                    job_children, results
                ):
                    solve_s += elapsed
                    if schedule is not None:
                        solved[child] = (
                            tree.intern(schedule)
                            if self.intern_schedules
                            else schedule
                        )
                next_frontier: List[FailureScenario] = []
                for scenario, child in plan:
                    if child in tree.schedules:
                        if child not in tree.children[scenario]:
                            tree.children[scenario].append(child)
                        # Extension layers re-visit scenarios added by a
                        # previous extend_for call; those still belong to
                        # the frontier so deeper layers expand under them.
                        if child.fault_count == layer_no and child not in next_frontier:
                            next_frontier.append(child)
                        continue
                    schedule = solved.get(child)
                    if schedule is None:
                        continue
                    tree.schedules[child] = schedule
                    tree.parents[child] = scenario
                    tree.children[scenario].append(child)
                    tree.children[child] = []
                    next_frontier.append(child)
                    stats["added_modes"] += 1
                frontier = next_frontier
                stats["layers"].append(
                    {
                        "layer": layer_no,
                        "scenarios": len(jobs),
                        "feasible": len(solved),
                        "wall_s": time.perf_counter() - layer_t0,
                        "solve_s": solve_s,
                    }
                )
                stats["solve_s"] += solve_s
        finally:
            if pool is not None:
                pool.shutdown()

        # Lookups memoized before the extension may now be stale (an
        # overflow pattern that resolved to a holding ancestor now has an
        # exact entry).
        tree.invalidate_lookups()
        stats["wall_s"] = time.perf_counter() - start
        return stats

    def _children_of(self, scenario: FailureScenario) -> Iterable[FailureScenario]:
        controllers = self.topology.controllers
        for node in controllers:
            if node not in scenario.nodes:
                yield scenario.with_node(node)
        if self.include_link_faults:
            for link in self.topology.p2p_links:
                a, b = tuple(sorted(link))
                if (a, b) in scenario.links:
                    continue
                if a in scenario.nodes or b in scenario.nodes:
                    continue
                yield scenario.with_link((a, b))

    # -- sampling estimator (Fig. 7 at large n) -----------------------------------

    def layer_counts(self) -> List[int]:
        """Number of node-fault scenarios per layer: C(n, i) for i <= fmax."""
        n = len(self.topology.controllers)
        return [math.comb(n, i) for i in range(self.fmax + 1)]

    def estimate(
        self,
        samples_per_layer: int = 8,
        seed: int = 0,
        workers: Optional[int] = None,
    ) -> GenerationStats:
        """Estimate full-tree generation cost by sampling each fault layer.

        Schedules the root exactly, then for each layer draws random
        scenarios, schedules them against the root (transition-cost parent),
        and extrapolates per-layer time and per-mode serialized size to the
        analytic layer counts.  The sample set is drawn deterministically
        up front (seeded), so serial and parallel runs schedule identical
        scenarios; with ``workers > 1`` the samples are solved by the same
        worker pool as :meth:`generate`.
        """
        workers = self._resolve_workers(workers)
        rng = random.Random(seed)
        controllers = self.topology.controllers
        counts = self.layer_counts()
        per_layer: List[Dict[str, Any]] = []
        baseline = dict(self.builder.counters)
        extra: Dict[str, int] = {}
        start = time.perf_counter()
        root = self.builder.build()
        root_time = time.perf_counter() - start
        root_size = len(encode((EMPTY_SCENARIO, root)))
        per_layer.append(
            {
                "layer": 0,
                "scenarios": 1,
                "feasible": 1,
                "wall_s": root_time,
                "solve_s": root_time,
            }
        )

        # Pre-draw each layer's sample deterministically.  The serial loop
        # only ever fails a draw when no controller survives, which is a
        # property of the scenario alone, so the draw sequence (including
        # retries) is reproducible without solving anything.
        layer_samples: List[List[FailureScenario]] = []
        for layer in range(1, self.fmax + 1):
            count = counts[layer]
            sample_n = min(samples_per_layer, count)
            scenarios: List[FailureScenario] = []
            seen: Set[FrozenSet[int]] = set()
            attempts = 0
            while len(scenarios) < sample_n and attempts < sample_n * 20:
                attempts += 1
                nodes = frozenset(rng.sample(controllers, layer))
                if nodes in seen:
                    continue
                seen.add(nodes)
                if len(nodes) >= len(controllers):
                    continue  # no surviving controllers: build() would raise
                scenarios.append(
                    FailureScenario(nodes=nodes, links=frozenset())
                )
            layer_samples.append(scenarios)

        pool = self._make_pool(workers) if workers > 1 else None
        total_time = root_time
        total_size = root_size
        modes_generated = 1
        try:
            for layer, scenarios in enumerate(layer_samples, start=1):
                layer_t0 = time.perf_counter()
                count = counts[layer]
                jobs = [(s.nodes, s.links, root) for s in scenarios]
                results = self._solve_batch(jobs, pool)
                layer_time = 0.0
                layer_size = 0
                scheduled = 0
                for scenario, (schedule, elapsed, delta) in zip(
                    scenarios, results
                ):
                    if pool is not None:
                        for key, value in delta.items():
                            extra[key] = extra.get(key, 0) + value
                    if schedule is None:
                        continue
                    layer_time += elapsed
                    layer_size += len(encode((scenario, schedule)))
                    scheduled += 1
                if scheduled:
                    total_time += layer_time / scheduled * count
                    total_size += layer_size // scheduled * count
                    modes_generated += scheduled
                per_layer.append(
                    {
                        "layer": layer,
                        "scenarios": len(jobs),
                        "feasible": scheduled,
                        "wall_s": time.perf_counter() - layer_t0,
                        "solve_s": layer_time,
                    }
                )
        finally:
            if pool is not None:
                pool.shutdown()
        solver = {
            key: self.builder.counters.get(key, 0)
            - baseline.get(key, 0)
            + extra.get(key, 0)
            for key in set(self.builder.counters) | set(extra)
        }
        stats = GenerationStats(
            modes_generated=modes_generated,
            wall_time_s=time.perf_counter() - start,
            estimated_total_modes=sum(counts),
            estimated_total_time_s=total_time,
            estimated_size_bytes=total_size,
            workers=workers,
            per_layer=per_layer,
            solver=solver,
        )
        self.last_stats = stats
        return stats

from repro.obs import registry as _telemetry

_telemetry.register("modegen_lookup", lookup_memo_stats, reset_lookup_memo_stats)
