"""Earliest-Deadline-First schedulability analysis and simulation.

Controllers run their assigned tasks under preemptive EDF (paper S3.9/S4).
Two analyses are provided:

* :func:`edf_schedulable` -- exact schedulability test for a periodic task
  set on one processor: the utilization bound (U <= 1) for implicit
  deadlines, and processor-demand analysis for constrained deadlines.
* :class:`EDFSimulator` -- a discrete-time job-level EDF simulator that
  executes a task set, reporting deadline misses and a preemption trace;
  used by the runtime (to order task executions within a round) and by the
  tests (to cross-validate the analytical tests).
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sched.task import Task

#: Bound on the schedulability memo (see :func:`edf_schedulable`).
EDF_MEMO_MAX = 8192

_EDF_MEMO: "OrderedDict[Tuple, bool]" = OrderedDict()
_EDF_MEMO_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def edf_memo_stats() -> Dict[str, int]:
    """A copy of the :func:`edf_schedulable` memo counters."""
    return dict(_EDF_MEMO_STATS)


def reset_edf_memo() -> None:
    _EDF_MEMO.clear()
    for key in _EDF_MEMO_STATS:
        _EDF_MEMO_STATS[key] = 0


def total_utilization(tasks: Iterable[Task]) -> float:
    return sum(t.utilization for t in tasks)


def _hyperperiod(tasks: Sequence[Task]) -> int:
    hp = 1
    for t in tasks:
        hp = hp * t.period_us // math.gcd(hp, t.period_us)
    return hp


def demand_bound(tasks: Sequence[Task], interval_us: int) -> int:
    """Processor demand of ``tasks`` in any interval of length ``interval_us``.

    dbf(t) = sum over tasks of max(0, floor((t - D_i)/T_i) + 1) * C_i.
    """
    demand = 0
    for task in tasks:
        jobs = (interval_us - task.deadline_us) // task.period_us + 1
        if jobs > 0:
            demand += jobs * task.wcet_us
    return demand


def edf_schedulable(tasks: Sequence[Task], utilization_cap: float = 1.0) -> bool:
    """Exact EDF schedulability on one processor.

    For implicit-deadline periodic tasks, EDF is schedulable iff total
    utilization <= 1 (Liu & Layland).  With constrained deadlines we use
    processor-demand analysis over the testing interval (up to the
    hyperperiod, checking each absolute deadline).  ``utilization_cap``
    lets callers reserve headroom (e.g. for the REBOUND protocol task).

    Placement engines probe the same candidate task sets over and over
    (once per admission trial per node), so results are memoized under the
    timing parameters -- ``(wcet, period, deadline)`` multiset plus the cap
    -- in a bounded LRU (``EDF_MEMO_MAX`` entries).
    """
    tasks = list(tasks)
    if not tasks:
        return True
    memo_key = (
        tuple(sorted((t.wcet_us, t.period_us, t.deadline_us) for t in tasks)),
        round(utilization_cap, 12),
    )
    cached = _EDF_MEMO.get(memo_key)
    if cached is not None:
        _EDF_MEMO.move_to_end(memo_key)
        _EDF_MEMO_STATS["hits"] += 1
        return cached
    _EDF_MEMO_STATS["misses"] += 1
    result = _edf_schedulable_uncached(tasks, utilization_cap)
    _EDF_MEMO[memo_key] = result
    while len(_EDF_MEMO) > EDF_MEMO_MAX:
        _EDF_MEMO.popitem(last=False)
    return result


def _edf_schedulable_uncached(tasks: Sequence[Task], utilization_cap: float) -> bool:
    u = total_utilization(tasks)
    if u > utilization_cap + 1e-12:
        return False
    if all(t.implicit_deadline for t in tasks):
        return True
    # Constrained deadlines: check dbf(t) <= t at every deadline up to the
    # hyperperiod (sufficient since U <= 1).
    horizon = _hyperperiod(tasks)
    checkpoints = set()
    for task in tasks:
        d = task.deadline_us
        while d <= horizon:
            checkpoints.add(d)
            d += task.period_us
    cap_scaled = utilization_cap
    for t in sorted(checkpoints):
        if demand_bound(tasks, t) > t * cap_scaled + 1e-9:
            return False
    return True


@dataclass
class JobRecord:
    """One executed (or missed) job in an EDF simulation."""

    task_id: int
    release_us: int
    deadline_us: int
    finish_us: Optional[int]

    @property
    def missed(self) -> bool:
        return self.finish_us is None or self.finish_us > self.deadline_us


@dataclass
class EDFResult:
    """Outcome of an EDF simulation."""

    jobs: List[JobRecord]
    preemptions: int

    @property
    def deadline_misses(self) -> List[JobRecord]:
        return [j for j in self.jobs if j.missed]

    @property
    def schedulable(self) -> bool:
        return not self.deadline_misses


class EDFSimulator:
    """Discrete-time preemptive EDF simulation of a periodic task set.

    Simulates with microsecond resolution using event-driven execution (no
    per-tick loop): at any instant the pending job with the earliest
    absolute deadline runs until it finishes or a new release preempts it.
    """

    def __init__(self, tasks: Sequence[Task]):
        self.tasks = list(tasks)

    def run(self, horizon_us: Optional[int] = None) -> EDFResult:
        if not self.tasks:
            return EDFResult(jobs=[], preemptions=0)
        if horizon_us is None:
            horizon_us = min(_hyperperiod(self.tasks), 10_000_000)
        releases: List[Tuple[int, int, int]] = []  # (time, task_idx, job_no)
        for idx, task in enumerate(self.tasks):
            t = 0
            job_no = 0
            while t < horizon_us:
                releases.append((t, idx, job_no))
                t += task.period_us
                job_no += 1
        releases.sort()
        # Ready queue: (abs_deadline, seq, task_idx, remaining_us, record)
        ready: List[Tuple[int, int, int, int, JobRecord]] = []
        jobs: List[JobRecord] = []
        preemptions = 0
        seq = 0
        now = 0
        rel_pos = 0
        running: Optional[Tuple[int, int, int, int, JobRecord]] = None
        while rel_pos < len(releases) or ready or running:
            # Admit releases at the current time.
            while rel_pos < len(releases) and releases[rel_pos][0] <= now:
                rel_time, idx, _job_no = releases[rel_pos]
                task = self.tasks[idx]
                record = JobRecord(
                    task_id=task.task_id,
                    release_us=rel_time,
                    deadline_us=rel_time + task.deadline_us,
                    finish_us=None,
                )
                jobs.append(record)
                heapq.heappush(ready, (record.deadline_us, seq, idx, task.wcet_us, record))
                seq += 1
                rel_pos += 1
            if running is not None:
                heapq.heappush(ready, running)
                running = None
            if not ready:
                if rel_pos < len(releases):
                    now = releases[rel_pos][0]
                    continue
                break
            deadline, sq, idx, remaining, record = heapq.heappop(ready)
            next_release = releases[rel_pos][0] if rel_pos < len(releases) else None
            finish_at = now + remaining
            if next_release is not None and next_release < finish_at:
                # Run until the release, then re-evaluate (possible preemption).
                ran = next_release - now
                now = next_release
                candidate = (deadline, sq, idx, remaining - ran, record)
                # Peek: if a newly released job has an earlier deadline, this
                # counts as a preemption (checked after admission).
                admitted_before = len(jobs)
                while rel_pos < len(releases) and releases[rel_pos][0] <= now:
                    rel_time, idx2, _ = releases[rel_pos]
                    task2 = self.tasks[idx2]
                    rec2 = JobRecord(
                        task_id=task2.task_id,
                        release_us=rel_time,
                        deadline_us=rel_time + task2.deadline_us,
                        finish_us=None,
                    )
                    jobs.append(rec2)
                    heapq.heappush(ready, (rec2.deadline_us, seq, idx2, task2.wcet_us, rec2))
                    seq += 1
                    rel_pos += 1
                if ready and ready[0][0] < candidate[0]:
                    preemptions += 1
                running = candidate
            else:
                now = finish_at
                record.finish_us = now
        return EDFResult(jobs=jobs, preemptions=preemptions)

from repro.obs import registry as _telemetry

_telemetry.register("edf_memo", edf_memo_stats, reset_edf_memo)
