"""Random workload generation per the paper's simulation setup (S5.1).

The paper generates applications as chains of 1-4 tasks with periods in
[30 ms, 70 ms], application CPU utilization in [0.4, 0.7] of a node, task
utilization consuming 25%-100% of the application utilization, execution
time = task utilization x period, and deadline = period.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.sched.task import (
    CRITICALITY_HIGH,
    CRITICALITY_LOW,
    CRITICALITY_MEDIUM,
    CRITICALITY_VERY_HIGH,
    MS,
    Flow,
    Task,
    Workload,
)

_CRITICALITIES = (
    CRITICALITY_LOW,
    CRITICALITY_MEDIUM,
    CRITICALITY_HIGH,
    CRITICALITY_VERY_HIGH,
)


class WorkloadGenerator:
    """Generates random chain workloads with the paper's S5.1 parameters.

    Attributes mirror the paper's ranges and can be overridden for ablations.
    """

    def __init__(
        self,
        seed: int = 0,
        period_range_ms: Tuple[int, int] = (30, 70),
        app_utilization_range: Tuple[float, float] = (0.4, 0.7),
        task_share_range: Tuple[float, float] = (0.25, 1.0),
        chain_length_range: Tuple[int, int] = (1, 4),
        dag_probability: float = 0.0,
    ):
        """``dag_probability`` > 0 turns some chains into diamonds/fan-outs
        (REBOUND supports DAG flows where Cascade supported only chains,
        S3.9); the paper's S5.1 sweep uses pure chains, hence default 0."""
        self._rng = random.Random(seed)
        self.period_range_ms = period_range_ms
        self.app_utilization_range = app_utilization_range
        self.task_share_range = task_share_range
        self.chain_length_range = chain_length_range
        self.dag_probability = dag_probability

    def flow(
        self,
        flow_id: int,
        first_task_id: int,
        criticality: Optional[int] = None,
        sensors: Sequence[int] = (),
        actuators: Sequence[int] = (),
    ) -> Flow:
        """Generate one random chain flow.

        The application utilization is drawn from ``app_utilization_range``;
        each task's utilization consumes a fraction of it drawn from
        ``task_share_range``, normalized so the chain sums to the drawn
        application utilization.
        """
        rng = self._rng
        length = rng.randint(*self.chain_length_range)
        period_us = rng.randint(*self.period_range_ms) * MS
        app_util = rng.uniform(*self.app_utilization_range)
        shares = [rng.uniform(*self.task_share_range) for _ in range(length)]
        scale = app_util / sum(shares)
        tasks: List[Task] = []
        for i, share in enumerate(shares):
            wcet = max(1, int(share * scale * period_us))
            tasks.append(
                Task(
                    task_id=first_task_id + i,
                    flow_id=flow_id,
                    name=f"F{flow_id}T{i}",
                    period_us=period_us,
                    wcet_us=min(wcet, period_us),
                    deadline_us=period_us,
                )
            )
        edges = self._edges_for(tasks)
        return Flow(
            flow_id=flow_id,
            name=f"app-{flow_id}",
            criticality=criticality
            if criticality is not None
            else rng.choice(_CRITICALITIES),
            tasks=tuple(tasks),
            edges=edges,
            sensors=tuple(sensors),
            actuators=tuple(actuators),
        )

    def _edges_for(self, tasks: List[Task]) -> Tuple[Tuple[int, int], ...]:
        """Chain edges, or -- with ``dag_probability`` -- a diamond: the
        middle tasks fan out from the first and merge into the last."""
        length = len(tasks)
        if length >= 4 and self._rng.random() < self.dag_probability:
            first, last = tasks[0].task_id, tasks[-1].task_id
            middle = [t.task_id for t in tasks[1:-1]]
            edges = [(first, m) for m in middle]
            edges += [(m, last) for m in middle]
            return tuple(edges)
        return tuple(
            (tasks[i].task_id, tasks[i + 1].task_id) for i in range(length - 1)
        )

    def workload(
        self,
        target_utilization: float,
        sensors: Sequence[int] = (),
        actuators: Sequence[int] = (),
    ) -> Workload:
        """Generate flows until total utilization reaches ``target_utilization``.

        The last flow is included even if it overshoots slightly, matching
        the paper's practice of packing systems with more tasks than they
        can handle and letting the scheduler drop the excess.
        """
        flows: List[Flow] = []
        next_task_id = 1
        utilization = 0.0
        flow_id = 0
        rng = self._rng
        while utilization < target_utilization:
            flow_sensors = (rng.choice(sensors),) if sensors else ()
            flow_actuators = (rng.choice(actuators),) if actuators else ()
            flow = self.flow(
                flow_id,
                next_task_id,
                sensors=flow_sensors,
                actuators=flow_actuators,
            )
            flows.append(flow)
            next_task_id += len(flow.tasks)
            utilization += flow.utilization
            flow_id += 1
        return Workload(flows)

    def workloads(self, count: int, target_utilization: float) -> List[Workload]:
        """Generate ``count`` independent workloads (paper: 75 for Fig. 9)."""
        return [self.workload(target_utilization) for _ in range(count)]
