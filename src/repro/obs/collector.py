"""Parent-side trace collection for the sharded engine.

The serial engine gets flight recording for free: every node shares the
process-wide recorder.  The sharded engine forks workers, and before this
module existed the worker initializer simply *detached* the recorder -- a
scale run was a blind run.  Now workers install a **shipping** recorder:
each round the engine drains the worker's bounded ring and returns the
events piggybacked on the round batch, packed with the same columnar
frame + interning + zlib machinery the delivery/intent planes use
(:class:`repro.net.frames.EventWriter`).  The :class:`TraceCollector`
absorbs those batches into the parent recorder, so ``tail()`` dumps,
JSONL exports, and the timeline analyzer see one merged stream.

Ordering.  Events are *globally* ordered by ``(round, node, seq)`` -- the
key the recorder already stamps -- with no cross-process clock.  The subtle
part is keeping ``seq`` numbering identical to the serial engine's when a
node's events for one round are emitted on **both** sides of the process
boundary (worker-side protocol emits, parent-side replay emits such as
chaos impairments, worker-side deferred-call emits next round).  The
engine max-merges the per-node counters across the boundary at each
hand-off (see ``FlightRecorder.merge_seq``); because the round barrier
means only one side emits for a node at a time, max-merge reproduces the
serial numbering exactly.  ``tests/test_trace_collector.py`` and the
bench-scale identity cells pin merged-JSONL == serial-JSONL byte equality.

Transport is codec-tagged like the intent plane: ``("frames", buffer)``
normally, ``("pickle", blob)`` when an event does not fit the columnar
layout (synthetic node ids, oversized kinds).
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.frames import EventWriter, unpack_events
from repro.obs.events import TraceEvent
from repro.obs.ioutil import atomic_open
from repro.obs.recorder import FlightRecorder

#: codec tags for a packed event batch.
CODEC_FRAMES = "frames"
CODEC_PICKLE = "pickle"

EventBatch = Tuple[str, bytes]


def _frameable(event: TraceEvent) -> bool:
    return (
        0 <= event.node <= 0xFFFFFFFF
        and 0 <= event.kind <= 0xFF
        and 0 <= event.round_no <= 0xFFFFFFFF
        and 0 <= event.seq <= 0xFFFFFFFF
    )


def canonical_sorted(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Events in the canonical global order ``(round, node, seq)``.

    ``sorted`` is stable, so same-key events (which only a buggy producer
    would emit) keep arrival order instead of flapping.
    """
    return sorted(events, key=TraceEvent.sort_key)


def canonical_jsonl(events: Sequence[TraceEvent]) -> str:
    """The canonical JSONL rendering: sorted events, sorted keys.

    Both sides of the identity comparison (serial recorder, sharded
    merged stream) render through this one function, so "byte-equal after
    canonical sort" is a comparison of equal-length strings, not of two
    ad-hoc serializers.
    """
    return "".join(
        json.dumps(event.as_dict(), sort_keys=True) + "\n"
        for event in canonical_sorted(events)
    )


def pack_events(
    events: Sequence[TraceEvent], frame_ipc: bool = True
) -> Tuple[EventBatch, int, int]:
    """Pack drained events for the wire.

    Returns ``((codec, payload), raw_bytes, interned_hits)``.  Events are
    packed in canonical order so the round/node columns RLE well and so the
    payload bytes are deterministic.  ``data`` dicts are encoded as
    canonical JSON (sorted keys, no whitespace): equal dicts -- the common
    case for heartbeat/audit chatter -- intern to a single frame.
    """
    ordered = canonical_sorted(events)
    if frame_ipc and all(_frameable(e) for e in ordered):
        writer = EventWriter()
        for event in ordered:
            blob = json.dumps(
                event.data, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            writer.add(
                event.node, event.round_no, event.seq, event.kind, blob
            )
        return (
            (CODEC_FRAMES, writer.finish()),
            writer.raw_bytes,
            writer.interned_hits,
        )
    payload = pickle.dumps(
        [(e.kind, e.node, e.round_no, e.seq, e.data) for e in ordered],
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return (CODEC_PICKLE, payload), len(payload), 0


def unpack_event_batch(batch: EventBatch) -> List[TraceEvent]:
    """Decode a packed batch back into :class:`TraceEvent` objects."""
    codec, payload = batch
    if codec == CODEC_FRAMES:
        return [
            TraceEvent(kind, node, round_no, seq, json.loads(blob))
            for node, round_no, seq, kind, blob in unpack_events(payload)
        ]
    if codec == CODEC_PICKLE:
        return [
            TraceEvent(kind, node, round_no, seq, data)
            for kind, node, round_no, seq, data in pickle.loads(payload)
        ]
    raise ValueError(f"unknown event batch codec {codec!r}")


class TraceCollector:
    """Merges worker-shipped event batches into the parent recorder.

    The collector does not own a separate store: absorbed events land in
    the parent :class:`FlightRecorder` ring, so every existing consumer
    (``tail()`` violation dumps, exports, the timeline analyzer) sees the
    merged stream without caring which process an event came from.
    """

    def __init__(self, recorder: FlightRecorder):
        self.recorder = recorder
        self.batches = 0
        self.worker_events = 0
        self.event_bytes = 0
        self.event_raw_bytes = 0
        self.interned_hits = 0
        self.pickle_batches = 0
        #: last cumulative ring-eviction count shipped per shard.
        self._worker_dropped: Dict[int, int] = {}

    def ingest(
        self,
        shard: int,
        batch: Optional[EventBatch],
        seqs: Optional[Dict[int, int]] = None,
        dropped: int = 0,
        raw_bytes: int = 0,
        interned: int = 0,
    ) -> int:
        """Absorb one shard's drained events + seq counters for a round.

        Must run *before* the engine replays that shard's send intents:
        replay-time emits (chaos impairments) need the max-merged counters
        to number exactly as the serial engine would have.  Returns the
        number of events absorbed.
        """
        count = 0
        if batch is not None:
            events = unpack_event_batch(batch)
            self.recorder.absorb(events)
            count = len(events)
            self.batches += 1
            self.worker_events += count
            self.event_bytes += len(batch[1])
            self.event_raw_bytes += raw_bytes
            self.interned_hits += interned
            if batch[0] == CODEC_PICKLE:
                self.pickle_batches += 1
        if seqs:
            self.recorder.merge_seq(seqs)
        self._worker_dropped[shard] = dropped
        return count

    @property
    def worker_dropped(self) -> int:
        """Events evicted from worker rings before they could ship."""
        return sum(self._worker_dropped.values())

    def merged_events(self) -> List[TraceEvent]:
        """The recorder's buffered events in canonical global order."""
        return canonical_sorted(self.recorder.events())

    def export_jsonl(self, path: str) -> int:
        """Canonically-sorted JSONL export of the merged stream."""
        events = self.merged_events()
        with atomic_open(path) as fh:
            fh.write(canonical_jsonl(events))
        return len(events)

    def stats(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "worker_events": self.worker_events,
            "event_bytes": self.event_bytes,
            "event_raw_bytes": self.event_raw_bytes,
            "interned_hits": self.interned_hits,
            "pickle_batches": self.pickle_batches,
            "worker_dropped": self.worker_dropped,
        }

    def reset(self) -> None:
        self.batches = 0
        self.worker_events = 0
        self.event_bytes = 0
        self.event_raw_bytes = 0
        self.interned_hits = 0
        self.pickle_batches = 0
        self._worker_dropped.clear()
