"""Per-stage round profiler for the sharded engine.

``BENCH_scale.json`` used to report one wall-clock number per sweep,
which says *that* the sharded engine is slow but not *where*.  The
:class:`RoundProfiler` decomposes every engine round into five stages so
residual overhead is attributed, not guessed:

* ``encode`` -- building the per-shard wire buffers in the parent plus the
  workers' intent-frame encodes;
* ``ipc``    -- submitting batches, waiting on worker results, and the
  workers' frame decodes (everything the process boundary costs);
* ``step``   -- actual protocol work: worker receive/end phases plus the
  parent-resident nodes' phases;
* ``replay`` -- unpacking intent buffers and replaying sends through the
  real network path;
* ``merge``  -- folding summaries and telemetry snapshots back in.

Stage attribution across processes is approximate by construction:
workers overlap the parent on real multicore hardware, and even on one
core the OS timeshares the parent's phases against worker compute, so
wall-clock intervals can double-count.  ``ipc`` is the parent's blocking
wait minus the workers' self-reported compute, clamped at zero; the sum
of stages tracks, but does not exactly equal, the engine's measured
round time.  The decomposition answers *where* residual overhead lives,
not *how long* the round took -- the sweep wall-clocks answer that.

The profiler registers with the telemetry registry (component
``round_profile``), is exported per sweep in ``BENCH_scale.json``, and
renders as Perfetto/Chrome-trace duration spans via :meth:`chrome_spans`
(feed them to ``FlightRecorder.export_chrome_trace(phase_spans=...)`` or
dump them standalone).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

#: Stage names in display order; every record carries all of them.
STAGES = ("encode", "ipc", "step", "replay", "merge")

#: Synthetic Chrome-trace pid for engine spans (simulated nodes use their
#: node id as pid; this sits far outside any plausible topology).
ENGINE_TRACE_PID = 10**9


class RoundProfiler:
    """Accumulates per-stage wall-clock seconds, round by round.

    Keeps bounded per-round history (for span export) plus running totals
    (for telemetry snapshots, which must stay O(1) per round).
    """

    def __init__(self, history: int = 4096, label: str = "sharded"):
        if history <= 0:
            raise ValueError("profiler history must be positive")
        #: which engine produced these rounds; carried into the Perfetto
        #: process row ("round engine [sharded]") and every span's args so
        #: overlaid traces from different engines stay distinguishable.
        self.label = label
        self._history: Deque[Tuple[int, Dict[str, float]]] = deque(
            maxlen=history
        )
        self.totals: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.rounds = 0

    def record_round(self, round_no: int, **stage_seconds: float) -> None:
        unknown = set(stage_seconds) - set(STAGES)
        if unknown:
            raise ValueError(f"unknown profile stages: {sorted(unknown)}")
        record = {
            stage: float(stage_seconds.get(stage, 0.0)) for stage in STAGES
        }
        for stage, seconds in record.items():
            self.totals[stage] += seconds
        self._history.append((round_no, record))
        self.rounds += 1

    # -- telemetry ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        total = sum(self.totals.values())
        stats: Dict[str, Any] = {
            f"{stage}_s": self.totals[stage] for stage in STAGES
        }
        stats["total_s"] = total
        stats["rounds"] = self.rounds
        stats["mean_round_ms"] = (
            1000.0 * total / self.rounds if self.rounds else 0.0
        )
        return stats

    def reset(self) -> None:
        self._history.clear()
        self.totals = {stage: 0.0 for stage in STAGES}
        self.rounds = 0

    # -- exporters ------------------------------------------------------------

    def chrome_spans(self, round_us: int = 1000) -> List[Dict[str, Any]]:
        """Chrome trace-event duration spans, one per stage per recorded
        round, on a dedicated "round engine" trace process.

        Stage durations are scaled so each round's spans exactly fill its
        ``round_us`` window -- aligning with the flight recorder's
        round-to-microseconds mapping -- while preserving the stages'
        relative wall-clock shares.
        """
        if not self._history:
            return []
        spans: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": ENGINE_TRACE_PID,
                "tid": 0,
                "args": {"name": f"round engine [{self.label}]"},
            },
            {
                "ph": "M",
                "name": "thread_name",
                "pid": ENGINE_TRACE_PID,
                "tid": 0,
                "args": {"name": "stages"},
            },
        ]
        for round_no, record in self._history:
            total = sum(record.values())
            if total <= 0:
                continue
            cursor = float(round_no * round_us)
            for stage in STAGES:
                width = record[stage] / total * round_us
                if width <= 0:
                    continue
                spans.append(
                    {
                        "ph": "X",
                        "name": stage,
                        "cat": "engine",
                        "pid": ENGINE_TRACE_PID,
                        "tid": 0,
                        "ts": cursor,
                        "dur": max(1.0, width),
                        "args": {
                            "round": round_no,
                            "engine": self.label,
                            "wall_ms": 1000.0 * record[stage],
                        },
                    }
                )
                cursor += width
        return spans
