"""The flight-recorder event schema: typed, allocation-light protocol events.

Every layer of the stack reports what it did through a small set of *stable
integer event kinds* (PeerReview-style tamper-evident logs and Dapper-style
request tracing both rest on cheap, structured, always-on event records; see
PAPERS.md).  An event is (kind, node, round, seq, data):

* ``kind`` -- one of the ``EV_*`` integers below.  The integers are part of
  the trace format and MUST NOT be renumbered; add new kinds at the end.
* ``node`` -- the node the event happened *at* (the observer, not the
  subject: an ``EV_LFD_ISSUED`` at node 3 against link (3, 7) has
  ``node == 3``).
* ``round`` -- the protocol round the event belongs to.
* ``seq`` -- a per-node, per-round sequence number assigned by the
  recorder, so events at one node within one round are totally ordered
  even after a trip through JSON.
* ``data`` -- a small JSON-safe dict of kind-specific fields (see
  ``EVENT_FIELDS``).

This module is dependency-free (stdlib only) so every protocol layer can
import it without cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Trace-format schema version stamped into every exported record.  Bump it
#: when a change would make old consumers misread new traces (renaming a
#: field, changing a field's meaning); adding new event kinds at the end is
#: backward-compatible and does NOT bump the version.
EVENT_SCHEMA_VERSION = 1

#: Versions this build can read.  ``validate_record`` rejects records with a
#: missing or unknown version: a trace either declares a schema we speak or
#: it is not trusted (telemetry shipped across process/machine boundaries
#: must be self-describing).
SUPPORTED_SCHEMA_VERSIONS = frozenset({1})

# -- event kinds (stable wire integers; never renumber) -------------------------

EV_HEARTBEAT_SEND = 1  #: a node signed and queued its own heartbeat
EV_HEARTBEAT_VERIFY = 2  #: a received heartbeat record's signature was checked
EV_HEARTBEAT_STORED = 3  #: the heartbeat store accepted/deduped/conflicted a record
EV_LFD_ISSUED = 4  #: an omission was observed; a link failure declared
EV_POM_CREATED = 5  #: a proof of misbehavior was minted locally
EV_EVIDENCE_APPLIED = 6  #: one evidence item entered a node's evidence set
EV_EPOCH_ADVANCE = 7  #: a node's evidence digest (fault epoch) changed
EV_MODE_SELECTED = 8  #: a node looked up and adopted a mode
EV_AUDIT_CHALLENGE = 9  #: a replica began auditing one execution round
EV_AUDIT_RESPONSE = 10  #: the audit finished (with or without a PoM)
EV_CHAOS_IMPAIRMENT = 11  #: the chaos layer impaired one message
EV_FAULT_INJECTED = 12  #: ground truth: an adversary/link fault activated
EV_QUOTA_DROP = 13  #: admission control dropped over-quota traffic unverified
EV_PERSIST_EVIDENCE = 14  #: one evidence item appended to a node's chained durable log
EV_PERSIST_SNAPSHOT = 15  #: a consistent snapshot of a node's state was sealed
EV_PERSIST_RESTORE = 16  #: a node restored from its durable store (crash-restart-rejoin)
EV_AUDIT_BEACON = 17  #: the periodic state auditor digested a node's local state
EV_AUDIT_DIVERGENCE = 18  #: an audit beacon failed a local/quorum consistency check
EV_AUDIT_RESYNC = 19  #: a diverged node resynced from quorum + durable verified prefix
EV_TREE_REFRESH = 20  #: the mode tree grew a subtree online for an out-of-tree pattern

EVENT_NAMES: Dict[int, str] = {
    EV_HEARTBEAT_SEND: "heartbeat-send",
    EV_HEARTBEAT_VERIFY: "heartbeat-verify",
    EV_HEARTBEAT_STORED: "heartbeat-stored",
    EV_LFD_ISSUED: "lfd-issued",
    EV_POM_CREATED: "pom-created",
    EV_EVIDENCE_APPLIED: "evidence-applied",
    EV_EPOCH_ADVANCE: "epoch-advance",
    EV_MODE_SELECTED: "mode-selected",
    EV_AUDIT_CHALLENGE: "audit-challenge",
    EV_AUDIT_RESPONSE: "audit-response",
    EV_CHAOS_IMPAIRMENT: "chaos-impairment",
    EV_FAULT_INJECTED: "fault-injected",
    EV_QUOTA_DROP: "quota-drop",
    EV_PERSIST_EVIDENCE: "persist-evidence",
    EV_PERSIST_SNAPSHOT: "persist-snapshot",
    EV_PERSIST_RESTORE: "persist-restore",
    EV_AUDIT_BEACON: "audit-beacon",
    EV_AUDIT_DIVERGENCE: "audit-divergence",
    EV_AUDIT_RESYNC: "audit-resync",
    EV_TREE_REFRESH: "tree-refresh",
}

#: data fields each kind may carry (documentation + JSONL validation).
#: Fields are optional unless listed in EVENT_REQUIRED_FIELDS.
EVENT_FIELDS: Dict[int, Tuple[str, ...]] = {
    EV_HEARTBEAT_SEND: ("delta",),
    EV_HEARTBEAT_VERIFY: ("origin", "hb_round", "ok"),
    EV_HEARTBEAT_STORED: ("origin", "hb_round", "status"),
    EV_LFD_ISSUED: ("link",),
    EV_POM_CREATED: ("accused", "pom", "task"),
    EV_EVIDENCE_APPLIED: ("item", "accused", "link", "issuer", "blessed"),
    EV_EPOCH_ADVANCE: ("digest", "items", "pattern_nodes", "pattern_links"),
    EV_MODE_SELECTED: ("failed_nodes", "failed_links", "placement_hosts"),
    EV_AUDIT_CHALLENGE: ("task", "copy", "exec_round"),
    EV_AUDIT_RESPONSE: ("task", "copy", "exec_round", "poms"),
    EV_CHAOS_IMPAIRMENT: ("type", "link", "delay"),
    EV_FAULT_INJECTED: ("target", "behavior", "link"),
    EV_QUOTA_DROP: ("sender", "kind"),
    EV_PERSIST_EVIDENCE: ("item", "enc"),
    EV_PERSIST_SNAPSHOT: ("root", "log_count", "snapshot_round"),
    EV_PERSIST_RESTORE: ("snapshot_round", "replayed", "tampered", "reason"),
    EV_AUDIT_BEACON: ("digest", "items", "ok", "issues"),
    EV_AUDIT_DIVERGENCE: ("issues", "digest"),
    EV_AUDIT_RESYNC: ("merged", "replayed", "repaired", "resolved"),
    EV_TREE_REFRESH: (
        "scenario_nodes",
        "scenario_links",
        "added_modes",
        "holding_depth",
        "elapsed_ms",
    ),
}

EVENT_REQUIRED_FIELDS: Dict[int, Tuple[str, ...]] = {
    EV_HEARTBEAT_SEND: ("delta",),
    EV_HEARTBEAT_VERIFY: ("origin", "ok"),
    EV_HEARTBEAT_STORED: ("origin", "status"),
    EV_LFD_ISSUED: ("link",),
    EV_POM_CREATED: ("accused", "pom"),
    EV_EVIDENCE_APPLIED: ("item",),
    EV_EPOCH_ADVANCE: ("digest",),
    EV_MODE_SELECTED: ("failed_nodes", "failed_links"),
    EV_AUDIT_CHALLENGE: ("task", "exec_round"),
    EV_AUDIT_RESPONSE: ("task", "exec_round"),
    EV_CHAOS_IMPAIRMENT: ("type",),
    EV_FAULT_INJECTED: (),
    EV_QUOTA_DROP: ("sender", "kind"),
    EV_PERSIST_EVIDENCE: ("enc",),
    EV_PERSIST_SNAPSHOT: ("root",),
    EV_PERSIST_RESTORE: ("tampered",),
    EV_AUDIT_BEACON: ("ok",),
    EV_AUDIT_DIVERGENCE: ("issues",),
    EV_AUDIT_RESYNC: (),
    EV_TREE_REFRESH: ("added_modes",),
}


class TraceEvent:
    """One recorded protocol event (see module docstring for the fields).

    Deliberately ``__slots__``-only: the recorder allocates one of these per
    event on the hot path, so there is no ``__dict__`` and no dataclass
    machinery.
    """

    __slots__ = ("kind", "node", "round_no", "seq", "data")

    def __init__(
        self,
        kind: int,
        node: int,
        round_no: int,
        seq: int,
        data: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.node = node
        self.round_no = round_no
        self.seq = seq
        self.data = data if data is not None else {}

    @property
    def name(self) -> str:
        return EVENT_NAMES.get(self.kind, f"unknown-{self.kind}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": EVENT_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "node": self.node,
            "round": self.round_no,
            "seq": self.seq,
            "data": self.data,
        }

    def sort_key(self) -> Tuple[int, int, int]:
        """The canonical global ordering key: ``(round, node, seq)``.

        ``seq`` totally orders one node's events within one round; the
        ``(round, node)`` prefix makes the merged multi-process stream
        deterministic without any cross-process clock.
        """
        return (self.round_no, self.node, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.name}, node={self.node}, "
            f"round={self.round_no}, seq={self.seq}, data={self.data})"
        )


# -- schema validation ----------------------------------------------------------


def validate_record(record: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if a JSONL record does not match the schema."""
    if not isinstance(record, dict):
        raise ValueError(f"event record must be a dict, got {type(record).__name__}")
    schema = record.get("schema")
    if schema is None:
        raise ValueError(
            "event record carries no schema version "
            f"(this build writes schema {EVENT_SCHEMA_VERSION})"
        )
    if schema not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported event schema version {schema!r} "
            f"(supported: {sorted(SUPPORTED_SCHEMA_VERSIONS)})"
        )
    for field, typ in (("kind", int), ("node", int), ("round", int), ("seq", int)):
        value = record.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"event field {field!r} must be an int, got {value!r}")
        del typ
    kind = record["kind"]
    if kind not in EVENT_NAMES:
        raise ValueError(f"unknown event kind {kind}")
    if record["round"] < 0 or record["seq"] < 0:
        raise ValueError("round and seq must be non-negative")
    name = record.get("name")
    if name is not None and name != EVENT_NAMES[kind]:
        raise ValueError(f"name {name!r} does not match kind {kind}")
    data = record.get("data", {})
    if not isinstance(data, dict):
        raise ValueError("event data must be a dict")
    allowed = set(EVENT_FIELDS[kind])
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(
            f"{EVENT_NAMES[kind]} carries unknown data field(s) {sorted(unknown)}"
        )
    missing = set(EVENT_REQUIRED_FIELDS[kind]) - set(data)
    if missing:
        raise ValueError(
            f"{EVENT_NAMES[kind]} is missing required field(s) {sorted(missing)}"
        )


def validate_jsonl(path: str) -> int:
    """Validate a JSONL trace file; returns the number of valid records."""
    count = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                validate_record(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            count += 1
    return count


def events_from_dicts(records: Iterable[Dict[str, Any]]) -> List[TraceEvent]:
    """Rehydrate :class:`TraceEvent` objects from JSONL/`as_dict` records."""
    return [
        TraceEvent(
            kind=r["kind"],
            node=r["node"],
            round_no=r["round"],
            seq=r["seq"],
            data=dict(r.get("data", {})),
        )
        for r in records
    ]
