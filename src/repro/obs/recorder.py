"""The flight recorder: a bounded ring buffer of protocol events.

One :class:`FlightRecorder` observes a whole process (all simulated nodes
share it, exactly like the process-wide verification cache).  It is **off
by default**: instrumented code guards every emit with::

    rec = _flight.active          # one module-attribute load
    if rec is not None:
        rec.emit(...)             # event dict is only built past this line

so a disabled recorder costs a single attribute load and ``None`` check per
emit site -- no event object, no dict, no string is ever constructed.  The
recorder only *observes*; installing it can never change a protocol
decision (transcripts are byte-identical with it on or off, pinned by
``tests/test_obs_recorder.py``).

The buffer is a ``deque(maxlen=capacity)`` ring: long chaos campaigns keep
only the trailing window, which is exactly what a violation repro needs.
Exports: JSONL (one event per line, schema-validated by
``repro.obs.events.validate_jsonl``) and the Chrome trace-event format that
``chrome://tracing`` and Perfetto load directly (each simulated node is
rendered as a process; rounds map to microseconds via ``round_us``).
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import (
    EVENT_NAMES,
    EV_AUDIT_DIVERGENCE,
    EV_AUDIT_RESYNC,
    EV_MODE_SELECTED,
    EV_TREE_REFRESH,
    TraceEvent,
)
from repro.obs.ioutil import atomic_open

#: The process-wide active recorder, or None (disabled).  Instrumented code
#: reads this attribute on every emit site; assign via install()/uninstall().
active: Optional["FlightRecorder"] = None

DEFAULT_CAPACITY = 65536


class FlightRecorder:
    """A bounded, process-wide protocol event recorder.

    Args:
        capacity: ring-buffer size in events; the oldest events are evicted
            once the buffer is full (``dropped`` counts evictions).
        round_no: the starting round (a recorder attached mid-run adopts the
            system's current round via :meth:`begin_round`).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, round_no: int = 0):
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.capacity = capacity
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._round = round_no
        #: per-node sequence counters for the *current* round.
        self._seq: Dict[int, int] = {}
        self.emitted = 0
        #: events removed via :meth:`drain` (shipped, not lost).
        self.shipped = 0

    # -- installation --------------------------------------------------------

    def install(self) -> "FlightRecorder":
        """Make this the process-wide active recorder."""
        global active
        active = self
        return self

    def uninstall(self) -> None:
        """Deactivate (only if this recorder is the active one)."""
        global active
        if active is self:
            active = None

    @property
    def installed(self) -> bool:
        return active is self

    @contextmanager
    def recording(self) -> Iterator["FlightRecorder"]:
        """``with recorder.recording():`` -- install for the block only."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # -- recording -----------------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        """Advance the recorder's round clock (resets per-node sequences)."""
        if round_no != self._round:
            self._round = round_no
            self._seq.clear()

    @property
    def current_round(self) -> int:
        return self._round

    def emit(
        self,
        kind: int,
        node: int,
        data: Optional[Dict[str, Any]] = None,
        round_no: Optional[int] = None,
    ) -> TraceEvent:
        """Record one event; returns it (mainly for tests)."""
        r = self._round if round_no is None else round_no
        seq = self._seq.get(node, 0)
        self._seq[node] = seq + 1
        event = TraceEvent(kind, node, r, seq, data)
        self._events.append(event)
        self.emitted += 1
        return event

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        # An *empty* recorder must not read as "no recorder": emit sites and
        # drivers test `if recorder:` for presence, not for buffered events.
        return True

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (emitted beyond capacity).

        Drained (shipped) and absorbed events are accounted for so a
        shipping recorder that never overflows reports zero."""
        return self.emitted - self.shipped - len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def tail(self, n: int = 120) -> List[Dict[str, Any]]:
        """The last ``n`` events as JSON-safe dicts (violation repro dumps)."""
        if n <= 0:
            return []
        window = list(self._events)[-n:]
        return [e.as_dict() for e in window]

    def clear(self) -> None:
        self._events.clear()
        self._seq.clear()
        self.emitted = 0
        self.shipped = 0

    # -- cross-process shipping ----------------------------------------------
    #
    # The sharded engine's workers run a *shipping* recorder: each round the
    # engine drains the worker ring into event frames riding the round batch,
    # and the parent-side TraceCollector absorbs them.  ``seq`` counters are
    # NOT part of the drained payload -- they are synchronized separately
    # (max-merge in both directions) so that replay-time emits in the parent
    # and deferred-call emits in the worker number exactly as the serial
    # engine would.

    def drain(self) -> List[TraceEvent]:
        """Remove and return all buffered events (for shipping).

        Leaves ``emitted`` and the per-node ``seq`` counters untouched:
        draining is transport, not a reset -- subsequent emits in the same
        round must keep numbering where they left off.
        """
        events = list(self._events)
        self._events.clear()
        self.shipped += len(events)
        return events

    def seq_snapshot(self) -> Dict[int, int]:
        """Copy of the per-node sequence counters for the current round."""
        return dict(self._seq)

    def merge_seq(self, counters: Dict[int, int]) -> None:
        """Max-merge foreign per-node sequence counters into this round's.

        Each side of a process boundary only ever *under*-counts (it missed
        the other side's emits), so taking the max per node is exact as long
        as the two sides never emit for the same node concurrently -- which
        the round barrier guarantees.
        """
        for node, count in counters.items():
            if count > self._seq.get(node, 0):
                self._seq[node] = count

    def absorb(self, events: List[TraceEvent]) -> None:
        """Append already-sequenced events (shipped from another process).

        Does not touch the ``seq`` counters: the events carry their final
        numbers.  Counts toward ``emitted`` so ``dropped`` stays honest when
        the ring evicts.
        """
        self._events.extend(events)
        self.emitted += len(events)

    # -- exporters -----------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the event count.

        Missing parent directories are created and the file lands via
        temp-and-rename, so a crash mid-export can never leave a torn
        (half-written) trace behind.
        """
        count = 0
        with atomic_open(path) as fh:
            for event in self._events:
                fh.write(json.dumps(event.as_dict(), sort_keys=True))
                fh.write("\n")
                count += 1
        return count

    def export_chrome_trace(
        self, path: str, round_us: int = 1000, phase_spans: Optional[List[Dict[str, Any]]] = None
    ) -> int:
        """Write the Chrome trace-event format (``chrome://tracing``, Perfetto).

        Each simulated node becomes a trace *process* (``pid``); events are
        instants at ``round * round_us + seq`` microseconds so intra-round
        order is preserved.  Mode selections additionally close/open a
        duration span per node showing which mode the node sat in.
        ``phase_spans`` (from the timeline analyzer) are appended as
        duration events so the detection/evidence/switch decomposition is
        visible directly in the viewer.
        """
        trace_events: List[Dict[str, Any]] = []
        nodes = sorted({e.node for e in self._events})
        for node in nodes:
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": node,
                    "tid": 0,
                    # pid -1 carries system-wide events (online tree
                    # refreshes) not attributable to a single node.
                    "args": {"name": "system" if node < 0 else f"node {node}"},
                }
            )
            # Named rows (Perfetto renders bare tids as "Thread N" otherwise):
            # tid 0 instants, tid 1 mode spans, tid 2 recovery-phase spans,
            # tid 3 stabilize spans (audit divergence -> resync).
            for tid, row in (
                (0, "protocol"), (1, "mode"), (2, "recovery"),
                (3, "stabilize"),
            ):
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": node,
                        "tid": tid,
                        "args": {"name": row},
                    }
                )
        open_modes: Dict[int, Dict[str, Any]] = {}
        open_resyncs: Dict[int, Dict[str, Any]] = {}
        for event in self._events:
            ts = event.round_no * round_us + event.seq
            trace_events.append(
                {
                    "ph": "i",
                    "name": EVENT_NAMES.get(event.kind, str(event.kind)),
                    "cat": "protocol",
                    "pid": event.node,
                    "tid": 0,
                    "ts": ts,
                    "s": "t",
                    "args": event.data,
                }
            )
            if event.kind == EV_AUDIT_DIVERGENCE:
                # Divergence opens a stabilize span; the resolving resync
                # closes it, so the audit -> detect -> resync convergence
                # window is visible as one bar per incident.
                open_resyncs.setdefault(
                    event.node,
                    {
                        "ph": "X",
                        "name": "resync " + ",".join(
                            event.data.get("issues", [])
                        ),
                        "cat": "stabilize",
                        "pid": event.node,
                        "tid": 3,
                        "ts": ts,
                        "args": event.data,
                    },
                )
            elif event.kind == EV_AUDIT_RESYNC and event.data.get("resolved"):
                span = open_resyncs.pop(event.node, None)
                if span is not None:
                    span["dur"] = max(1, ts - span["ts"])
                    span["args"] = {**span["args"], **event.data}
                    trace_events.append(span)
            elif event.kind == EV_TREE_REFRESH:
                elapsed_ms = float(event.data.get("elapsed_ms", 0.0))
                trace_events.append(
                    {
                        "ph": "X",
                        "name": "tree refresh",
                        "cat": "stabilize",
                        "pid": event.node,
                        "tid": 3,
                        "ts": ts,
                        "dur": max(1, int(elapsed_ms * 1000)),
                        "args": event.data,
                    }
                )
            if event.kind == EV_MODE_SELECTED:
                previous = open_modes.pop(event.node, None)
                if previous is not None:
                    previous["dur"] = max(1, ts - previous["ts"])
                    trace_events.append(previous)
                open_modes[event.node] = {
                    "ph": "X",
                    "name": "mode " + ",".join(
                        map(str, event.data.get("failed_nodes", []))
                    ),
                    "cat": "mode",
                    "pid": event.node,
                    "tid": 1,
                    "ts": ts,
                    "args": event.data,
                }
        last_ts = 0
        if self._events:
            last = self._events[-1]
            last_ts = (last.round_no + 1) * round_us
        for span in open_modes.values():
            span["dur"] = max(1, last_ts - span["ts"])
            trace_events.append(span)
        for span in open_resyncs.values():
            # Still-unresolved divergences run to the end of the trace.
            span["dur"] = max(1, last_ts - span["ts"])
            trace_events.append(span)
        for span in phase_spans or []:
            trace_events.append(dict(span))
        with atomic_open(path) as fh:
            json.dump(
                {"traceEvents": trace_events, "displayTimeUnit": "ms"}, fh
            )
            fh.write("\n")
        return len(trace_events)
