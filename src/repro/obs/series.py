"""Per-round metrics time-series with OpenMetrics / JSON / Perfetto export.

The flight recorder answers "what happened" (discrete events); this module
answers "how much, over time": once per round it samples every numeric
counter in the telemetry registry (merged across sharded-engine workers
via ``system.fastpath_stats()``) plus a handful of derived system gauges
-- suspected nodes, evidence-store high-water marks against their quota
caps, and the BTR monitor's detection -> evidence -> switch phase -- into
a bounded columnar store.

Storage is numpy ``float64`` columns when numpy is importable (same
pattern as the bitset heartbeat stores) and plain lists otherwise; either
way the store is a ring bounded by ``capacity`` samples.  A series that
appears mid-run is NaN-backfilled so every column always has one value
per retained sample.

Exporters:

* :meth:`MetricsTimeSeries.to_openmetrics` -- the text exposition format
  scraped by Prometheus-family collectors (gauge semantics: the latest
  retained sample), terminated by ``# EOF``.
* :meth:`MetricsTimeSeries.to_json` -- full retained history.
* :meth:`MetricsTimeSeries.counter_tracks` -- Perfetto counter events
  (``ph: "C"``) rendering each series as a track next to the recorder's
  span/instant rows.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional

try:  # numpy backs the columns when present; lists otherwise.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

#: Perfetto pid for the metrics counter tracks (the round engine uses
#: 10**9; node pids are small ints).
METRICS_TRACE_PID = 10**9 + 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(series: str) -> str:
    """An OpenMetrics-legal name: ``rebound_`` + sanitized series name."""
    name = _NAME_RE.sub("_", series)
    if name and name[0].isdigit():
        name = "_" + name
    return "rebound_" + name


class _Column:
    """One bounded float column (numpy-backed, list fallback)."""

    __slots__ = ("_data", "_n")

    def __init__(self, prefill: int = 0):
        if _np is not None:
            self._data = _np.full(max(64, prefill), _np.nan, dtype=_np.float64)
            self._n = prefill
        else:
            self._data = [math.nan] * prefill
            self._n = prefill

    def append(self, value: float) -> None:
        if _np is not None:
            if self._n == len(self._data):
                grown = _np.full(len(self._data) * 2, _np.nan, dtype=_np.float64)
                grown[: self._n] = self._data[: self._n]
                self._data = grown
            self._data[self._n] = value
        else:
            self._data.append(value)
        self._n += 1

    def drop_front(self, count: int) -> None:
        if count <= 0:
            return
        if _np is not None:
            kept = self._data[count : self._n].copy()
            self._n = len(kept)
            self._data = _np.full(
                max(64, self._n), _np.nan, dtype=_np.float64
            )
            self._data[: self._n] = kept
        else:
            del self._data[:count]
            self._n = len(self._data)

    def values(self) -> List[float]:
        if _np is not None:
            return [float(v) for v in self._data[: self._n]]
        return list(self._data)

    def last(self) -> float:
        if self._n == 0:
            return math.nan
        if _np is not None:
            return float(self._data[self._n - 1])
        return self._data[-1]

    def __len__(self) -> int:
        return self._n


def flatten_stats(stats: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    """``{component: {key: value}}`` -> ``{"component.key": float}`` for
    every numeric scalar (bools count as 0/1; lists and strings skipped)."""
    flat: Dict[str, float] = {}
    for component, comp_stats in stats.items():
        if not isinstance(comp_stats, dict):
            continue
        for key, value in comp_stats.items():
            if isinstance(value, bool):
                flat[f"{component}.{key}"] = float(value)
            elif isinstance(value, (int, float)):
                flat[f"{component}.{key}"] = float(value)
    return flat


class MetricsTimeSeries:
    """A bounded per-round sampling of the telemetry registry + derived
    system gauges (see module docstring)."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("series capacity must be positive")
        self.capacity = capacity
        self._rounds = _Column()
        self._columns: Dict[str, _Column] = {}
        self.samples = 0

    # -- sampling ------------------------------------------------------------

    def record(self, round_no: int, values: Dict[str, float]) -> None:
        """Append one sample: a round number and its gauge values.

        Every known column gets exactly one appended value (NaN when the
        sample does not carry it); a new series is NaN-backfilled for the
        samples it missed.
        """
        retained = len(self._rounds)
        for name in values:
            if name not in self._columns:
                self._columns[name] = _Column(prefill=retained)
        self._rounds.append(float(round_no))
        for name, column in self._columns.items():
            value = values.get(name, math.nan)
            column.append(float(value))
        self.samples += 1
        overflow = len(self._rounds) - self.capacity
        if overflow > 0:
            self._rounds.drop_front(overflow)
            for column in self._columns.values():
                column.drop_front(overflow)

    def sample(self, system: Any, monitor: Any = None) -> Dict[str, float]:
        """Sample a :class:`~repro.core.runtime.ReboundSystem` (and
        optionally its BTR monitor) for the round just executed; returns
        the recorded gauge dict."""
        values = flatten_stats(system.fastpath_stats())
        values.update(self._system_gauges(system))
        if monitor is not None and hasattr(monitor, "gauges"):
            for key, value in monitor.gauges().items():
                values[f"btr.{key}"] = float(value)
        self.record(system.round_no, values)
        return values

    @staticmethod
    def _system_gauges(system: Any) -> Dict[str, float]:
        correct = system.correct_controllers()
        suspected: set = set()
        evidence_max = 0
        store_max = 0
        for node_id in correct:
            node = system.nodes[node_id]
            pattern = node.fault_pattern
            suspected |= set(pattern.nodes)
            for link in pattern.links:
                suspected |= set(link)
            summary_len = len(node.forwarding.evidence)
            if summary_len > evidence_max:
                evidence_max = summary_len
            store_len = len(node.forwarding.store)
            if store_len > store_max:
                store_max = store_len
        values = {
            "system.correct_controllers": float(len(correct)),
            "system.true_faulty_nodes": float(len(system.true_faulty_nodes)),
            "system.suspected_nodes": float(len(suspected)),
            "system.evidence_items_max": float(evidence_max),
            "system.heartbeat_store_max": float(store_max),
            "system.budget_exceeded": float(system.budget_exceeded),
        }
        config = system.config
        if getattr(config, "quotas_enabled", False) and config.d_max:
            from repro.core.quotas import (
                evidence_item_cap,
                heartbeat_record_cap,
            )

            n = len(system.topology.controllers)
            values["system.evidence_item_cap"] = float(
                evidence_item_cap(n, config.d_max)
            )
            values["system.heartbeat_record_cap"] = float(
                heartbeat_record_cap(n, config.d_max)
            )
        auditors = getattr(system, "auditors", None)
        if auditors:
            values["stabilize.audit_beacons"] = float(
                sum(a.beacons for a in auditors.values())
            )
            values["stabilize.divergences"] = float(
                sum(len(a.divergences) for a in auditors.values())
            )
            values["stabilize.open_divergences"] = float(
                sum(
                    1 for a in auditors.values()
                    if a.open_divergence() is not None
                )
            )
        refreshes = getattr(system, "tree_refreshes", None)
        if refreshes is not None and getattr(
            config, "tree_refresh_enabled", False
        ):
            values["stabilize.tree_refreshes"] = float(len(refreshes))
            if refreshes:
                values["stabilize.last_refresh_ms"] = (
                    refreshes[-1]["elapsed_s"] * 1000.0
                )
        return values

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rounds)

    def rounds(self) -> List[int]:
        return [int(r) for r in self._rounds.values()]

    def series_names(self) -> List[str]:
        return sorted(self._columns)

    def series(self, name: str) -> List[float]:
        return self._columns[name].values()

    def latest(self) -> Dict[str, float]:
        """The most recent retained value of every series (NaN-free)."""
        out: Dict[str, float] = {}
        for name, column in sorted(self._columns.items()):
            value = column.last()
            if not math.isnan(value):
                out[name] = value
        return out

    # -- exporters -----------------------------------------------------------

    def to_openmetrics(self) -> str:
        """The OpenMetrics text exposition of the latest sample."""
        lines: List[str] = []
        for name, value in self.latest().items():
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} gauge")
            if value == int(value) and abs(value) < 1e15:
                rendered = str(int(value))
            else:
                rendered = repr(value)
            lines.append(f"{metric} {rendered}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, Any]:
        """Full retained history, JSON-safe (NaN -> None)."""
        return {
            "capacity": self.capacity,
            "samples": self.samples,
            "retained": len(self._rounds),
            "rounds": self.rounds(),
            "series": {
                name: [
                    None if math.isnan(v) else v
                    for v in column.values()
                ]
                for name, column in sorted(self._columns.items())
            },
        }

    def counter_tracks(
        self, round_us: int = 1000, pid: int = METRICS_TRACE_PID
    ) -> List[Dict[str, Any]]:
        """Perfetto counter events: one ``ph: "C"`` sample per retained
        round per series, under a named "metrics" process row."""
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": "metrics"},
            }
        ]
        rounds = self.rounds()
        for name, column in sorted(self._columns.items()):
            for round_no, value in zip(rounds, column.values()):
                if math.isnan(value):
                    continue
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "metrics",
                        "pid": pid,
                        "tid": 0,
                        "ts": round_no * round_us,
                        "args": {"value": value},
                    }
                )
        return events
