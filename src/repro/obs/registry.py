"""The telemetry registry: one place where every counter-bearing component
registers its ``stats()`` / ``reset()`` pair.

Before this existed, ``analysis/metrics.py`` kept two hand-maintained,
easy-to-desync import lists (one to collect stats, one to reset them).
Now each component module registers itself *once, at import time*::

    # bottom of repro/crypto/rsa.py
    from repro.obs import registry as _telemetry
    _telemetry.register("rsa_sign", sign_stats, reset_sign_stats)

and consumers ask the registry.  The registry itself is dependency-free
(stdlib only) so any module can import it without cycles; the canonical
list of component *modules* lives here as ``DEFAULT_COMPONENT_MODULES`` and
is imported lazily by :func:`ensure_default_components` -- the single
bootstrap replacing the twin lists.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TelemetryComponent:
    """One registered component: a name plus its stats/reset callables."""

    name: str
    stats: Callable[[], Dict[str, Any]]
    reset: Callable[[], None]


_components: Dict[str, TelemetryComponent] = {}

#: Modules whose import registers the stock fast-path components.  This is
#: the *only* list: collection and reset both walk the registry.
DEFAULT_COMPONENT_MODULES = (
    "repro.crypto.rsa",          # rsa_sign
    "repro.crypto.verify_cache",  # verify_cache
    "repro.crypto.multisig",     # multisig_batch
    "repro.net.message",         # codec_memo
    "repro.net.frames",          # frame_cache
    "repro.core.forwarding",     # coverage_cache
    "repro.sched.ilp",           # ilp_solver
    "repro.sched.assign",        # place_memo
    "repro.sched.edf",           # edf_memo
    "repro.sched.modegen",       # modegen_lookup
    "repro.stabilize.auditor",   # stabilize
)


def register(
    name: str,
    stats: Callable[[], Dict[str, Any]],
    reset: Callable[[], None],
) -> TelemetryComponent:
    """Register (or re-register, e.g. on module reload) a component."""
    if not callable(stats) or not callable(reset):
        raise TypeError(f"component {name!r} needs callable stats and reset")
    component = TelemetryComponent(name=name, stats=stats, reset=reset)
    _components[name] = component
    return component


def unregister(name: str) -> None:
    _components.pop(name, None)


def components() -> Dict[str, TelemetryComponent]:
    """Registered components by name (a copy; mutation-safe)."""
    return dict(_components)


def ensure_default_components() -> None:
    """Import every stock component module (each registers itself)."""
    for module in DEFAULT_COMPONENT_MODULES:
        importlib.import_module(module)


def stats_snapshot() -> Dict[str, Dict[str, Any]]:
    """Every component's current counters, keyed by component name."""
    return {name: comp.stats() for name, comp in sorted(_components.items())}


def reset_all() -> List[str]:
    """Zero every component's counters; returns the component names."""
    names = []
    for name, comp in sorted(_components.items()):
        comp.reset()
        names.append(name)
    return names


#: Stat keys that are configuration or derived values, not additive
#: counters; merging keeps the base snapshot's value instead of summing.
_NON_ADDITIVE_KEYS = frozenset(
    {"capacity", "enabled", "entries", "hit_rate", "workers", "shard_sizes",
     "parent_resident", "mode", "mean_round_ms"}
)


def merge_stats_snapshots(
    base: Dict[str, Dict[str, Any]],
    extras: List[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Fold worker-process snapshots into ``base`` without double counting.

    Numeric counters are summed across snapshots; configuration keys
    (capacity, enabled, ...) keep the base value; ``hit_rate`` is
    recomputed from the merged hits/misses where both are present.  Used
    by the sharded round engine, whose worker initializers zero their
    inherited registries so every worker-side count is post-fork work.
    """
    merged = {comp: dict(stats) for comp, stats in base.items()}
    for snapshot in extras:
        for comp, stats in snapshot.items():
            target = merged.setdefault(comp, {})
            for key, value in stats.items():
                additive = (
                    key not in _NON_ADDITIVE_KEYS
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                )
                if not additive:
                    target.setdefault(key, value)
                elif key in target:
                    target[key] = target[key] + value
                else:
                    target[key] = value
    for stats in merged.values():
        if "hit_rate" in stats and "hits" in stats and "misses" in stats:
            total = stats["hits"] + stats["misses"]
            stats["hit_rate"] = stats["hits"] / total if total else 0.0
    return merged
