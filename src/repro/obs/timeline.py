"""Recovery-timeline reconstruction from a flight-recorder trace.

The paper's central claims are temporal (Fig. 6): a fault is *detected*
within ``d_max`` rounds, its evidence floods the partition, and every
correct node *switches mode* within ``Rmax``.  The runtime can only say
*whether* those things happened (``detected()`` / ``converged()``); this
module says *where the rounds went*, per node and per fault, from the
recorded events alone:

    fault ──(detection)──► first pattern hit ──(evidence settling)──►
    last evidence change ──(switch lag)──► clean mode adopted

The three phases are defined as *adjacent spans* -- each starts where the
previous one ends -- so per node they sum exactly to the node's total
recovery rounds; no double counting, no gaps.  Phase boundaries come from:

* ``EV_FAULT_INJECTED`` -- ground truth: what failed and when;
* ``EV_EPOCH_ADVANCE`` -- the node's evidence digest and normalized
  failure pattern after each change (detection = first pattern covering
  the fault; evidence-settled = last change at or before the switch);
* ``EV_MODE_SELECTED`` -- the adopted mode and its placement hosts
  (recovered = placements exclude every truly faulty node, the same
  predicate as ``ReboundSystem.converged()``).

``crosscheck`` compares the trace-derived rounds against a
:class:`~repro.chaos.monitor.BTRMonitor`'s verdicts; ``divergence_report``
summarizes per-node final evidence digests (the diagnosis aid for the
known equivocation gap -- see ROADMAP.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.events import (
    EV_EPOCH_ADVANCE,
    EV_FAULT_INJECTED,
    EV_MODE_SELECTED,
    TraceEvent,
)

Link = Tuple[int, int]


@dataclass
class FaultGroundTruth:
    """What the trace says actually failed (from ``EV_FAULT_INJECTED``)."""

    nodes: Dict[int, int] = field(default_factory=dict)  # node -> round
    links: Dict[Link, int] = field(default_factory=dict)  # link -> round

    @property
    def empty(self) -> bool:
        return not self.nodes and not self.links

    @property
    def first_round(self) -> Optional[int]:
        rounds = list(self.nodes.values()) + list(self.links.values())
        return min(rounds) if rounds else None

    @property
    def last_round(self) -> Optional[int]:
        rounds = list(self.nodes.values()) + list(self.links.values())
        return max(rounds) if rounds else None


@dataclass
class NodeRecovery:
    """One node's recovery decomposition for one fault episode.

    The phase widths are adjacent spans, so
    ``detection_rounds + evidence_rounds + switch_rounds == total_rounds``
    whenever the node recovered (a node whose initial mode already excluded
    the faulty elements has all-zero phases).
    """

    node: int
    fault_round: int
    detection_round: Optional[int] = None
    evidence_round: Optional[int] = None
    switch_round: Optional[int] = None

    @property
    def recovered(self) -> bool:
        return self.switch_round is not None

    @property
    def detection_rounds(self) -> Optional[int]:
        if self.detection_round is None:
            return None
        return self.detection_round - self.fault_round

    @property
    def evidence_rounds(self) -> Optional[int]:
        if self.evidence_round is None or self.detection_round is None:
            return None
        return self.evidence_round - self.detection_round

    @property
    def switch_rounds(self) -> Optional[int]:
        if self.switch_round is None or self.evidence_round is None:
            return None
        return self.switch_round - self.evidence_round

    @property
    def total_rounds(self) -> Optional[int]:
        if self.switch_round is None:
            return None
        return self.switch_round - self.fault_round

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "fault_round": self.fault_round,
            "detection_round": self.detection_round,
            "evidence_round": self.evidence_round,
            "switch_round": self.switch_round,
            "detection_rounds": self.detection_rounds,
            "evidence_rounds": self.evidence_rounds,
            "switch_rounds": self.switch_rounds,
            "total_rounds": self.total_rounds,
        }


@dataclass
class RecoveryDecomposition:
    """The full per-node timeline for the trace's fault episode."""

    truth: FaultGroundTruth
    per_node: Dict[int, NodeRecovery]
    #: first round at which any analyzed node's pattern covered a fault.
    detection_round: Optional[int]
    #: first round at which *every* analyzed node ran a clean mode.
    convergence_round: Optional[int]

    @property
    def recovery_rounds(self) -> Optional[int]:
        """Rounds from the last fault activation to full convergence."""
        last = self.truth.last_round
        if last is None or self.convergence_round is None:
            return None
        return self.convergence_round - last

    def max_node_total(self) -> Optional[int]:
        totals = [
            nr.total_rounds for nr in self.per_node.values() if nr.recovered
        ]
        return max(totals) if totals else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "faulty_nodes": {str(k): v for k, v in self.truth.nodes.items()},
            "failed_links": {
                f"{a}-{b}": r for (a, b), r in self.truth.links.items()
            },
            "detection_round": self.detection_round,
            "convergence_round": self.convergence_round,
            "recovery_rounds": self.recovery_rounds,
            "per_node": {
                str(n): nr.as_dict() for n, nr in sorted(self.per_node.items())
            },
        }


def _ordered(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    return sorted(events, key=lambda e: (e.round_no, e.seq, e.node))


def extract_ground_truth(events: Iterable[TraceEvent]) -> FaultGroundTruth:
    truth = FaultGroundTruth()
    for event in events:
        if event.kind != EV_FAULT_INJECTED:
            continue
        target = event.data.get("target")
        link = event.data.get("link")
        if target is not None:
            truth.nodes.setdefault(int(target), event.round_no)
        elif link is not None:
            key = (min(link[0], link[1]), max(link[0], link[1]))
            truth.links.setdefault(key, event.round_no)
    return truth


def _pattern_covers(
    pattern_nodes: Set[int], pattern_links: Set[Link], truth: FaultGroundTruth
) -> bool:
    """The same predicate as ``ReboundSystem.detected()``, per node."""
    for node in truth.nodes:
        if node in pattern_nodes:
            return True
        if any(node in link for link in pattern_links):
            return True
    for link in truth.links:
        if link in pattern_links:
            return True
        if set(link) & set(truth.nodes):
            return True
    return False


def reconstruct(
    events: Iterable[TraceEvent],
    truth: Optional[FaultGroundTruth] = None,
    analyzed_nodes: Optional[Iterable[int]] = None,
) -> RecoveryDecomposition:
    """Rebuild the per-node recovery decomposition from a trace.

    Args:
        events: recorded events (any order; re-sorted internally).
        truth: override the fault ground truth (defaults to the trace's
            ``EV_FAULT_INJECTED`` events).
        analyzed_nodes: the correct controllers to analyze; defaults to
            every node that ever selected a mode, minus the faulty ones.
    """
    ordered = _ordered(events)
    if truth is None:
        truth = extract_ground_truth(ordered)
    fault_round = truth.first_round if truth.first_round is not None else 0

    mode_nodes = {e.node for e in ordered if e.kind == EV_MODE_SELECTED}
    if analyzed_nodes is None:
        nodes = sorted(mode_nodes - set(truth.nodes))
    else:
        nodes = sorted(set(analyzed_nodes))

    per_node = {n: NodeRecovery(node=n, fault_round=fault_round) for n in nodes}
    # A node whose pre-fault mode already excludes every faulty element has
    # recovered "for free": all phases zero.
    clean_before_fault: Dict[int, bool] = {n: False for n in nodes}
    last_epoch_round: Dict[int, int] = {}

    for event in ordered:
        n = event.node
        nr = per_node.get(n)
        if nr is None:
            continue
        if event.kind == EV_EPOCH_ADVANCE:
            if event.round_no >= fault_round and nr.switch_round is None:
                last_epoch_round[n] = event.round_no
            if nr.detection_round is None and event.round_no >= fault_round:
                pattern_nodes = set(event.data.get("pattern_nodes", ()))
                pattern_links = {
                    (min(a, b), max(a, b))
                    for a, b in event.data.get("pattern_links", ())
                }
                if _pattern_covers(pattern_nodes, pattern_links, truth):
                    nr.detection_round = event.round_no
        elif event.kind == EV_MODE_SELECTED:
            hosts = set(event.data.get("placement_hosts", ()))
            clean = not (hosts & set(truth.nodes))
            if event.round_no < fault_round:
                clean_before_fault[n] = clean
            elif clean and nr.switch_round is None:
                nr.switch_round = event.round_no
                nr.evidence_round = last_epoch_round.get(
                    n, nr.detection_round
                    if nr.detection_round is not None
                    else event.round_no
                )
            elif not clean:
                # Regressed to a dirty mode: the episode is not over.
                nr.switch_round = None
                nr.evidence_round = None

    for n, nr in per_node.items():
        if nr.switch_round is None and clean_before_fault[n]:
            # Never needed to move: already clean when the fault hit.
            nr.switch_round = fault_round
            nr.evidence_round = fault_round
            if nr.detection_round is None:
                nr.detection_round = fault_round
        if nr.recovered:
            # The spans must be adjacent and non-negative even when the
            # final evidence change and the switch landed in one round.
            if nr.detection_round is None:
                nr.detection_round = nr.switch_round
            if nr.evidence_round is None or nr.evidence_round < nr.detection_round:
                nr.evidence_round = nr.detection_round
            if nr.evidence_round > nr.switch_round:
                nr.evidence_round = nr.switch_round

    detection_candidates = [
        nr.detection_round
        for nr in per_node.values()
        if nr.detection_round is not None and nr.detection_round > fault_round
        or (nr.detection_round == fault_round and not clean_before_fault[nr.node])
    ]
    detection_round = min(detection_candidates) if detection_candidates else None
    if all(nr.recovered for nr in per_node.values()) and per_node:
        convergence_round = max(nr.switch_round for nr in per_node.values())
    else:
        convergence_round = None
    return RecoveryDecomposition(
        truth=truth,
        per_node=per_node,
        detection_round=detection_round,
        convergence_round=convergence_round,
    )


# -- monitor cross-check ---------------------------------------------------------


def crosscheck(decomposition: RecoveryDecomposition, monitor) -> Dict[str, Any]:
    """Compare trace-derived rounds against a ``BTRMonitor``'s verdicts.

    The monitor observes the live system; the decomposition only reads the
    trace.  Agreement (both rounds equal) is the end-to-end validation that
    the instrumentation reports what the protocol actually did.
    """
    return {
        "trace_detection_round": decomposition.detection_round,
        "monitor_detection_round": monitor.detection_round,
        "detection_agrees": (
            decomposition.detection_round == monitor.detection_round
        ),
        "trace_convergence_round": decomposition.convergence_round,
        "monitor_recovery_round": monitor.recovery_round,
        "violations": [v.as_dict() for v in monitor.violations],
    }


# -- evidence-divergence diagnosis ----------------------------------------------


def divergence_report(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Group nodes by their *final* evidence digest.

    Under the known equivocation gap (ROADMAP open item) correct nodes'
    evidence sets diverge while LFDs storm; this report shows the divergent
    digest groups and each node's last normalized pattern -- the raw
    material for diagnosing which evidence subset condemned whom.
    """
    final: Dict[int, TraceEvent] = {}
    for event in _ordered(events):
        if event.kind == EV_EPOCH_ADVANCE:
            final[event.node] = event
    groups: Dict[str, List[int]] = {}
    patterns: Dict[str, Any] = {}
    for node, event in sorted(final.items()):
        digest = str(event.data.get("digest"))
        groups.setdefault(digest, []).append(node)
        patterns[str(node)] = {
            "digest": digest,
            "items": event.data.get("items"),
            "pattern_nodes": event.data.get("pattern_nodes"),
            "pattern_links": event.data.get("pattern_links"),
            "round": event.round_no,
        }
    return {
        "divergent": len(groups) > 1,
        "digest_groups": {d: nodes for d, nodes in sorted(groups.items())},
        "per_node": patterns,
    }


# -- Perfetto phase spans --------------------------------------------------------


def phase_spans(
    decomposition: RecoveryDecomposition, round_us: int = 1000
) -> List[Dict[str, Any]]:
    """Duration events rendering each node's phases in a Chrome trace."""
    spans: List[Dict[str, Any]] = []
    for node, nr in sorted(decomposition.per_node.items()):
        if not nr.recovered:
            continue
        segments = (
            ("detection", nr.fault_round, nr.detection_round),
            ("evidence", nr.detection_round, nr.evidence_round),
            ("switch", nr.evidence_round, nr.switch_round),
        )
        for name, start, end in segments:
            if start is None or end is None or end <= start:
                continue
            spans.append(
                {
                    "ph": "X",
                    "name": f"phase:{name}",
                    "cat": "recovery",
                    "pid": node,
                    "tid": 2,
                    "ts": start * round_us,
                    "dur": (end - start) * round_us,
                    "args": {"rounds": end - start},
                }
            )
    return spans
