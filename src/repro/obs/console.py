"""The live operator console: ``python -m repro top`` and ``chaos --live``.

Renders, once per round, the operator view of the paper's three BTR
requirements: campaign/round progress, per-node health, the suspected-set
and evidence gauges from the :class:`~repro.obs.series.MetricsTimeSeries`,
and -- once a fault lands -- the detection -> evidence -> switch
decomposition reconstructed from the flight-recorder stream.

On a TTY each frame repaints in place (ANSI home + clear-to-end); on a
pipe (CI, logs) frames print sequentially, and ``--once`` renders exactly
one final frame, which is what the ``telemetry-smoke`` CI job asserts on.
The console is an *observer*: it installs the same recorder/monitor/series
instrumentation the trace driver uses and never feeds a protocol decision.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs import recorder as _flight

#: glyphs for the per-node health strip.
_GLYPH_OK = "+"
_GLYPH_FAULTY = "x"
_GLYPH_SUSPECTED = "?"
_GLYPH_CRASHED = "!"

_CLEAR = "\x1b[H\x1b[J"


def _suspected_nodes(system: Any) -> set:
    suspected: set = set()
    for node_id in system.correct_controllers():
        pattern = system.nodes[node_id].fault_pattern
        suspected |= set(pattern.nodes)
        for link in pattern.links:
            suspected |= set(link)
    return suspected


def _health_strip(system: Any) -> str:
    """One glyph per controller: faulty (ground truth), crashed,
    suspected (by some correct node), or healthy."""
    crashed = getattr(system.network, "_crashed", set())
    suspected = _suspected_nodes(system)
    cells: List[str] = []
    for node_id in system.topology.controllers:
        if node_id in system.true_faulty_nodes:
            glyph = _GLYPH_FAULTY
        elif node_id in crashed:
            glyph = _GLYPH_CRASHED
        elif node_id in suspected:
            glyph = _GLYPH_SUSPECTED
        else:
            glyph = _GLYPH_OK
        cells.append(f"{node_id}{glyph}")
    return " ".join(cells)


def _fmt_round(value: Optional[float]) -> str:
    if value is None or value < 0:
        return "-"
    return f"r{int(value)}"


def render_top(
    system: Any,
    monitor: Any = None,
    series: Any = None,
    title: str = "rebound top",
    total_rounds: Optional[int] = None,
) -> str:
    """One console frame as a string (no terminal control codes)."""
    lines: List[str] = []
    progress = f"round {system.round_no}"
    if total_rounds:
        progress += f"/{total_rounds}"
    lines.append(
        f"{title} | {progress} | engine {system.engine_name}"
        + (" | OVER BUDGET" if system.budget_exceeded else "")
    )
    if monitor is not None and hasattr(monitor, "gauges"):
        g = monitor.gauges()
        lines.append(
            f"btr: phase={monitor.current_phase()}"
            f" | detection {_fmt_round(g['detection_round'])}"
            f" | recovery {_fmt_round(g['recovery_round'])}"
            f" | violations {int(g['violations'])}"
        )
    latest: Dict[str, float] = series.latest() if series is not None else {}
    if latest:
        suspected = latest.get("system.suspected_nodes")
        ev_max = latest.get("system.evidence_items_max")
        ev_cap = latest.get("system.evidence_item_cap")
        hb_max = latest.get("system.heartbeat_store_max")
        parts = []
        if suspected is not None:
            parts.append(f"suspected {int(suspected)}")
        if ev_max is not None:
            cap = f"/{int(ev_cap)}" if ev_cap is not None else ""
            parts.append(f"evidence max {int(ev_max)}{cap}")
        if hb_max is not None:
            parts.append(f"hb store max {int(hb_max)}")
        parts.append(f"{len(latest)} gauges")
        lines.append("gauges: " + " | ".join(parts))
        beacons = latest.get("stabilize.audit_beacons")
        if beacons is not None:
            divergences = latest.get("stabilize.divergences", 0.0)
            open_div = latest.get("stabilize.open_divergences", 0.0)
            stab = (
                f"stabilize: beacons {int(beacons)}"
                f" | divergences {int(divergences)}"
                f" ({int(open_div)} open)"
            )
            refreshes = latest.get("stabilize.tree_refreshes")
            if refreshes is not None:
                stab += f" | tree refreshes {int(refreshes)}"
                last_ms = latest.get("stabilize.last_refresh_ms")
                if last_ms is not None:
                    stab += f" (last {last_ms:.1f}ms)"
            lines.append(stab)
    rec = _flight.active
    if rec is not None:
        shipped = ""
        if rec.shipped:
            shipped = f", {rec.shipped} shipped"
        lines.append(
            f"recorder: {rec.emitted} events"
            f" ({rec.dropped} dropped{shipped})"
        )
    lines.append("nodes: " + _health_strip(system))
    # The decomposition appears once the stream contains a recovery
    # episode -- the detection -> evidence -> switch view of Reqs 1/2.
    if rec is not None and rec.emitted:
        from repro.obs.timeline import reconstruct

        decomposition = reconstruct(rec.events())
        rows = [
            (node, spans)
            for node, spans in sorted(decomposition.per_node.items())
            if spans.total_rounds
        ]
        if rows:
            lines.append("recovery decomposition (detect+evidence+switch):")
            for node, spans in rows:
                lines.append(
                    f"  node {node}: {spans.detection_rounds}"
                    f" + {spans.evidence_rounds}"
                    f" + {spans.switch_rounds}"
                    f" = {spans.total_rounds} rounds"
                )
    return "\n".join(lines) + "\n"


def run_top(
    preset: str = "smoke",
    rounds: Optional[int] = None,
    seed: int = 0,
    once: bool = False,
    interval: float = 0.0,
    stream: Any = None,
) -> int:
    """Run a trace preset with the full telemetry plane attached and
    render the console per round (or once, at the end, with ``once``)."""
    from repro.chaos.monitor import BTRMonitor
    from repro.core.config import ReboundConfig
    from repro.core.runtime import ReboundSystem
    from repro.experiments.trace_run import PRESETS, _pick_victim
    from repro.obs.recorder import FlightRecorder
    from repro.obs.series import MetricsTimeSeries
    from repro.sched.workload import WorkloadGenerator

    out = stream if stream is not None else sys.stdout
    spec = PRESETS[preset]
    total_rounds = spec.rounds if rounds is None else rounds
    topology = spec.topology_factory()
    workload = WorkloadGenerator(seed=seed, chain_length_range=(1, 2)).workload(
        target_utilization=1.5
    )
    config = ReboundConfig(
        fmax=spec.fmax, fconc=1, variant=spec.variant, rsa_bits=512
    )
    recorder = FlightRecorder()
    recorder.install()
    repaint = (not once) and hasattr(out, "isatty") and out.isatty()
    try:
        system = ReboundSystem(topology, workload, config, seed=seed)
        monitor = BTRMonitor(
            record_only=True, context={"preset": spec.name, "seed": seed}
        )
        system.attach_monitor(monitor)
        series = MetricsTimeSeries()
        system.attach_series(series)
        victim = spec.victim if spec.victim is not None else _pick_victim(system)
        title = f"rebound top [{spec.name}]"
        for r in range(1, total_rounds + 1):
            if r == spec.fault_round:
                system.inject_now(victim, spec.behavior_factory())
            system.run_round()
            if not once:
                frame = render_top(
                    system, monitor, series, title, total_rounds
                )
                if repaint:
                    out.write(_CLEAR)
                out.write(frame)
                if not repaint:
                    out.write("\n")
                out.flush()
                if interval > 0:
                    time.sleep(interval)
        if once:
            out.write(render_top(system, monitor, series, title, total_rounds))
            out.flush()
        system.close()
    finally:
        recorder.uninstall()
    return 0


class CampaignLiveSink:
    """A ``chaos --live`` progress sink: one tally line per finished cell.

    Plugged into ``run_campaign(on_result=...)``; keeps a running
    pass/fail/tagged/crash matrix and surfaces each cell's recovery
    rounds as it lands, so a long campaign is watchable instead of
    silent-until-JSON.
    """

    def __init__(self, stream: Any = None):
        self.stream = stream if stream is not None else sys.stdout
        self.matrix: Dict[str, int] = {}
        self.cells = 0

    def __call__(self, outcome: Dict[str, Any]) -> None:
        self.cells += 1
        status = outcome.get("outcome", "?")
        self.matrix[status] = self.matrix.get(status, 0) + 1
        tally = " ".join(
            f"{k}={v}" for k, v in sorted(self.matrix.items())
        )
        recovery = outcome.get("rounds_to_recovery")
        detail = f" recovery={recovery}" if recovery is not None else ""
        violations = outcome.get("violations") or []
        if violations:
            detail += f" violations={len(violations)}"
        self.stream.write(
            f"[{self.cells}] {outcome.get('cell', '?')}: {status}{detail}"
            f"  ({tally})\n"
        )
        self.stream.flush()
