"""Observability: the flight recorder, timeline analyzer, and telemetry
registry (see docs/PROTOCOL.md S10).

Import cost matters here -- ``repro.obs.recorder`` is imported by every
instrumented protocol module -- so this package keeps its ``__init__``
dependency-light and re-exports only the names user code reaches for.
"""

from repro.obs.events import (
    EV_AUDIT_CHALLENGE,
    EV_AUDIT_RESPONSE,
    EV_CHAOS_IMPAIRMENT,
    EV_EPOCH_ADVANCE,
    EV_EVIDENCE_APPLIED,
    EV_FAULT_INJECTED,
    EV_HEARTBEAT_SEND,
    EV_HEARTBEAT_STORED,
    EV_HEARTBEAT_VERIFY,
    EV_LFD_ISSUED,
    EV_MODE_SELECTED,
    EV_POM_CREATED,
    EVENT_NAMES,
    TraceEvent,
    events_from_dicts,
    validate_jsonl,
    validate_record,
)
from repro.obs.profiler import STAGES as PROFILE_STAGES
from repro.obs.profiler import RoundProfiler
from repro.obs.recorder import FlightRecorder

__all__ = [
    "EV_AUDIT_CHALLENGE",
    "EV_AUDIT_RESPONSE",
    "EV_CHAOS_IMPAIRMENT",
    "EV_EPOCH_ADVANCE",
    "EV_EVIDENCE_APPLIED",
    "EV_FAULT_INJECTED",
    "EV_HEARTBEAT_SEND",
    "EV_HEARTBEAT_STORED",
    "EV_HEARTBEAT_VERIFY",
    "EV_LFD_ISSUED",
    "EV_MODE_SELECTED",
    "EV_POM_CREATED",
    "EVENT_NAMES",
    "FlightRecorder",
    "PROFILE_STAGES",
    "RoundProfiler",
    "TraceEvent",
    "events_from_dicts",
    "validate_jsonl",
    "validate_record",
]
