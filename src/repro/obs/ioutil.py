"""Crash-safe file output shared by exporters and the durability layer.

Artifact writers (flight-recorder exports, BENCH reports, snapshot seals,
chain-head anchors) must never leave a torn file behind: a reader that
races a mid-write crash would see half a JSON document and misdiagnose the
run.  The standard fix is write-to-temp + ``os.replace`` -- the rename is
atomic on POSIX, so the destination either holds the old content or the
complete new content, never a prefix.

Stdlib-only so :mod:`repro.obs` and :mod:`repro.durability` can both import
it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import IO, Iterator


def ensure_parent_dir(path: str) -> None:
    """Create the directory that will hold ``path`` (and any ancestors)."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


@contextmanager
def atomic_open(path: str, mode: str = "w") -> Iterator[IO]:
    """Open a temp file next to ``path``; atomically rename on clean exit.

    Missing parent directories are created.  On an exception inside the
    block the temp file is removed and the destination is untouched --
    exactly the "campaign artifact dumps can't be torn" guarantee.  The
    temp name embeds the pid so concurrent processes exporting to the same
    destination cannot clobber each other's in-progress file.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_open only supports fresh writes, not {mode!r}")
    ensure_parent_dir(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    fh = open(tmp_path, mode)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp_path, path)
    except BaseException:
        fh.close()
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (parent dirs created)."""
    with atomic_open(path) as fh:
        fh.write(text)


def append_lines(path: str, lines: list) -> None:
    """Append text lines to ``path`` with one durable write.

    Not a replace: append-only logs (the hash-chained event log) grow in
    place; the accompanying head anchor is what gets atomically replaced.
    """
    ensure_parent_dir(path)
    with open(path, "a") as fh:
        for line in lines:
            fh.write(line)
            if not line.endswith("\n"):
                fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
