"""Admission control and memory bounds for the evidence layer.

An adversary holding valid keys can manufacture unlimited *validly signed*
material: heartbeat records for every round in the window, LFDs about its
own links with arbitrary declared rounds, self-incriminating equivocation
PoMs.  Without admission control each item costs a correct node a signature
verification and a store slot, so the adversary controls both per-round CPU
and resident memory.  This module derives, from the topology alone, how
much of each message kind a *correct* node could legitimately originate in
one round; anything beyond that is dropped before signature verification
(the forwarding layer records an ``EV_QUOTA_DROP`` flight event).

Degradation policy: a sender that ever trips a quota becomes a *suspect*
and is served from a reduced budget from then on -- except that each round
one suspect (rotating round-robin by round number) regains the full budget,
so a falsely suspected correct node is never starved and the Req. 1/2
liveness bounds survive a sustained flood.

The caps below bound correct-node state independently of adversary send
rate: the bounded :class:`~repro.core.evidence.EvidenceSet` keeps at most
two items per (link, issuer) / (kind, accused) bucket, the heartbeat store
is windowed, and the auditing layer's pending challenge buffers are capped
per replica.  All bounds are O(n^2 * d_max) or better.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.net.topology import Topology

# A suspect sender's per-kind budget is its full cap divided by this,
# except for the round's favored suspect (round-robin), which keeps the
# full cap.
_SUSPECT_DIVISOR = 8


def pom_lfd_slack(d_max: int) -> int:
    """Rounds after a commission PoM's accusation round during which an LFD
    is *explained* by that PoM (see EvidenceSet.failure_pattern): conflict
    propagation (d_max) plus the Rule B deferral window (d_max + 2) plus
    margin.  A pure function of the shared d_max, so every node -- devices
    included -- derives the same pattern from the same evidence."""
    return 2 * d_max + 6


def record_quota(n: int, d_max: int) -> int:
    """Max individual heartbeat records a correct node sends in one round:
    one per (origin, round) slot inside the expiry window, during the
    worst-case catch-up flood after instability."""
    return max(1, n) * (d_max + 3)


def aggregate_quota(d_max: int) -> int:
    """Max aggregate heartbeats per round: one per origin round alive in
    the window."""
    return d_max + 3


def evidence_item_cap(n: int, d_max: int) -> int:
    """Hard cap on attributable items in a bounded evidence store.

    Two LFDs per (link, issuer) is at most 2 * 2 * n(n-1)/2, plus two PoMs
    per (kind, accused, task); the constant term absorbs small deployments.
    Deliberately generous -- the bucket policy keeps the real count far
    lower -- but O(n^2), independent of adversary send rate, and well under
    the issue's O(n^2 * d_max) ceiling.
    """
    return 2 * n * n + 8 * n + 16


def heartbeat_record_cap(n: int, d_max: int) -> int:
    """Max records a windowed heartbeat store retains: every origin for
    every round in [r - window, r] with window = d_max + 2."""
    return max(1, n) * (d_max + 3)


def pending_audit_cap(d_max: int) -> int:
    """Max buffered bundles (and auth/xrep rounds) per hosted replica.

    An honest primary streams bundles in round order and the audit loop
    drains them after a path-latency wait, so the honest backlog is a few
    rounds; a gap means the primary misbehaved and rounds far beyond the
    gap will never be audited anyway."""
    return 4 * d_max + 16


class AdmissionQuotas:
    """Per-(sender, kind, round) verification-budget accounting for one
    receiving node.  Purely local: no cross-node agreement is needed, so
    each node may hold a different suspect set."""

    def __init__(self, n: int, d_max: int):
        self.n = n
        self.d_max = d_max
        self.caps: Dict[str, int] = {
            "records": record_quota(n, d_max),
            "aggregates": aggregate_quota(d_max),
            "evidence": evidence_item_cap(n, d_max),
        }
        self.suspects: Set[int] = set()
        self._round = 0
        self._favored: Optional[int] = None
        self._used: Dict[Tuple[int, str], int] = {}
        self._dropped: Set[Tuple[int, str]] = set()
        self.total_charged = 0
        self.total_dropped = 0

    @classmethod
    def from_topology(cls, topology: Topology, d_max: int) -> "AdmissionQuotas":
        n = len(topology.controllers)
        return cls(n=n, d_max=d_max)

    def begin_round(self, round_no: int) -> None:
        self._round = round_no
        self._used = {}
        self._dropped = set()
        self._refresh_favored()

    def _refresh_favored(self) -> None:
        if self.suspects:
            ordered = sorted(self.suspects)
            self._favored = ordered[self._round % len(ordered)]
        else:
            self._favored = None

    def cap_for(self, sender: int, kind: str) -> int:
        cap = self.caps[kind]
        if sender in self.suspects and sender != self._favored:
            return max(1, cap // _SUSPECT_DIVISOR)
        return cap

    def charge(self, sender: int, kind: str) -> Tuple[bool, bool]:
        """Charge one verification for (sender, kind); returns
        (allowed, first_drop_this_round)."""
        key = (sender, kind)
        used = self._used.get(key, 0)
        if used < self.cap_for(sender, kind):
            self._used[key] = used + 1
            self.total_charged += 1
            _quota_stats["charged"] += 1
            return True, False
        first = key not in self._dropped
        self._dropped.add(key)
        if sender not in self.suspects:
            self.suspects.add(sender)
            self._refresh_favored()
        self.total_dropped += 1
        _quota_stats["dropped"] += 1
        return False, first

    # -- self-stabilization hooks (docs/PROTOCOL.md section 16) ------------------

    def ledger_issues(self, controllers) -> list:
        """Internal-consistency violations of this ledger, as short tags.

        Every field is recomputable from (n, d_max, topology) or bounded by
        construction, so a transiently corrupted ledger is detectable
        without any cross-node traffic."""
        issues = []
        expected = {
            "records": record_quota(self.n, self.d_max),
            "aggregates": aggregate_quota(self.d_max),
            "evidence": evidence_item_cap(self.n, self.d_max),
        }
        if self.caps != expected:
            issues.append("caps")
        if self.total_charged < 0 or self.total_dropped < 0:
            issues.append("counters")
        if not self.suspects <= set(controllers):
            issues.append("suspects")
        if any(used < 0 for used in self._used.values()):
            issues.append("used")
        return issues

    def reset_ledger(self, controllers) -> None:
        """Rebuild every derivable field in place, keeping only the
        plausible part of the suspect set (suspicion is local state that
        cannot be recovered from quorum; dropping it only restores budget
        to senders, which is safe)."""
        self.caps = {
            "records": record_quota(self.n, self.d_max),
            "aggregates": aggregate_quota(self.d_max),
            "evidence": evidence_item_cap(self.n, self.d_max),
        }
        self.suspects &= set(controllers)
        self.total_charged = max(0, self.total_charged)
        self.total_dropped = max(0, self.total_dropped)
        self._used = {}
        self._dropped = set()
        self._refresh_favored()


_quota_stats: Dict[str, int] = {"charged": 0, "dropped": 0}


def quota_stats() -> Dict[str, int]:
    return dict(_quota_stats)


def reset_quota_stats() -> None:
    _quota_stats.update(charged=0, dropped=0)


from repro.obs import registry as _telemetry

_telemetry.register("quotas", quota_stats, reset_quota_stats)
