"""The REBOUND algorithm: bounded-time recovery for the Byzantine model.

This package implements the paper's primary contribution:

* :mod:`repro.core.config` -- deployment parameters (fmax, fconc, round
  length, protocol variant, optimization toggles).
* :mod:`repro.core.evidence` -- link-failure declarations (LFDs), proofs of
  misbehavior (PoMs), evidence sets, verification, and the derivation of
  failure patterns (KN, KL) from evidence (paper S3.2).
* :mod:`repro.core.heartbeat` -- heartbeat construction for REBOUND-BASIC
  (individually signed) and REBOUND-MULTI (multisignature aggregation with
  ball-coverage descriptors, paper S3.6).
* :mod:`repro.core.paths` -- data/audit path computation per mode
  (paper S3.8's four path kinds).
* :mod:`repro.core.forwarding` -- the forwarding layer (paper S3.3-3.6):
  evidence flooding with per-hop attribution, bounded-time stabilization.
* :mod:`repro.core.auditing` -- the auditing layer (paper S3.7-3.8):
  deterministic replay by replicas, authenticator exchange, equivocation
  detection.
* :mod:`repro.core.node` -- a full REBOUND controller node.
* :mod:`repro.core.runtime` -- system assembly, fault injection, recovery
  measurement.
"""

from repro.core.config import ReboundConfig
from repro.core.evidence import (
    LFD,
    BadComputationPoM,
    EquivocationPoM,
    EvidenceSet,
    StateChainPoM,
)
from repro.core.runtime import ReboundSystem

__all__ = [
    "ReboundConfig",
    "LFD",
    "EquivocationPoM",
    "BadComputationPoM",
    "StateChainPoM",
    "EvidenceSet",
    "ReboundSystem",
]
