"""Operator repair & blessing (paper S2.4).

"Once a controller is no longer correct ... we continue to consider it
faulty until it is repaired and 'blessed' by an external operator."

A :class:`Blessing` is an operator-signed certificate absolving one node of
all evidence issued up to a stated round.  It floods through the forwarding
layer exactly like other evidence (it *is* an evidence item); every node
verifies the operator's signature independently and then excludes absolved
accusations from its failure-pattern derivation, transitioning back to a
mode that re-admits the repaired node.

The operator key is a deployment-wide trust root (like the permanent keys
of the S4 key-rotation scheme); compromising it is out of scope, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.evidence import (
    BadComputationPoM,
    EquivocationPoM,
    LFD,
    StateChainPoM,
    slot_of,
)
from repro.net.message import encode, register_message

KIND_BLESSING = "BLESS"


def blessing_body(node_id: int, as_of_round: int, epoch: int) -> bytes:
    """The operator-signed content of a blessing."""
    return encode((KIND_BLESSING, node_id, as_of_round, epoch))


@register_message
@dataclass(frozen=True)
class Blessing:
    """An operator's certificate that ``node_id`` has been repaired.

    Attributes:
        node_id: the repaired node.
        as_of_round: evidence about the node issued in rounds up to and
            including this one is absolved; later evidence (a re-compromise)
            counts again.
        epoch: monotonically increasing per-node repair counter, so stale
            blessings cannot resurrect a node after a newer compromise is
            re-blessed.
        signature: the operator's signature over :func:`blessing_body`.
    """

    node_id: int
    as_of_round: int
    epoch: int
    signature: bytes

    def body(self) -> bytes:
        return blessing_body(self.node_id, self.as_of_round, self.epoch)


def accusation_round(item) -> Optional[int]:
    """The round an evidence item's accusation refers to, for absolution."""
    if isinstance(item, LFD):
        return item.declared_round
    if isinstance(item, (BadComputationPoM, StateChainPoM)):
        return item.round_no
    if isinstance(item, EquivocationPoM):
        slot = slot_of(item.body_a)
        if slot is None:
            return None
        if slot[0] == "HB":
            return slot[1]
        if slot[0] == "DATA":
            return slot[2]
    return None


def accused_of(item) -> Tuple[int, ...]:
    """The node(s) an evidence item accuses (both endpoints for an LFD)."""
    if isinstance(item, LFD):
        return item.link
    if isinstance(item, (EquivocationPoM, BadComputationPoM, StateChainPoM)):
        return (item.accused,)
    return ()


def absolves(blessing: Blessing, item) -> bool:
    """True if ``blessing`` covers evidence ``item``."""
    if blessing.node_id not in accused_of(item):
        return False
    round_no = accusation_round(item)
    return round_no is not None and round_no <= blessing.as_of_round
