"""Node identities, the key directory, and counted crypto operations.

Every node owns an RSA working keypair (ordinary signatures: evidence, data
packets, BASIC heartbeats) and a multisignature keypair (MULTI heartbeats).
The :class:`Directory` holds all public keys -- the paper assumes every node
knows every other node's public key (S3) -- and :class:`NodeCrypto` is a
per-node handle that performs operations while incrementing the node's
:class:`~repro.crypto.cost_model.CryptoCounters`, split into a *forwarding*
bucket and an *auditing* bucket to reproduce Fig. 8b's breakdown.

Aggregate public keys for coverage multisets are cached process-wide: they
are deterministic functions of public information (topology + fault epoch),
so sharing the cache across simulated nodes loses no fidelity while keeping
simulations fast.  The ms_combine_key cost is charged per node, once per
distinct key (each real node keeps its own memo and pays to build each
entry exactly once) -- attribution is therefore independent of the order
nodes are stepped in and of how execution is sharded across processes.

Verification outcomes are likewise shared through the process-wide
:mod:`repro.crypto.verify_cache` (same fidelity argument: an outcome is a
pure function of public data).  The cache sits *below* the counters --
every logical operation is still counted, only redundant arithmetic is
skipped -- so cost metrics and transcripts are identical with the cache on
or off.  Per-deployment opt-out flows through ``NodeCrypto.use_cache``
(set from ``ReboundConfig.verify_cache``).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import verify_cache
from repro.crypto.cost_model import CryptoCounters
from repro.crypto.hashing import hash_bytes
from repro.crypto.multisig import (
    MultisigGroup,
    MultisigKeyPair,
    MultisigPublicKey,
    verify_multisig_values_batch,
)
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSASignature

DOMAIN_FORWARDING = "forwarding"
DOMAIN_AUDITING = "auditing"


class Directory:
    """All nodes' public keys plus the shared multisignature group."""

    def __init__(self, rsa_bits: int = 512, multisig_bits: int = 256, seed: int = 0):
        self.rsa_bits = rsa_bits
        self.group = MultisigGroup(bits=multisig_bits, seed=seed)
        self._rsa_pairs: Dict[int, RSAKeyPair] = {}
        self._ms_pairs: Dict[int, MultisigKeyPair] = {}
        self._seed = seed
        # The deployment's operator trust root (paper S2.4 blessing).
        self.operator = RSAKeyPair(bits=max(rsa_bits, 256),
                                   seed=hash((seed, "operator")))
        # (adjacency_key, node, age) -> aggregate key value.
        self._agg_key_cache: Dict[Tuple, int] = {}
        # Warm-pass lookaside (see peek_aggregate_key): keeps peeked values
        # out of the counted cache so charging semantics never change.
        self._agg_key_peek_cache: Dict[Tuple, int] = {}
        self.agg_key_hits = 0
        self.agg_key_misses = 0

    def register(self, node_id: int) -> None:
        if node_id in self._rsa_pairs:
            return
        self._rsa_pairs[node_id] = RSAKeyPair(
            bits=self.rsa_bits, seed=hash((self._seed, "rsa", node_id))
        )
        self._ms_pairs[node_id] = MultisigKeyPair(
            self.group, seed=hash((self._seed, "ms", node_id)), node_id=node_id
        )

    def rsa_public(self, node_id: int) -> RSAPublicKey:
        return self._rsa_pairs[node_id].public_key

    def ms_public(self, node_id: int) -> MultisigPublicKey:
        return self._ms_pairs[node_id].public_key

    def crypto_for(self, node_id: int, use_cache: bool = True) -> "NodeCrypto":
        return NodeCrypto(node_id, self, use_cache=use_cache)

    # -- aggregate key computation (cached, cost charged on miss) ---------------

    def aggregate_key_value(
        self, cache_key: Tuple, multiset: Counter, counters: Optional[CryptoCounters]
    ) -> int:
        """Aggregate key for ``multiset``, memoized under ``cache_key``.

        ``counters`` (legacy direct callers only) is charged one
        ms_combine_key per distinct signer on a cache miss; NodeCrypto
        passes None and charges per node instead (see module docstring).
        """
        cached = self._agg_key_cache.get(cache_key)
        if cached is not None:
            self.agg_key_hits += 1
            return cached
        self.agg_key_misses += 1
        if counters is not None:
            counters.ms_combine_key += len(multiset)
        peeked = self._agg_key_peek_cache.get(cache_key)
        if peeked is not None:
            self._agg_key_cache[cache_key] = peeked
            return peeked
        q = self.group.q
        value = 0
        for node, mult in sorted(multiset.items()):
            value = (value + mult * self._ms_pairs[node].public_key.value) % q
        self._agg_key_cache[cache_key] = value
        return value

    def peek_aggregate_key(self, cache_key: Tuple, multiset: Counter) -> int:
        """Aggregate key for warm passes: never charges counters and never
        populates the main (hit/miss-counted) cache.  Peeked values are
        memoized separately and promoted on the first real
        :meth:`aggregate_key_value` miss, which still charges as usual."""
        cached = self._agg_key_cache.get(cache_key)
        if cached is not None:
            return cached
        cached = self._agg_key_peek_cache.get(cache_key)
        if cached is not None:
            return cached
        q = self.group.q
        value = 0
        for node, mult in sorted(multiset.items()):
            value = (value + mult * self._ms_pairs[node].public_key.value) % q
        self._agg_key_peek_cache[cache_key] = value
        return value


@dataclass
class NodeCrypto:
    """Per-node crypto handle with operation counting.

    Attributes:
        node_id: the owning node.
        directory: the shared key directory.
        use_cache: consult the process-wide verification cache (pure
            fast path; counters and outcomes are unaffected).
        counters: per-domain operation counters.
    """

    node_id: int
    directory: Directory
    use_cache: bool = True

    def __post_init__(self) -> None:
        self.counters: Dict[str, CryptoCounters] = {
            DOMAIN_FORWARDING: CryptoCounters(),
            DOMAIN_AUDITING: CryptoCounters(),
        }
        # Aggregate keys this node has already paid ms_combine_key for --
        # a real node memoizes its own keys, so it pays per distinct key
        # regardless of what other (simulated) nodes computed first.
        self._agg_keys_charged: set = set()

    def _aggregate_key(self, cache_key: Tuple, multiset: Counter, domain: str) -> int:
        if cache_key not in self._agg_keys_charged:
            self._agg_keys_charged.add(cache_key)
            self.counters[domain].ms_combine_key += len(multiset)
        return self.directory.aggregate_key_value(cache_key, multiset, None)

    def total_counters(self) -> CryptoCounters:
        total = CryptoCounters()
        for bucket in self.counters.values():
            total.merge(bucket)
        return total

    # -- RSA ------------------------------------------------------------------

    def sign(self, body: bytes, domain: str = DOMAIN_FORWARDING) -> bytes:
        self.counters[domain].rsa_sign += 1
        return self.directory._rsa_pairs[self.node_id].sign(body).to_bytes()

    @staticmethod
    def _rsa_cache_key(public: RSAPublicKey, body: bytes, signature: bytes) -> Tuple:
        # Raw wire bytes key the cache so hits skip signature parsing and
        # hashing entirely; bodies longer than a digest are hashed (the
        # distinct tag keeps digest keys from colliding with short bodies).
        if len(body) <= 64:
            return ("rsa", public.n, public.e, body, signature)
        return ("rsa-d", public.n, public.e, hash_bytes(body), signature)

    def _verify_rsa(self, public: RSAPublicKey, body: bytes, signature: bytes) -> bool:
        if self.use_cache and verify_cache.GLOBAL.enabled:
            key = self._rsa_cache_key(public, body, signature)
            cached = verify_cache.GLOBAL.get(key)
            if cached is not None:
                return cached
        else:
            key = None
        t0 = time.perf_counter()
        try:
            sig = RSASignature.from_bytes(signature)
        except (ValueError, IndexError):
            outcome = False
        else:
            outcome = public.verify(body, sig)
        if key is not None:
            verify_cache.GLOBAL.put(key, outcome, time.perf_counter() - t0)
        return outcome

    def verify(
        self, origin: int, body: bytes, signature: bytes, domain: str = DOMAIN_FORWARDING
    ) -> bool:
        self.counters[domain].rsa_verify += 1
        try:
            public = self.directory.rsa_public(origin)
        except KeyError:
            return False
        return self._verify_rsa(public, body, signature)

    # -- multisignatures ------------------------------------------------------

    def ms_sign(self, body: bytes, domain: str = DOMAIN_FORWARDING) -> int:
        self.counters[domain].ms_sign += 1
        return self.directory._ms_pairs[self.node_id].sign(body).value

    def _ms_cache_key(self, body: bytes, sig_value: int, apk: int) -> Tuple:
        group = self.directory.group
        if len(body) <= 64:
            return ("ms", group.q, group.g, apk, body, sig_value)
        return ("ms-d", group.q, group.g, apk, hash_bytes(body), sig_value)

    def ms_verify_value(
        self,
        body: bytes,
        sig_value: int,
        multiset: Counter,
        cache_key: Tuple,
        domain: str = DOMAIN_FORWARDING,
    ) -> bool:
        """Verify an aggregate signature value against a signer multiset."""
        self.counters[domain].ms_verify += 1
        group = self.directory.group
        apk = self._aggregate_key(cache_key, multiset, domain)
        if not self.use_cache or not verify_cache.GLOBAL.enabled:
            h = group.hash_to_group(body)
            return (sig_value * group.g) % group.q == (h * apk) % group.q

        def compute() -> bool:
            h = group.hash_to_group(body)
            return (sig_value * group.g) % group.q == (h * apk) % group.q

        return verify_cache.cached_check(
            self._ms_cache_key(body, sig_value, apk), compute
        )

    def ms_verify_batch(
        self,
        entries: Sequence[Tuple[bytes, int, Counter, Tuple]],
        domain: str = DOMAIN_FORWARDING,
    ) -> List[bool]:
        """Batch :meth:`ms_verify_value` over (body, sig, multiset, key).

        Counting semantics are identical to calling :meth:`ms_verify_value`
        once per entry (the batch is a simulator fast path, not a modeled
        protocol change): one ms_verify per entry, ms_combine_key once per
        distinct aggregate key this node has not paid for yet.  Cache hits
        are served per entry; only the residual misses pay arithmetic,
        amortized in one batched group equation.
        """
        if not entries:
            return []
        group = self.directory.group
        bucket = self.counters[domain]
        results: List[Optional[bool]] = [None] * len(entries)
        misses: List[Tuple[int, Tuple[bytes, int, int], Optional[Tuple]]] = []
        caching = self.use_cache and verify_cache.GLOBAL.enabled
        for index, (body, sig_value, multiset, agg_cache_key) in enumerate(entries):
            bucket.ms_verify += 1
            apk = self._aggregate_key(agg_cache_key, multiset, domain)
            if caching:
                key = self._ms_cache_key(body, sig_value, apk)
                cached = verify_cache.GLOBAL.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            else:
                key = None
            misses.append((index, (body, sig_value, apk), key))
        if misses:
            verdicts = verify_multisig_values_batch(
                group, [triple for _i, triple, _k in misses]
            )
            for (index, _triple, key), verdict in zip(misses, verdicts):
                results[index] = verdict
                if key is not None:
                    verify_cache.GLOBAL.put(key, verdict)
        return [bool(r) for r in results]

    def ms_warm_batch(
        self, entries: Sequence[Tuple[bytes, int, Counter, Tuple]]
    ) -> int:
        """Warm the verification cache with one batched multisig pass.

        A pure prefetch for round-batched verification: no counters are
        charged (the per-message processing that later consumes the cached
        outcomes still counts every logical operation), aggregate keys go
        through :meth:`Directory.peek_aggregate_key` so the counted key
        cache is untouched, and already-cached outcomes are skipped.
        Returns the number of entries actually verified.
        """
        if not entries or not self.use_cache or not verify_cache.GLOBAL.enabled:
            return 0
        group = self.directory.group
        misses: List[Tuple[Tuple, Tuple[bytes, int, int]]] = []
        seen = set()
        for body, sig_value, multiset, agg_cache_key in entries:
            apk = self.directory.peek_aggregate_key(agg_cache_key, multiset)
            key = self._ms_cache_key(body, sig_value, apk)
            if key in seen or verify_cache.GLOBAL.get(key) is not None:
                continue
            seen.add(key)
            misses.append((key, (body, sig_value, apk)))
        if misses:
            verdicts = verify_multisig_values_batch(
                group, [triple for _k, triple in misses]
            )
            for (key, _triple), verdict in zip(misses, verdicts):
                verify_cache.GLOBAL.put(key, verdict)
        return len(misses)

    def verify_operator(
        self, body: bytes, signature: bytes, domain: str = DOMAIN_FORWARDING
    ) -> bool:
        """Verify an operator-signed certificate (blessings)."""
        self.counters[domain].rsa_verify += 1
        return self._verify_rsa(self.directory.operator.public_key, body, signature)

    def ms_combine(self, a: int, b: int, domain: str = DOMAIN_FORWARDING) -> int:
        self.counters[domain].ms_combine_sig += 1
        return (a + b) % self.directory.group.q
