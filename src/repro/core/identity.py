"""Node identities, the key directory, and counted crypto operations.

Every node owns an RSA working keypair (ordinary signatures: evidence, data
packets, BASIC heartbeats) and a multisignature keypair (MULTI heartbeats).
The :class:`Directory` holds all public keys -- the paper assumes every node
knows every other node's public key (S3) -- and :class:`NodeCrypto` is a
per-node handle that performs operations while incrementing the node's
:class:`~repro.crypto.cost_model.CryptoCounters`, split into a *forwarding*
bucket and an *auditing* bucket to reproduce Fig. 8b's breakdown.

Aggregate public keys for coverage multisets are cached process-wide: they
are deterministic functions of public information (topology + fault epoch),
so sharing the cache across simulated nodes loses no fidelity while keeping
simulations fast; the ms_combine_key cost is charged to the first node that
computes each key.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.cost_model import CryptoCounters
from repro.crypto.multisig import (
    MultisigGroup,
    MultisigKeyPair,
    MultisigPublicKey,
)
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSASignature

DOMAIN_FORWARDING = "forwarding"
DOMAIN_AUDITING = "auditing"


class Directory:
    """All nodes' public keys plus the shared multisignature group."""

    def __init__(self, rsa_bits: int = 512, multisig_bits: int = 256, seed: int = 0):
        self.rsa_bits = rsa_bits
        self.group = MultisigGroup(bits=multisig_bits, seed=seed)
        self._rsa_pairs: Dict[int, RSAKeyPair] = {}
        self._ms_pairs: Dict[int, MultisigKeyPair] = {}
        self._seed = seed
        # The deployment's operator trust root (paper S2.4 blessing).
        self.operator = RSAKeyPair(bits=max(rsa_bits, 256),
                                   seed=hash((seed, "operator")))
        # (adjacency_key, node, age) -> aggregate key value.
        self._agg_key_cache: Dict[Tuple, int] = {}

    def register(self, node_id: int) -> None:
        if node_id in self._rsa_pairs:
            return
        self._rsa_pairs[node_id] = RSAKeyPair(
            bits=self.rsa_bits, seed=hash((self._seed, "rsa", node_id))
        )
        self._ms_pairs[node_id] = MultisigKeyPair(
            self.group, seed=hash((self._seed, "ms", node_id)), node_id=node_id
        )

    def rsa_public(self, node_id: int) -> RSAPublicKey:
        return self._rsa_pairs[node_id].public_key

    def ms_public(self, node_id: int) -> MultisigPublicKey:
        return self._ms_pairs[node_id].public_key

    def crypto_for(self, node_id: int) -> "NodeCrypto":
        return NodeCrypto(node_id, self)

    # -- aggregate key computation (cached, cost charged on miss) ---------------

    def aggregate_key_value(
        self, cache_key: Tuple, multiset: Counter, counters: Optional[CryptoCounters]
    ) -> int:
        cached = self._agg_key_cache.get(cache_key)
        if cached is not None:
            return cached
        q = self.group.q
        value = 0
        for node, mult in sorted(multiset.items()):
            value = (value + mult * self._ms_pairs[node].public_key.value) % q
            if counters is not None:
                counters.ms_combine_key += 1
        self._agg_key_cache[cache_key] = value
        return value


@dataclass
class NodeCrypto:
    """Per-node crypto handle with operation counting.

    Attributes:
        node_id: the owning node.
        directory: the shared key directory.
        counters: per-domain operation counters.
    """

    node_id: int
    directory: Directory

    def __post_init__(self) -> None:
        self.counters: Dict[str, CryptoCounters] = {
            DOMAIN_FORWARDING: CryptoCounters(),
            DOMAIN_AUDITING: CryptoCounters(),
        }

    def total_counters(self) -> CryptoCounters:
        total = CryptoCounters()
        for bucket in self.counters.values():
            total.merge(bucket)
        return total

    # -- RSA ------------------------------------------------------------------

    def sign(self, body: bytes, domain: str = DOMAIN_FORWARDING) -> bytes:
        self.counters[domain].rsa_sign += 1
        return self.directory._rsa_pairs[self.node_id].sign(body).to_bytes()

    def verify(
        self, origin: int, body: bytes, signature: bytes, domain: str = DOMAIN_FORWARDING
    ) -> bool:
        self.counters[domain].rsa_verify += 1
        try:
            sig = RSASignature.from_bytes(signature)
        except (ValueError, IndexError):
            return False
        try:
            public = self.directory.rsa_public(origin)
        except KeyError:
            return False
        return public.verify(body, sig)

    # -- multisignatures ------------------------------------------------------

    def ms_sign(self, body: bytes, domain: str = DOMAIN_FORWARDING) -> int:
        self.counters[domain].ms_sign += 1
        return self.directory._ms_pairs[self.node_id].sign(body).value

    def ms_verify_value(
        self,
        body: bytes,
        sig_value: int,
        multiset: Counter,
        cache_key: Tuple,
        domain: str = DOMAIN_FORWARDING,
    ) -> bool:
        """Verify an aggregate signature value against a signer multiset."""
        self.counters[domain].ms_verify += 1
        group = self.directory.group
        apk = self.directory.aggregate_key_value(
            cache_key, multiset, self.counters[domain]
        )
        h = group.hash_to_group(body)
        return (sig_value * group.g) % group.q == (h * apk) % group.q

    def verify_operator(
        self, body: bytes, signature: bytes, domain: str = DOMAIN_FORWARDING
    ) -> bool:
        """Verify an operator-signed certificate (blessings)."""
        self.counters[domain].rsa_verify += 1
        try:
            sig = RSASignature.from_bytes(signature)
        except (ValueError, IndexError):
            return False
        return self.directory.operator.public_key.verify(body, sig)

    def ms_combine(self, a: int, b: int, domain: str = DOMAIN_FORWARDING) -> int:
        self.counters[domain].ms_combine_sig += 1
        return (a + b) % self.directory.group.q
