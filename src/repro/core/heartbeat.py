"""Heartbeat records, storage, and multisignature coverage (paper S3.5-3.6).

REBOUND-BASIC floods individually signed heartbeats with the S3.5
optimizations: only *new* heartbeats are forwarded (delta flooding), and
heartbeats older than the max-fail distance D_max are expired.

REBOUND-MULTI aggregates heartbeats: because the signed body sigma_i(r,|dE|)
excludes the signer's identity, all stable-state heartbeats for a round are
signatures over identical bytes and can be combined incrementally as they
traverse the network.  The key observation (paper: "the aggregate public
keys for the verification can be precomputed based on the current mode") is
that under a deterministic propagation discipline, the signer *multiset* a
correct node holds for origin-round r' after a rounds is a pure function of
the (fault-adjusted) topology:

    M(i, 0) = {i: 1}
    M(i, a) = M(i, a-1) + sum over neighbors j that transmitted at age a-1
              of M(j, a-1)

where a node transmits its aggregate at age a iff its *support* (the signer
set) grew at that age (age 0 always).  The :class:`CoverageCalculator`
computes these multisets, so aggregate messages need carry no signer list at
all -- the receiver derives the expected aggregate public key itself.  When
faults disturb propagation the multisets stop matching, verification fails,
and nodes fall back to forwarding individual signatures (the bounded
worst case of S3.6); once evidence stabilizes, aggregation resumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.evidence import heartbeat_body
from repro.net.message import encode, register_message
from repro.obs import recorder as _flight
from repro.obs.events import EV_HEARTBEAT_STORED

try:  # numpy backs the bitset fast paths; plain sets remain the fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

HAVE_NUMPY = _np is not None

_ONE = _np.uint64(1) if HAVE_NUMPY else None


def bitset_words(n: int) -> int:
    """uint64 words needed for an ``n``-bit set (at least one)."""
    return max(1, (n + 63) >> 6)


def pack_node_bits(nodes: Iterable[int], index: Mapping[int, int], words: int):
    """Pack node ids into a uint64 bit array via their index positions."""
    bits = _np.zeros(words, dtype=_np.uint64)
    for node in nodes:
        pos = index.get(node)
        if pos is not None:
            bits[pos >> 6] |= _ONE << _np.uint64(pos & 63)
    return bits


@register_message
@dataclass(frozen=True)
class HeartbeatRecord:
    """An individually signed heartbeat half sigma_i(r, |dE|).

    Attributes:
        origin: the signing node.
        round_no: the round the heartbeat was generated in.
        delta_count: number of new evidence items the origin endorsed that
            round (0 in stable state).
        signature: origin's signature bytes over
            :func:`repro.core.evidence.heartbeat_body`.
    """

    origin: int
    round_no: int
    delta_count: int
    signature: bytes

    def body(self) -> bytes:
        return heartbeat_body(self.round_no, self.delta_count)


@register_message
@dataclass(frozen=True)
class AggregateHeartbeat:
    """A multisignature aggregate over one origin-round's heartbeats.

    Carries *no signer list*: the receiver derives the expected multiset
    from the sender identity, the age (current round minus origin round),
    and the shared fault epoch.

    Attributes:
        round_no: the origin round covered.
        sig_value: the aggregated group element (toy-BLS integer).
        epoch_digest: digest of the failure pattern the sender's coverage
            is computed under; receivers with a different pattern ignore
            the aggregate and rely on the individual-signature fallback.
    """

    round_no: int
    sig_value: int
    epoch_digest: bytes

    def body(self) -> bytes:
        return heartbeat_body(self.round_no, 0)


class CoverageCalculator:
    """Deterministic aggregate-coverage multisets for one fault epoch.

    Args:
        adjacency: node -> iterable of live neighbors (the fault-adjusted
            connectivity among controllers).
        max_age: compute coverage up to this age (typically D_max).
    """

    def __init__(self, adjacency: Mapping[int, Iterable[int]], max_age: int):
        self._adj = {n: sorted(neigh) for n, neigh in adjacency.items()}
        self.max_age = max_age
        # multiset[a][i] and support[a][i]; transmitted[a][i] -> bool.
        self._multiset: List[Dict[int, Counter]] = []
        self._support: List[Dict[int, FrozenSet[int]]] = []
        self._transmitted: List[Dict[int, bool]] = []
        # Lazily packed support bitsets, valid for one node index at a time
        # (calculators are shared process-wide; different systems carry
        # different indexes and simply repack on first use).
        self._bit_index: Optional[Mapping[int, int]] = None
        self._bit_words = 0
        self._support_bits: List[Dict[int, Any]] = []
        self._compute()

    def _compute(self) -> None:
        nodes = sorted(self._adj)
        m0 = {i: Counter({i: 1}) for i in nodes}
        s0 = {i: frozenset({i}) for i in nodes}
        t0 = {i: True for i in nodes}  # every node transmits its own at age 0
        self._multiset.append(m0)
        self._support.append(s0)
        self._transmitted.append(t0)
        for age in range(1, self.max_age + 1):
            prev_m = self._multiset[age - 1]
            prev_s = self._support[age - 1]
            prev_t = self._transmitted[age - 1]
            m: Dict[int, Counter] = {}
            s: Dict[int, FrozenSet[int]] = {}
            t: Dict[int, bool] = {}
            for i in nodes:
                acc = Counter(prev_m[i])
                sup = set(prev_s[i])
                for j in self._adj[i]:
                    if prev_t.get(j):
                        acc.update(prev_m[j])
                        sup.update(prev_s[j])
                m[i] = acc
                new_sup = frozenset(sup)
                s[i] = new_sup
                t[i] = new_sup > prev_s[i]
            self._multiset.append(m)
            self._support.append(s)
            self._transmitted.append(t)

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def multiset(self, node: int, age: int) -> Counter:
        """Expected signer multiset of ``node``'s aggregate at ``age``."""
        age = min(age, self.max_age)
        return self._multiset[age][node]

    def support(self, node: int, age: int) -> FrozenSet[int]:
        """Expected signer *set* of ``node``'s aggregate at ``age``."""
        age = min(age, self.max_age)
        return self._support[age][node]

    def ensure_bit_index(self, index: Mapping[int, int]) -> None:
        """Adopt ``index`` (node id -> bit position) for support bitsets,
        discarding packs made under a different index."""
        if self._bit_index is index:
            return
        if self._bit_index == index:
            self._bit_index = index  # same mapping: keep packs, fast-path next call
            return
        self._bit_index = index
        self._bit_words = bitset_words(len(index))
        self._support_bits = [{} for _ in range(self.max_age + 1)]

    def support_bits(self, node: int, age: int):
        """``support(node, age)`` as a packed uint64 bit array (cached).

        Requires a prior :meth:`ensure_bit_index`; the returned array is
        shared -- callers must not mutate it in place."""
        age = min(age, self.max_age)
        cache = self._support_bits[age]
        bits = cache.get(node)
        if bits is None:
            bits = pack_node_bits(
                self._support[age][node], self._bit_index, self._bit_words
            )
            cache[node] = bits
        return bits

    def transmitted(self, node: int, age: int) -> bool:
        """Whether a correct ``node`` transmits its aggregate at ``age``."""
        if age < 0:
            return False
        if age > self.max_age:
            return False
        return self._transmitted[age][node]

    def saturation_age(self, node: int) -> int:
        """First age at which ``node``'s support stops growing."""
        for age in range(1, self.max_age + 1):
            if self._support[age][node] == self._support[age - 1][node]:
                return age - 1
        return self.max_age

    def full_support(self, node: int) -> FrozenSet[int]:
        """The eventual support: every node reachable from ``node``."""
        return self._support[self.max_age][node]


class BasicHeartbeatStore:
    """Windowed storage of individual heartbeats with equivocation checks.

    Tracks which records were *newly learned* in the current round (for
    delta flooding) and expires records older than D_max (second S3.5
    refinement) when enabled.
    """

    def __init__(self, window: int, expiry: bool = True):
        self.window = window
        self.expiry = expiry
        #: the node this store belongs to (set by the forwarding layer);
        #: flight-recorder events are only attributable when it is known.
        self.owner: Optional[int] = None
        self._records: Dict[Tuple[int, int], HeartbeatRecord] = {}
        self._new_this_round: List[HeartbeatRecord] = []

    def add(self, record: HeartbeatRecord) -> Tuple[str, Optional[HeartbeatRecord]]:
        """Insert a (verified) record.

        Returns ("new", None), ("dup", None), or -- when the origin already
        signed a *different* heartbeat for the round --
        ("conflict", existing_record).
        """
        key = (record.origin, record.round_no)
        existing = self._records.get(key)
        if existing is not None:
            status: Tuple[str, Optional[HeartbeatRecord]] = (
                ("dup", None)
                if existing.delta_count == record.delta_count
                else ("conflict", existing)
            )
        else:
            self._records[key] = record
            self._new_this_round.append(record)
            status = ("new", None)
        flight = _flight.active
        if flight is not None and self.owner is not None:
            flight.emit(
                EV_HEARTBEAT_STORED,
                self.owner,
                {
                    "origin": record.origin,
                    "hb_round": record.round_no,
                    "status": status[0],
                },
            )
        return status

    def get(self, origin: int, round_no: int) -> Optional[HeartbeatRecord]:
        return self._records.get((origin, round_no))

    def latest_round_of(self, origin: int) -> Optional[int]:
        rounds = [r for (o, r) in self._records if o == origin]
        return max(rounds) if rounds else None

    def drain_new(self) -> List[HeartbeatRecord]:
        """Records learned since the last drain (the flooding delta)."""
        new, self._new_this_round = self._new_this_round, []
        return new

    def expire(self, current_round: int) -> int:
        """Drop records older than the window; returns how many."""
        if not self.expiry:
            return 0
        cutoff = current_round - self.window
        stale = [k for k in self._records if k[1] < cutoff]
        for key in stale:
            del self._records[key]
        return len(stale)

    def serialized_size(self) -> int:
        records = [self._records[k] for k in sorted(self._records)]
        return len(encode(records))

    def __len__(self) -> int:
        return len(self._records)


class BitsetHeartbeatStore(BasicHeartbeatStore):
    """A heartbeat store with numpy-backed per-round presence bitsets.

    State-equivalent to :class:`BasicHeartbeatStore` (identical records,
    add statuses, and expiry results); additionally keyed by origin round,
    so expiry drops whole rounds instead of scanning every key (the scan
    is O(n * window) per node per round at 1000 nodes), and presence is
    available as a bit array for vectorized set operations.
    """

    def __init__(
        self,
        window: int,
        expiry: bool = True,
        node_index: Optional[Mapping[int, int]] = None,
    ):
        super().__init__(window, expiry)
        self._node_index: Mapping[int, int] = node_index or {}
        self._words = bitset_words(len(self._node_index))
        self._presence: Dict[int, Any] = {}
        self._round_keys: Dict[int, List[Tuple[int, int]]] = {}

    def add(self, record: HeartbeatRecord) -> Tuple[str, Optional[HeartbeatRecord]]:
        before = len(self._records)
        status = super().add(record)
        if len(self._records) != before:
            self._round_keys.setdefault(record.round_no, []).append(
                (record.origin, record.round_no)
            )
            pos = self._node_index.get(record.origin)
            if pos is not None:
                mask = self._presence.get(record.round_no)
                if mask is None:
                    mask = _np.zeros(self._words, dtype=_np.uint64)
                    self._presence[record.round_no] = mask
                mask[pos >> 6] |= _ONE << _np.uint64(pos & 63)
        return status

    def presence_bits(self, round_no: int):
        """Bitset of origins whose record for ``round_no`` is held."""
        mask = self._presence.get(round_no)
        if mask is None:
            return _np.zeros(self._words, dtype=_np.uint64)
        return mask

    def expire(self, current_round: int) -> int:
        if not self.expiry:
            return 0
        cutoff = current_round - self.window
        dropped = 0
        for round_no in [r for r in self._round_keys if r < cutoff]:
            for key in self._round_keys.pop(round_no):
                if self._records.pop(key, None) is not None:
                    dropped += 1
            self._presence.pop(round_no, None)
        return dropped
