"""A full REBOUND controller node: forwarding + auditing + mode selection.

Each controller independently: floods/validates evidence (forwarding layer),
executes and audits tasks (auditing layer), and -- whenever its evidence
changes -- derives the failure pattern (KN, KL), looks up the precomputed
mode in its local copy of the mode tree, and switches to it *without any
coordination* (paper S2.6: no consensus, no coordinator).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.auditing import AuditingLayer, TaskRegistry
from repro.core.config import VARIANT_MULTI, ReboundConfig
from repro.core.evidence import EvidenceVerifier
from repro.core.forwarding import ForwardingLayer, RoundOutput
from repro.core.identity import NodeCrypto
from repro.core.paths import PATH_DATA, PathComputer, PathSet
from repro.net.message import encoded_size
from repro.net.network import NodeProtocol
from repro.net.topology import ROLE_CONTROLLER, Topology
from repro.obs import recorder as _flight
from repro.obs.events import EV_MODE_SELECTED
from repro.sched.assign import ModeSchedule
from repro.sched.modegen import EMPTY_SCENARIO, FailureScenario, ModeTree
from repro.sched.task import Workload


class PathCache:
    """Process-wide cache of PATH(m) per mode schedule.

    Path computation is a deterministic function of public information, so
    sharing the cache across simulated nodes is fidelity-neutral.
    """

    def __init__(self, computer: PathComputer):
        self.computer = computer
        self._cache: Dict[Tuple, PathSet] = {}

    def paths_for(self, schedule: ModeSchedule) -> PathSet:
        key = (
            schedule.failed_nodes,
            schedule.failed_links,
            tuple(sorted(schedule.placements.items())),
            schedule.active_flows,
        )
        paths = self._cache.get(key)
        if paths is None:
            paths = self.computer.compute(schedule)
            self._cache[key] = paths
        return paths


class ReboundNode(NodeProtocol):
    """One controller running the complete REBOUND stack."""

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        workload: Workload,
        config: ReboundConfig,
        crypto: NodeCrypto,
        registry: TaskRegistry,
        mode_tree: ModeTree,
        path_cache: PathCache,
    ):
        self.node_id = node_id
        self.topology = topology
        self.workload = workload
        self.config = config
        self.crypto = crypto
        self.registry = registry
        self.mode_tree = mode_tree
        self.path_cache = path_cache
        #: Optional durable store (repro.durability.NodeDurableStore);
        #: bound by the runtime when ReboundConfig.durability_enabled.
        self.durable = None

        verifier = EvidenceVerifier(
            verify_signature=crypto.verify,
            replay_task=registry.replay,
            replay_state=registry.replay_state,
            verify_operator=crypto.verify_operator,
            verify_record_signature=(
                self._verify_multisig_record
                if config.variant == VARIANT_MULTI
                else None
            ),
        )
        from repro.core.quotas import pending_audit_cap

        self.auditing = AuditingLayer(
            node_id=node_id,
            workload=workload,
            registry=registry,
            crypto=crypto,
            submit_evidence=self._submit_evidence,
            send_on_path=self._send_on_path,
            pending_cap=(
                pending_audit_cap(config.d_max)
                if config.quotas_enabled and config.d_max is not None
                else None
            ),
        )
        self.forwarding = ForwardingLayer(
            node_id=node_id,
            topology=topology,
            config=config,
            crypto=crypto,
            verifier=verifier,
            on_new_evidence=self._on_new_evidence,
            on_packet=self.auditing.on_packet,
        )
        self.current_scenario: FailureScenario = EMPTY_SCENARIO
        self.current_schedule: Optional[ModeSchedule] = None
        self.mode_switches: List[Tuple[int, FailureScenario]] = []
        self._round = 0
        # Round-batched verification (MULTI only): buffer the round's
        # deliveries and flush them through ForwardingLayer.receive_batch
        # at round end, so all multisig checks warm the cache in one
        # batched pass.  Safe because nothing observes forwarding state
        # between the receive phase and on_round_end.
        self._defer_receive = bool(
            config.round_batched_verify
            and config.protocol_enabled
            and config.variant == VARIANT_MULTI
        )
        self._inbound: List[Tuple[int, int, Any]] = []
        # Optional per-layer traffic breakdown (Fig. 8a); off by default
        # because it re-encodes every outgoing message.
        self.traffic_accounting = False
        self.traffic_bytes: Dict[str, int] = {
            "payload": 0, "rebound": 0, "auditing": 0,
        }

    # -- lifecycle --------------------------------------------------------------

    def start(self, round_no: int = 0) -> None:
        """Adopt the fault-free mode and begin participating."""
        self._round = round_no
        self.forwarding.start(round_no)
        self._adopt_mode(EMPTY_SCENARIO, round_no)

    def _adopt_mode(self, scenario: FailureScenario, round_no: int) -> None:
        schedule = self.mode_tree.schedule_for(scenario)
        if schedule == self.current_schedule:
            return
        paths = self.path_cache.paths_for(schedule)
        self.current_scenario = scenario
        self.current_schedule = schedule
        self.forwarding.set_paths(paths, stable_since=round_no)
        self.auditing.set_mode(schedule, paths, round_no)
        self.mode_switches.append((round_no, scenario))
        rec = _flight.active
        if rec is not None:
            rec.emit(
                EV_MODE_SELECTED,
                self.node_id,
                {
                    "failed_nodes": sorted(schedule.failed_nodes),
                    "failed_links": [
                        list(link) for link in sorted(schedule.failed_links)
                    ],
                    "placement_hosts": sorted(set(schedule.placements.values())),
                },
                round_no=round_no,
            )

    def readopt_mode(self, round_no: int) -> None:
        """Force a fresh mode lookup and adoption for the current fault
        pattern, bypassing the no-change fast path.  Used after a state
        resync or an online tree refresh, where the cached pointer itself
        is what is being repaired."""
        self.current_schedule = None
        self._adopt_mode(self.forwarding.fault_pattern, round_no)

    # -- layer callbacks -----------------------------------------------------------

    def _verify_multisig_record(
        self, origin: int, body: bytes, signature: bytes
    ) -> bool:
        """Verify a record signature under the multisignature variant, where
        records carry a partial-multisig value instead of a plain RSA
        signature (matches ``ForwardingLayer._verify_record``)."""
        try:
            value = int.from_bytes(signature, "big")
        except (TypeError, ValueError):
            return False
        return self.crypto.ms_verify_value(
            body, value, Counter({origin: 1}), cache_key=("single", origin)
        )

    def _submit_evidence(self, item: Any) -> None:
        self.forwarding.submit_evidence(item)

    def _send_on_path(self, path, payload: bytes) -> None:
        self.forwarding.queue_packet(path, payload)

    def _on_new_evidence(self, items: List[Any]) -> None:
        if self.durable is not None:
            self.durable.record_evidence(self._round, items)
        pattern = self.forwarding.fault_pattern
        self._adopt_mode(pattern, self._round)

    # -- NodeProtocol ---------------------------------------------------------------

    def on_round_start(self, round_no: int) -> None:
        self._round = round_no
        self._inbound.clear()
        self.forwarding.begin_round(round_no)

    def on_receive(self, round_no: int, sender: int, payload: Any) -> None:
        if self._defer_receive:
            self._inbound.append((round_no, sender, payload))
            return
        self.forwarding.receive(round_no, sender, payload)

    def on_round_end(self, round_no: int) -> None:
        if self._inbound:
            batch, self._inbound = self._inbound, []
            self.forwarding.receive_batch(batch)
        self.auditing.execute_round(round_no)
        output = self.forwarding.end_round()
        self._transmit(output)
        if self.durable is not None:
            self.durable.end_round(self, round_no)

    # -- transmission -----------------------------------------------------------------

    def _account(self, msg) -> None:
        if not self.traffic_accounting:
            return
        if msg.records or msg.aggregates or msg.evidence:
            self.traffic_bytes["rebound"] += (
                encoded_size(msg.records)
                + encoded_size(msg.aggregates)
                + encoded_size(msg.evidence)
            )
        for packet in msg.packets:
            path = self.forwarding.paths.by_id.get(packet.path_id)
            bucket = (
                "payload" if path is not None and path.kind == PATH_DATA
                else "auditing"
            )
            self.traffic_bytes[bucket] += encoded_size(packet)

    @staticmethod
    def _empty(msg) -> bool:
        return not (msg.records or msg.aggregates or msg.evidence or msg.packets)

    def _transmit(self, output: RoundOutput) -> None:
        remaining = set(output.controller_neighbors)
        device_hops = [
            hop
            for hop in output.packets_by_next_hop
            if self.topology.role(hop) != ROLE_CONTROLLER
        ]
        if self.config.bus_broadcast:
            for bus in self.topology.buses_of(self.node_id):
                members = sorted(bus.members - {self.node_id})
                covered_controllers = [m for m in members if m in remaining]
                covered_devices = [m for m in members if m in device_hops]
                # Fresh evidence is broadcast on *every* bus: devices
                # (sensors/actuators) learn mode changes purely by
                # listening to their bus, so skipping a device-only bus
                # would leave them in a stale mode.
                evidence_for_devices = bool(output.evidence) and any(
                    self.topology.role(m) != ROLE_CONTROLLER for m in members
                )
                if (
                    not covered_controllers
                    and not covered_devices
                    and not evidence_for_devices
                ):
                    continue
                msg = output.message_for(
                    self.node_id, covered_controllers + covered_devices
                )
                if self._empty(msg):
                    continue
                self._account(msg)
                self.network.broadcast(self.node_id, bus.bus_id, msg)
                remaining -= set(covered_controllers)
                for d in covered_devices:
                    device_hops.remove(d)
        for j in sorted(remaining):
            msg = output.message_for(self.node_id, [j])
            if self._empty(msg):
                continue
            self._account(msg)
            self.network.send(self.node_id, j, msg)
        for d in sorted(set(device_hops)):
            msg = output.message_for(self.node_id, [d])
            if self._empty(msg):
                continue
            self._account(msg)
            self.network.send(self.node_id, d, msg)

    # -- introspection -----------------------------------------------------------------

    @property
    def evidence(self):
        return self.forwarding.evidence

    @property
    def fault_pattern(self) -> FailureScenario:
        return self.forwarding.fault_pattern
