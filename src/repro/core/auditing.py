"""The REBOUND auditing layer (paper S3.7-3.8).

Inspired by PeerReview, but much simpler because the synchronous forwarding
layer already handles omission faults: in each round, the sink of a path
either receives a correctly signed message or a mode transition occurs.

Mechanics per audited task tau with primary pi and replicas rho_1..rho_fconc:

* pi executes tau every round on the inputs delivered that round, signs the
  output authenticator, and sends the output downstream (tau -> beta paths).
* pi streams a signed *bundle* (round, pre-state, inputs) to each replica
  (tau -> rho paths) -- the paper's "the primary needs to stream updates to
  each replica".
* every downstream consumer beta (task host or actuator) forwards the
  authenticator of tau's output to tau's replicas (beta -> rho paths).
* replicas exchange input/output authenticators (rho -> rho paths) to
  detect equivocation toward different replicas.
* each replica replays the bundle deterministically; if the replayed output
  digest disagrees with a validly-signed downstream authenticator, the
  replica emits a :class:`~repro.core.evidence.BadComputationPoM`, which the
  forwarding layer floods and every node verifies independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.evidence import BadComputationPoM, StateChainPoM, data_body
from repro.core.identity import DOMAIN_AUDITING, NodeCrypto
from repro.core.paths import (
    DEVICE_TASK,
    PATH_AUTH,
    PATH_DATA,
    PATH_INPUT,
    PATH_XREP,
    Path,
    PathSet,
)
from repro.crypto.hashing import hash_bytes
from repro.net.message import decode, encode
from repro.obs import recorder as _flight
from repro.obs.events import (
    EV_AUDIT_CHALLENGE,
    EV_AUDIT_RESPONSE,
    EV_POM_CREATED,
)
from repro.sched.assign import ModeSchedule
from repro.sched.task import Workload

# An input to a task execution: (origin, path_id, origin_round, payload, sig).
InputTuple = Tuple[int, int, int, bytes, bytes]


class TaskLogic:
    """Deterministic task behaviour; subclass per application task.

    Implementations MUST be deterministic functions of (state, inputs,
    round); replicas and PoM verifiers re-execute them bit-for-bit.
    """

    def initial_state(self) -> bytes:
        return b""

    def compute(
        self, state: bytes, inputs: List[Tuple[int, bytes]], round_no: int
    ) -> Tuple[bytes, bytes]:
        """Execute one period.

        Args:
            state: the task's state before this execution.
            inputs: (path_id, payload) pairs sorted by path_id.
            round_no: the execution round.

        Returns:
            (new_state, output_payload).
        """
        raise NotImplementedError


class PassthroughTask(TaskLogic):
    """Forwards the concatenation of its inputs; the default stage logic."""

    def compute(self, state, inputs, round_no):
        return b"", b"".join(payload for _pid, payload in inputs)


class TaskRegistry:
    """task_id -> TaskLogic; shared by all nodes (deterministic replay)."""

    def __init__(self) -> None:
        self._logic: Dict[int, TaskLogic] = {}

    def register(self, task_id: int, logic: TaskLogic) -> None:
        self._logic[task_id] = logic

    def register_default(self, workload: Workload) -> None:
        for task in workload.tasks:
            self._logic.setdefault(task.task_id, PassthroughTask())

    def logic(self, task_id: int) -> Optional[TaskLogic]:
        return self._logic.get(task_id)

    def _replay_full(
        self, task_id: int, state: bytes, inputs: Tuple[InputTuple, ...], round_no: int
    ) -> Optional[Tuple[bytes, bytes]]:
        logic = self._logic.get(task_id)
        if logic is None:
            return None
        try:
            pairs = sorted((entry[1], entry[3]) for entry in inputs)
        except (TypeError, IndexError):
            return None
        try:
            new_state, output = logic.compute(state, pairs, round_no)
        except Exception:
            return None
        return new_state, output

    def replay(
        self, task_id: int, state: bytes, inputs: Tuple[InputTuple, ...], round_no: int
    ) -> Optional[bytes]:
        """Output-replay adapter for :class:`EvidenceVerifier`."""
        result = self._replay_full(task_id, state, inputs, round_no)
        return result[1] if result is not None else None

    def replay_state(
        self, task_id: int, state: bytes, inputs: Tuple[InputTuple, ...], round_no: int
    ) -> Optional[bytes]:
        """State-replay adapter for state-chain verification."""
        result = self._replay_full(task_id, state, inputs, round_no)
        return result[0] if result is not None else None


@dataclass
class _ReplicaState:
    """Audit bookkeeping for one replica copy hosted on this node."""

    state: bytes
    bundles: Dict[int, Tuple[bytes, bytes]] = field(default_factory=dict)
    auths: Dict[int, List[Tuple[int, bytes, bytes]]] = field(default_factory=dict)
    peer_digests: Dict[int, List[bytes]] = field(default_factory=dict)
    next_audit_round: int = -1
    mismatch_flags: int = 0
    # (round, payload, signature) of the last audited bundle, for chaining.
    last_bundle: Optional[Tuple[int, bytes, bytes]] = None


class AuditingLayer:
    """One controller's auditing layer.

    Args:
        node_id: this controller.
        workload: the task set (for path/task metadata).
        registry: deterministic task logic.
        crypto: counted crypto handle (auditing bucket).
        submit_evidence: callback handing a locally generated PoM to the
            forwarding layer.
        send_on_path: callback(path, payload) originating a signed packet.
    """

    def __init__(
        self,
        node_id: int,
        workload: Workload,
        registry: TaskRegistry,
        crypto: NodeCrypto,
        submit_evidence: Callable[[Any], None],
        send_on_path: Callable[[Path, bytes], None],
        pending_cap: Optional[int] = None,
    ):
        self.node_id = node_id
        self.workload = workload
        self.registry = registry
        self.crypto = crypto
        self.submit_evidence = submit_evidence
        self.send_on_path = send_on_path
        # Max buffered bundle/auth/xrep rounds per replica (None = unbounded,
        # ablations only).  An honest primary streams in round order and the
        # audit loop drains after a short wait, so honest traffic never
        # reaches the cap; a gap that would stall the window is the
        # primary's fault and rounds past it are never audited anyway.
        self.pending_cap = pending_cap
        self.pending_drops = 0

        self.schedule: Optional[ModeSchedule] = None
        self.paths: PathSet = PathSet([])
        self.mode_round = 0
        self._primaries: Set[int] = set()
        self._replicas: Dict[Tuple[int, int], _ReplicaState] = {}
        self._primary_state: Dict[int, bytes] = {}
        # Inputs delivered this round for each primary task.
        self._pending_inputs: Dict[int, List[InputTuple]] = {}
        # Outputs consumed this round as a downstream beta (or produced here),
        # queued for authenticator forwarding.
        self._auth_outbox: List[Tuple[Path, bytes]] = []
        self._audit_waits: Dict[Tuple[int, int], int] = {}
        self.audits_performed = 0
        self.poms_emitted = 0

    def storage_bytes(self) -> int:
        """Retained auditing state: primary states, replica states and
        buffered bundles/authenticators (Fig. 8c's auditing share)."""
        total = sum(len(state) for state in self._primary_state.values())
        for replica in self._replicas.values():
            total += len(replica.state)
            total += sum(
                len(payload) + len(sig)
                for payload, sig in replica.bundles.values()
            )
            if replica.last_bundle is not None:
                total += len(replica.last_bundle[1]) + len(replica.last_bundle[2])
            for auths in replica.auths.values():
                total += sum(len(d) + len(sg) + 8 for _pid, d, sg in auths)
            for digests in replica.peer_digests.values():
                total += sum(len(d) for d in digests)
        return total

    # -- mode management ------------------------------------------------------

    def set_mode(self, schedule: ModeSchedule, paths: PathSet, round_no: int) -> None:
        """Adopt a new mode: update local copies, preserving surviving state.

        A node that keeps a copy keeps its state; a node that gains a copy
        it did not previously hold starts from the task's initial state (a
        replica promoted to primary on the same node keeps the replica's
        replayed state -- the cheap state transfer the scheduler's
        transition-cost minimization aims for).
        """
        self.paths = paths
        self.mode_round = round_no
        old_primary_state = dict(self._primary_state)
        old_replicas = dict(self._replicas)
        self.schedule = schedule
        self._primaries = set()
        new_replicas: Dict[Tuple[int, int], _ReplicaState] = {}
        new_primary_state: Dict[int, bytes] = {}
        for (task_id, copy_idx), host in schedule.placements.items():
            if host != self.node_id:
                continue
            logic = self.registry.logic(task_id)
            if logic is None:
                continue
            if copy_idx == 0:
                self._primaries.add(task_id)
                if task_id in old_primary_state:
                    new_primary_state[task_id] = old_primary_state[task_id]
                else:
                    # Promote a local replica's replayed state if present.
                    promoted = None
                    for (tid, _c), rep in old_replicas.items():
                        if tid == task_id:
                            promoted = rep.state
                            break
                    new_primary_state[task_id] = (
                        promoted if promoted is not None else logic.initial_state()
                    )
            else:
                existing = old_replicas.get((task_id, copy_idx))
                if existing is None:
                    for (tid, _c), rep in old_replicas.items():
                        if tid == task_id:
                            existing = rep
                            break
                if existing is not None:
                    new_replicas[(task_id, copy_idx)] = _ReplicaState(
                        state=existing.state,
                        next_audit_round=round_no + 1,
                    )
                else:
                    state0 = (
                        old_primary_state.get(task_id)
                        or logic.initial_state()
                    )
                    new_replicas[(task_id, copy_idx)] = _ReplicaState(
                        state=state0, next_audit_round=round_no + 1
                    )
        self._replicas = new_replicas
        self._primary_state = new_primary_state
        self._pending_inputs = {t: [] for t in self._primaries}
        self._audit_waits = {
            key: self._compute_audit_wait(key[0]) for key in new_replicas
        }

    def _compute_audit_wait(self, task_id: int) -> int:
        """Rounds a replica must wait after execution round e before
        auditing: the output must reach a downstream consumer and the
        consumer's authenticator must travel back (beta -> rho)."""
        longest = 0
        for data_path in self.paths.of_kind(PATH_DATA):
            if data_path.task_from != task_id:
                continue
            for auth_path in self.paths.of_kind(PATH_AUTH):
                if auth_path.task_to != task_id:
                    continue
                longest = max(longest, data_path.length + auth_path.length)
        return longest + 1

    @property
    def primaries(self) -> Set[int]:
        return set(self._primaries)

    @property
    def replica_copies(self) -> Set[Tuple[int, int]]:
        return set(self._replicas)

    # -- packet intake (wired to ForwardingLayer.on_packet) ----------------------

    def on_packet(
        self, path: Path, origin_round: int, payload: bytes, origin: int,
        signature: bytes,
    ) -> None:
        if path.kind == PATH_DATA:
            self._on_data_packet(path, origin_round, payload, origin, signature)
        elif path.kind == PATH_INPUT:
            self._on_input_bundle(path, origin_round, payload, origin, signature)
        elif path.kind == PATH_AUTH:
            self._on_auth_packet(path, origin_round, payload, origin)
        elif path.kind == PATH_XREP:
            self._on_xrep_packet(path, origin_round, payload, origin)

    def _on_data_packet(
        self, path: Path, origin_round: int, payload: bytes, origin: int,
        signature: bytes,
    ) -> None:
        task_id = path.task_to
        if task_id == DEVICE_TASK or task_id not in self._primaries:
            return
        self._pending_inputs.setdefault(task_id, []).append(
            (origin, path.path_id, origin_round, payload, signature)
        )
        # As the downstream beta of path.task_from, forward the output
        # authenticator to the producer's replicas (beta -> rho).
        if path.task_from != DEVICE_TASK:
            auth_payload = encode(
                (path.path_id, origin_round, hash_bytes(payload), signature)
            )
            for auth_path in self.paths.of_kind(PATH_AUTH):
                if (
                    auth_path.task_to == path.task_from
                    and auth_path.task_from == task_id
                    and auth_path.source == self.node_id
                ):
                    self._auth_outbox.append((auth_path, auth_payload))

    def _on_input_bundle(
        self, path: Path, origin_round: int, payload: bytes, origin: int,
        signature: bytes,
    ) -> None:
        replica = self._replicas.get((path.task_to, path.copy_to))
        if replica is None:
            return
        if not self._admit_pending(replica, origin_round, replica.bundles):
            return
        replica.bundles[origin_round] = (payload, signature)
        if replica.next_audit_round < 0:
            replica.next_audit_round = origin_round
        # Exchange the bundle digest with sibling replicas (rho -> rho).
        digest_payload = encode((origin_round, hash_bytes(payload)))
        for xrep in self.paths.of_kind(PATH_XREP):
            if (
                xrep.task_from == path.task_to
                and xrep.copy_from == path.copy_to
                and xrep.source == self.node_id
            ):
                self._auth_outbox.append((xrep, digest_payload))

    def _on_auth_packet(
        self, path: Path, origin_round: int, payload: bytes, origin: int
    ) -> None:
        replica = self._replicas.get((path.task_to, path.copy_to))
        if replica is None:
            return
        try:
            decoded = decode(payload)
        except (ValueError, TypeError):
            return
        if not (isinstance(decoded, tuple) and len(decoded) == 4):
            return
        out_path_id, out_round, digest, sig = decoded
        if not all(
            isinstance(v, t)
            for v, t in zip(decoded, (int, int, bytes, bytes))
        ):
            return
        if not self._admit_pending(replica, out_round, replica.auths):
            return
        entries = replica.auths.setdefault(out_round, [])
        if self.pending_cap is not None and len(entries) >= self.pending_cap:
            self.pending_drops += 1
            return
        entries.append((out_path_id, digest, sig))

    def _on_xrep_packet(
        self, path: Path, origin_round: int, payload: bytes, origin: int
    ) -> None:
        replica = self._replicas.get((path.task_to, path.copy_to))
        if replica is None:
            return
        try:
            decoded = decode(payload)
        except (ValueError, TypeError):
            return
        if not (isinstance(decoded, tuple) and len(decoded) == 2):
            return
        exec_round, digest = decoded
        if not isinstance(exec_round, int) or not isinstance(digest, bytes):
            return
        if not self._admit_pending(replica, exec_round, replica.peer_digests):
            return
        digests = replica.peer_digests.setdefault(exec_round, [])
        if self.pending_cap is not None and len(digests) >= self.pending_cap:
            self.pending_drops += 1
            return
        digests.append(digest)

    def _admit_pending(
        self, replica: _ReplicaState, round_no: int, buffer: Dict[int, Any]
    ) -> bool:
        """Admission check for per-replica pending buffers: the round must
        sit inside the audit window [next - 2, next + pending_cap), and a
        *new* round key must not grow the buffer past the cap."""
        if self.pending_cap is None:
            return True
        nxt = replica.next_audit_round
        if nxt >= 0:
            if round_no < nxt - 2 or round_no >= nxt + self.pending_cap:
                self.pending_drops += 1
                return False
        if round_no not in buffer and len(buffer) >= self.pending_cap:
            self.pending_drops += 1
            return False
        return True

    # -- round execution -----------------------------------------------------------

    def execute_round(self, round_no: int) -> None:
        """Run local primaries, stream bundles, forward auths, audit replicas."""
        self._run_primaries(round_no)
        self._flush_auth_outbox()
        self._run_audits(round_no)

    def _run_primaries(self, round_no: int) -> None:
        for task_id in sorted(self._primaries):
            logic = self.registry.logic(task_id)
            if logic is None:
                continue
            raw_inputs = tuple(
                sorted(
                    self._pending_inputs.get(task_id, []), key=lambda e: e[1]
                )
            )
            pairs = [(e[1], e[3]) for e in raw_inputs]
            state = self._primary_state[task_id]
            new_state, output = logic.compute(state, pairs, round_no)
            self._primary_state[task_id] = new_state
            self._pending_inputs[task_id] = []
            # Send the output downstream.
            for path in self.paths.of_kind(PATH_DATA):
                if path.task_from == task_id and path.source == self.node_id:
                    self.send_on_path(path, output)
            # Stream the signed bundle to each replica.
            bundle = encode((round_no, state, raw_inputs))
            for path in self.paths.of_kind(PATH_INPUT):
                if path.task_from == task_id and path.source == self.node_id:
                    self.send_on_path(path, bundle)

    def _flush_auth_outbox(self) -> None:
        outbox, self._auth_outbox = self._auth_outbox, []
        for path, payload in outbox:
            self.send_on_path(path, payload)

    def _run_audits(self, round_no: int) -> None:
        for (task_id, copy_idx), replica in sorted(self._replicas.items()):
            logic = self.registry.logic(task_id)
            if logic is None:
                continue
            wait = self._audit_waits.get((task_id, copy_idx), 2)
            while True:
                exec_round = replica.next_audit_round
                if exec_round < 0 or exec_round not in replica.bundles:
                    break
                if exec_round > round_no - wait:
                    break  # downstream authenticators may still be in flight
                bundle_payload, bundle_sig = replica.bundles.pop(exec_round)
                self._audit_one(
                    task_id, copy_idx, replica, logic, exec_round,
                    bundle_payload, bundle_sig,
                )
                replica.next_audit_round = exec_round + 1
            # Trim stale buffers.
            for stale in [r for r in replica.auths if r < replica.next_audit_round - 2]:
                del replica.auths[stale]
            for stale in [
                r for r in replica.peer_digests if r < replica.next_audit_round - 2
            ]:
                del replica.peer_digests[stale]

    def _input_path_for(self, task_id: int, copy_idx: int) -> Optional[Path]:
        for path in self.paths.of_kind(PATH_INPUT):
            if path.task_from == task_id and path.copy_to == copy_idx:
                return path
        return None

    def _audit_one(
        self,
        task_id: int,
        copy_idx: int,
        replica: _ReplicaState,
        logic: TaskLogic,
        exec_round: int,
        bundle_payload: bytes,
        bundle_sig: bytes,
    ) -> None:
        flight = _flight.active
        poms_before = self.poms_emitted
        if flight is not None:
            flight.emit(
                EV_AUDIT_CHALLENGE,
                self.node_id,
                {"task": task_id, "copy": copy_idx, "exec_round": exec_round},
            )
        try:
            self._audit_one_inner(
                task_id, copy_idx, replica, logic, exec_round,
                bundle_payload, bundle_sig,
            )
        finally:
            if flight is not None:
                flight.emit(
                    EV_AUDIT_RESPONSE,
                    self.node_id,
                    {
                        "task": task_id,
                        "copy": copy_idx,
                        "exec_round": exec_round,
                        "poms": self.poms_emitted - poms_before,
                    },
                )

    def _audit_one_inner(
        self,
        task_id: int,
        copy_idx: int,
        replica: _ReplicaState,
        logic: TaskLogic,
        exec_round: int,
        bundle_payload: bytes,
        bundle_sig: bytes,
    ) -> None:
        try:
            decoded = decode(bundle_payload)
        except (ValueError, TypeError):
            return
        if not (isinstance(decoded, tuple) and len(decoded) == 3):
            return
        _round, state, inputs = decoded
        # State-chain check: this bundle's pre-state must equal the state
        # replayed from the previous round's bundle (PeerReview-style
        # defense against a primary fabricating its state).
        if (
            replica.last_bundle is not None
            and replica.last_bundle[0] == exec_round - 1
            and state != replica.state
        ):
            primary = self.schedule.primary_of(task_id) if self.schedule else None
            input_path = self._input_path_for(task_id, copy_idx)
            if primary is not None and input_path is not None:
                pom = StateChainPoM(
                    accused=primary,
                    task_id=task_id,
                    round_no=exec_round - 1,
                    bundle_a_payload=replica.last_bundle[1],
                    bundle_a_signature=replica.last_bundle[2],
                    bundle_b_payload=bundle_payload,
                    bundle_b_signature=bundle_sig,
                    input_path_id=input_path.path_id,
                )
                self.poms_emitted += 1
                self._emit_pom_event(primary, "state-chain", task_id)
                self.submit_evidence(pom)
        try:
            pairs = sorted((e[1], e[3]) for e in inputs)
            new_state, output = logic.compute(state, list(pairs), exec_round)
        except Exception:
            # A signed-but-garbage bundle: replay is impossible; any signed
            # downstream authenticator then condemns the primary directly
            # (verify_bad_computation treats undecodable bundles as proof).
            new_state, output = replica.state, None
        replica.state = new_state
        replica.last_bundle = (exec_round, bundle_payload, bundle_sig)
        self.audits_performed += 1
        digest = hash_bytes(output) if output is not None else None
        # Cross-check against sibling replicas' bundle digests.
        for peer_digest in replica.peer_digests.get(exec_round, []):
            if peer_digest != hash_bytes(bundle_payload):
                replica.mismatch_flags += 1
        # Compare with every downstream authenticator for this round.
        for out_path_id, claimed_digest, sig in replica.auths.get(exec_round, []):
            if claimed_digest == digest:
                continue
            primary = (
                self.schedule.primary_of(task_id) if self.schedule else None
            )
            if primary is None:
                continue
            body = data_body(out_path_id, exec_round, claimed_digest)
            if not self.crypto.verify(
                primary, body, sig, domain=DOMAIN_AUDITING
            ):
                continue  # unattributable garbage authenticator
            input_path = self._input_path_for(task_id, copy_idx)
            if input_path is None:
                continue
            pom = BadComputationPoM(
                accused=primary,
                task_id=task_id,
                round_no=exec_round,
                bundle_payload=bundle_payload,
                bundle_signature=bundle_sig,
                input_path_id=input_path.path_id,
                claimed_output_digest=claimed_digest,
                claimed_signature=sig,
                output_path_id=out_path_id,
            )
            self.poms_emitted += 1
            self._emit_pom_event(primary, "bad-computation", task_id)
            self.submit_evidence(pom)

    def _emit_pom_event(self, accused: int, pom_kind: str, task_id: int) -> None:
        flight = _flight.active
        if flight is not None:
            flight.emit(
                EV_POM_CREATED,
                self.node_id,
                {"accused": accused, "pom": pom_kind, "task": task_id},
            )
