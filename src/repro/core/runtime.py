"""System assembly and execution: the top-level REBOUND runtime.

:class:`ReboundSystem` wires everything together -- key directory, mode
tree, path cache, network, controller nodes, sensor/actuator devices --
injects faults from a :class:`~repro.faults.scenarios.FaultScenario`, runs
rounds, and measures what the evaluation needs: per-link bandwidth, per-node
storage and crypto operations, mode census, detection/recovery rounds, and
actuator traces.
"""

from __future__ import annotations

import time
from collections import Counter as CollectionsCounter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.auditing import TaskRegistry
from repro.core.config import ReboundConfig
from repro.core.devices import ActuatorDevice, SensorDevice
from repro.core.identity import Directory
from repro.core.node import PathCache, ReboundNode
from repro.core.paths import PathComputer
from repro.faults.scenarios import FaultScenario
from repro.net.network import RoundNetwork
from repro.net.shard import ShardedRoundEngine, resolve_workers
from repro.net.topology import Topology
from repro.obs import recorder as _flight
from repro.obs.events import (
    EV_FAULT_INJECTED,
    EV_PERSIST_RESTORE,
    EV_TREE_REFRESH,
)
from repro.sched.modegen import FailureScenario, ModeTree, ModeTreeGenerator
from repro.sched.task import Workload


def default_sensor_read(node_id: int) -> Callable[[int], bytes]:
    """A deterministic placeholder reading: (node, round) encoded."""

    def read(round_no: int) -> bytes:
        return node_id.to_bytes(4, "big") + round_no.to_bytes(4, "big")

    return read


class ReboundSystem:
    """A complete simulated REBOUND deployment.

    Args:
        topology: the physical network.
        workload: the data flows.
        config: deployment parameters; ``config.d_max`` is resolved from the
            topology (controller-graph diameter + fmax) when left None.
        registry: task logic; defaults to passthrough tasks.
        mode_tree: a pregenerated tree (generated on the fly otherwise).
        sensor_reads: node_id -> callable(round) -> payload for sensors.
        actuator_applies: node_id -> callable(round, payload, origin) for
            actuators.
        seed: key-generation seed.
        scale_workers: >= 2 runs rounds on the sharded engine
            (:mod:`repro.net.shard`) with that many worker processes;
            ``None`` consults ``REBOUND_SCALE_WORKERS``; <= 1 stays serial.
        parent_resident: node ids that must not be sharded to a worker
            (e.g. planned fault-injection victims); devices and scenario
            targets are pinned automatically.
    """

    def __init__(
        self,
        topology: Topology,
        workload: Workload,
        config: ReboundConfig,
        registry: Optional[TaskRegistry] = None,
        mode_tree: Optional[ModeTree] = None,
        sensor_reads: Optional[Dict[int, Callable[[int], bytes]]] = None,
        actuator_applies: Optional[Dict[int, Callable[[int, bytes, int], None]]] = None,
        seed: int = 0,
        pin_primaries: Optional[Dict[int, int]] = None,
        network_factory: Optional[Callable[[Topology], RoundNetwork]] = None,
        scale_workers: Optional[int] = None,
        parent_resident: Optional[Set[int]] = None,
    ):
        self.topology = topology
        self.workload = workload
        self.config = config
        if config.d_max is None:
            config.d_max = self._resolve_d_max()
        self.registry = registry or TaskRegistry()
        self.registry.register_default(workload)

        self.directory = Directory(
            rsa_bits=config.rsa_bits, multisig_bits=config.multisig_bits, seed=seed
        )
        for node in topology.nodes:
            self.directory.register(node)

        self._modegen: Optional[ModeTreeGenerator] = None
        if mode_tree is None:
            generator = ModeTreeGenerator(
                topology,
                workload,
                fmax=config.fmax,
                fconc=config.fconc,
                method=config.scheduler_method,
                utilization_cap=config.utilization_cap,
                pinned_primaries=pin_primaries,
            )
            mode_tree = generator.generate()
            self._modegen = generator
        self.mode_tree = mode_tree
        self.path_cache = PathCache(PathComputer(topology, workload, config.fconc))

        self.network = (network_factory or RoundNetwork)(topology)
        self.nodes: Dict[int, ReboundNode] = {}
        self.sensors: Dict[int, SensorDevice] = {}
        self.actuators: Dict[int, ActuatorDevice] = {}
        sensor_reads = sensor_reads or {}
        actuator_applies = actuator_applies or {}

        for node_id in topology.controllers:
            node = ReboundNode(
                node_id=node_id,
                topology=topology,
                workload=workload,
                config=config,
                crypto=self.directory.crypto_for(node_id, use_cache=config.verify_cache),
                registry=self.registry,
                mode_tree=mode_tree,
                path_cache=self.path_cache,
            )
            self.nodes[node_id] = node
            self.network.attach(node_id, node)
        for node_id in topology.sensors:
            sensor = SensorDevice(
                node_id,
                topology,
                config,
                self.directory.crypto_for(node_id, use_cache=config.verify_cache),
                self.registry,
                mode_tree,
                self.path_cache,
                read=sensor_reads.get(node_id, default_sensor_read(node_id)),
            )
            self.sensors[node_id] = sensor
            self.network.attach(node_id, sensor)
        for node_id in topology.actuators:
            actuator = ActuatorDevice(
                node_id,
                topology,
                config,
                self.directory.crypto_for(node_id, use_cache=config.verify_cache),
                self.registry,
                mode_tree,
                self.path_cache,
                apply=actuator_applies.get(node_id, lambda r, p, o: None),
            )
            self.actuators[node_id] = actuator
            self.network.attach(node_id, actuator)

        self._seed = seed
        #: Tamper detections surfaced by durable restores (chain or
        #: snapshot verification failures); one dict per detection.
        self.durability_tamper_detections: List[Dict] = []
        if config.durability_enabled:
            from repro.durability import NodeDurableStore

            for node_id, node in self.nodes.items():
                node.durable = NodeDurableStore(
                    config.durability_dir,
                    node_id,
                    seed=seed,
                    snapshot_interval=config.snapshot_interval,
                )

        for node in self.nodes.values():
            node.start(round_no=0)

        self.scenario = FaultScenario()
        self._active_behaviors: List = []
        self.true_faulty_nodes: Set[int] = set()
        self.true_failed_links: Set[Tuple[int, int]] = set()
        self.fault_rounds: List[int] = []
        self._bless_epochs: Dict[int, int] = {}
        self.monitor = None
        self.series = None
        self.budget_exceeded = False
        self.scale_workers = resolve_workers(scale_workers)
        self._parent_pinned: Set[int] = set(parent_resident or ())
        self._engine: Optional[ShardedRoundEngine] = None
        #: Ground truth of applied transient corruptions (corrupt_now).
        self.transient_corruptions: List[Dict] = []
        #: One dict per online subtree regeneration (_maybe_refresh_tree).
        self.tree_refreshes: List[Dict] = []
        self._refreshed_targets: Set[FailureScenario] = set()
        self.auditors: Dict[int, "object"] = {}
        if config.stabilize_enabled:
            from repro.stabilize import StateAuditor

            self.auditors = {
                node_id: StateAuditor(self, node_id, config.audit_interval)
                for node_id in topology.controllers
            }

    # -- sharded engine ----------------------------------------------------------

    @property
    def engine_name(self) -> str:
        return "sharded" if self.scale_workers >= 2 else "serial"

    def _start_engine(self) -> None:
        """Fork the sharded engine (lazily, on the first round, so the
        fully-configured system is what workers inherit)."""
        pinned = set(self._parent_pinned)
        pinned.update(self.true_faulty_nodes)
        pinned.update(e.node for e in self.scenario.events if e.node is not None)
        engine = ShardedRoundEngine(
            self.network,
            self.mode_tree,
            self.scale_workers,
            parent_resident=pinned,
            frame_ipc=self.config.frame_ipc,
        )
        views = engine.start(self.nodes)
        self.nodes.update(views)
        self.network.set_engine(engine)
        self._engine = engine

    def close(self) -> None:
        """Flush durable stores and release engine worker processes."""
        for node in self.nodes.values():
            durable = getattr(node, "durable", None)
            if durable is not None:
                durable.flush()
        engine, self._engine = self._engine, None
        if engine is not None:
            self.network.set_engine(None)
            engine.shutdown()

    def fastpath_stats(self):
        """Registry snapshot with worker-side counters merged in when the
        sharded engine is active."""
        from repro.obs import registry as _registry

        if self._engine is not None:
            return self._engine.merged_stats()
        return _registry.stats_snapshot()

    def _resolve_d_max(self) -> int:
        controllers = set(self.topology.controllers)
        graph = self.topology.graph().subgraph(controllers)
        if len(controllers) <= 1:
            return 1
        import networkx as nx

        if not nx.is_connected(graph):
            diameter = len(controllers)
        else:
            diameter = nx.diameter(graph)
        return diameter + self.config.fmax + 1

    # -- access ------------------------------------------------------------------

    def node(self, node_id: int) -> ReboundNode:
        return self.nodes[node_id]

    @property
    def round_no(self) -> int:
        return self.network.round_no

    def correct_controllers(self) -> List[int]:
        return [
            n for n in self.topology.controllers if n not in self.true_faulty_nodes
        ]

    # -- fault injection ------------------------------------------------------------

    def set_scenario(self, scenario: FaultScenario) -> None:
        self.scenario = scenario

    def inject_now(self, node_id: int, behavior) -> None:
        """Immediately compromise a controller with ``behavior``."""
        rec = _flight.active
        if rec is not None:
            # The behavior is first active in the round about to run, not
            # the one that just finished -- stamp it there.
            rec.emit(
                EV_FAULT_INJECTED,
                node_id,
                {"target": node_id, "behavior": type(behavior).__name__},
                round_no=self.round_no + 1,
            )
        if self._engine is not None and self._engine.is_sharded(node_id):
            # The victim lives in a worker: pull its (pickled) state back
            # into the parent so the adversary manipulates the live copy.
            # Pre-declared targets avoid this path -- they are pinned
            # parent-resident before the engine forks.
            recalled = self._engine.recall(node_id)
            self.nodes[node_id] = recalled
            self.network.attach(node_id, recalled)
        behavior.activate(self, node_id)
        self.network.set_tamper_hook(node_id, behavior.tamper)
        self._active_behaviors.append(behavior)
        self.true_faulty_nodes.add(node_id)
        self.fault_rounds.append(self.round_no)

    def corrupt_now(self, node_id: int, corruption) -> None:
        """Apply a transient in-RAM corruption to a *correct* controller.

        Unlike :meth:`inject_now` this does NOT mark the node faulty or
        install a tamper hook: the victim keeps following the protocol
        faithfully from damaged state (the self-stabilization fault class,
        docs/PROTOCOL.md §16.2).  The Req-S question is whether the
        :class:`~repro.stabilize.StateAuditor` converges it back within
        the audit bound without any correct node being condemned.
        """
        if node_id not in self.topology.controllers:
            raise ValueError(f"{node_id} is not a controller")
        if self._engine is not None and self._engine.is_sharded(node_id):
            recalled = self._engine.recall(node_id)
            self.nodes[node_id] = recalled
            self.network.attach(node_id, recalled)
        description = corruption.apply(self, node_id)
        self.transient_corruptions.append(
            {
                "node": node_id,
                "round": self.round_no,
                "kind": getattr(corruption, "name", type(corruption).__name__),
                **(description or {}),
            }
        )
        rec = _flight.active
        if rec is not None:
            rec.emit(
                EV_FAULT_INJECTED,
                node_id,
                {
                    "target": node_id,
                    "behavior": f"corruption:{getattr(corruption, 'name', '?')}",
                },
                round_no=self.round_no + 1,
            )

    # -- online mode-tree refresh (PROTOCOL.md §16.5) ------------------------------

    def _maybe_refresh_tree(self) -> None:
        """Regenerate the needed subtree when an observed failure pattern
        falls outside the precomputed tree (> fmax faults).

        Until the refresh lands, nodes degrade gracefully to a holding
        mode (the best covering ancestor / on-demand jump the lookup path
        already provides) -- the system never halts.  Afterwards every
        correct node re-adopts from the extended tree, which is
        byte-identical to from-scratch generation for the added subtree.
        """
        fmax = self.config.fmax
        targets: List[FailureScenario] = []
        for node_id in self.correct_controllers():
            if self._engine is not None and self._engine.is_sharded(node_id):
                continue  # parent copy is stale; refreshed on recall
            pattern = self.nodes[node_id].fault_pattern
            if (
                pattern.fault_count > fmax
                and pattern not in self._refreshed_targets
                and pattern not in targets
            ):
                targets.append(pattern)
        for target in targets:
            self._refresh_tree(target)

    def _refresh_tree(self, target: FailureScenario) -> None:
        self._refreshed_targets.add(target)
        generator = self._modegen
        if generator is None:
            generator = ModeTreeGenerator(
                self.topology,
                self.workload,
                fmax=self.config.fmax,
                fconc=self.config.fconc,
                method=self.config.scheduler_method,
                utilization_cap=self.config.utilization_cap,
                ilp_warm_start=self.config.scheduler_method == "ilp",
            )
            if self.mode_tree.builder is not None:
                # Reuse the tree's builder: its placement memo warm-starts
                # the subtree solves.
                generator.builder = self.mode_tree.builder
            self._modegen = generator
        tree = self.mode_tree
        holding_depth = max(
            (
                s.fault_count
                for s in tree.schedules
                if target.covers(s) and s not in tree.ondemand
            ),
            default=0,
        )
        start = time.perf_counter()
        stats = generator.extend_for(tree, target)
        elapsed = time.perf_counter() - start
        record = {
            "round": self.round_no,
            "scenario_nodes": sorted(target.nodes),
            "scenario_links": [tuple(sorted(l)) for l in sorted(target.links)],
            "added_modes": stats["added_modes"],
            "replaced_ondemand": stats["replaced_ondemand"],
            "holding_depth": holding_depth,
            "target_layer": stats["target_layer"],
            "elapsed_s": elapsed,
        }
        self.tree_refreshes.append(record)
        rec = _flight.active
        if rec is not None:
            rec.emit(
                EV_TREE_REFRESH,
                -1,  # system-wide, not attributable to one node
                {
                    "scenario_nodes": sorted(target.nodes),
                    "scenario_links": [
                        list(sorted(l)) for l in sorted(target.links)
                    ],
                    "added_modes": stats["added_modes"],
                    "holding_depth": holding_depth,
                    "elapsed_ms": elapsed * 1000.0,
                },
                round_no=self.round_no,
            )
        # Re-adopt only where the extended tree changes the answer, so a
        # refresh that adds nothing (all layers infeasible) perturbs no
        # transcript.
        for node_id in self.correct_controllers():
            if self._engine is not None and self._engine.is_sharded(node_id):
                continue
            node = self.nodes[node_id]
            if tree.schedule_for(node.fault_pattern) != node.current_schedule:
                node.readopt_mode(self.round_no)

    # -- repair / rejoin machinery (shared by blessing and durable restart) -------

    def _evict_adversary(self, node_id: int) -> None:
        """Evict any attached adversary and heal the network-level fault."""
        self.network.set_tamper_hook(node_id, None)
        self.network.revive_node(node_id)
        self.true_faulty_nodes.discard(node_id)
        for behavior in self._active_behaviors:
            if behavior.node_id == node_id:
                behavior.detach()
        self._active_behaviors = [
            b for b in self._active_behaviors if b.node_id != node_id
        ]

    def _mint_blessing(self, node_id: int):
        """Sign an operator blessing absolving ``node_id``'s evidence up to
        the current round (fresh epoch)."""
        from repro.core.blessing import Blessing, blessing_body

        epoch = self._bless_epochs.get(node_id, 0) + 1
        self._bless_epochs[node_id] = epoch
        body_round = self.round_no
        return Blessing(
            node_id=node_id,
            as_of_round=body_round,
            epoch=epoch,
            signature=self.directory.operator.sign(
                blessing_body(node_id, body_round, epoch)
            ).to_bytes(),
        )

    def _fresh_node(self, node_id: int) -> ReboundNode:
        return ReboundNode(
            node_id=node_id,
            topology=self.topology,
            config=self.config,
            workload=self.workload,
            crypto=self.directory.crypto_for(node_id, use_cache=self.config.verify_cache),
            registry=self.registry,
            mode_tree=self.mode_tree,
            path_cache=self.path_cache,
        )

    def _install_node(self, node_id: int, node: ReboundNode) -> None:
        """Swap ``node`` in as the live controller and start it at the
        current round (rejoin semantics)."""
        if self._engine is not None:
            self._engine.adopt_parent(node_id)
        self.nodes[node_id] = node
        self.network.attach(node_id, node)
        node.start(round_no=self.round_no)

    def _flood_blessing(self, node_id: int, blessing) -> None:
        """Submit the blessing at the rejoining node and at a correct
        reference so it floods the whole system."""
        self.nodes[node_id].forwarding.submit_evidence(blessing)
        reference = next(
            (n for n in self.correct_controllers() if n != node_id), None
        )
        if reference is not None:
            self.nodes[reference].forwarding.submit_evidence(blessing)

    def repair_and_bless(self, node_id: int) -> None:
        """Operator repair (paper S2.4): reprovision a compromised node and
        flood a signed blessing so every node re-admits it.

        The node is rebuilt from scratch (fresh protocol state, evidence
        seeded from a correct reference node -- the operator reinstalling
        software and current state), the adversary is evicted, and a
        :class:`~repro.core.blessing.Blessing` absolving all evidence up to
        the current round is injected into the evidence flood.
        """
        if node_id not in self.topology.controllers:
            raise ValueError(f"{node_id} is not a controller")
        self._evict_adversary(node_id)
        blessing = self._mint_blessing(node_id)
        # Reprovision: a fresh node with evidence copied from a correct
        # reference (including the blessing, so it re-admits itself).
        reference = next(
            (n for n in self.correct_controllers() if n != node_id), None
        )
        fresh = self._fresh_node(node_id)
        self._install_node(node_id, fresh)
        if reference is not None:
            for item in self.nodes[reference].evidence.items():
                fresh.forwarding.submit_evidence(item)
        self._flood_blessing(node_id, blessing)
        if self.monitor is not None and hasattr(self.monitor, "note_repair"):
            # Until the blessing floods, peers legitimately still hold
            # unabsolved accusations from the repaired compromise.
            self.monitor.note_repair(node_id, self.round_no)

    def bless_resync(self, node_id: int) -> None:
        """Operator absolution after an in-place stabilization resync
        (docs/PROTOCOL.md S16.4): the same trust step as
        :meth:`repair_and_bless`, minus the reprovisioning -- the auditor
        already repaired the state in place.  The blessing absolves every
        accusation a corrupted window produced on the victim's links (a
        blessing covers an LFD with the victim as *either* endpoint), and
        its admission bumps each node's evidence epoch, which raises the
        Rule B stable floor past that window so latched coverage
        shortfalls from skipped aggregates never mature into LFDs.
        """
        blessing = self._mint_blessing(node_id)
        self._flood_blessing(node_id, blessing)

    def restart_from_durable(self, node_id: int):
        """Crash-restart-rejoin (docs/PROTOCOL.md S14): rebuild a node from
        its durable store and rejoin through the blessing flow.

        The restore path verifies the snapshot seal and the log chain;
        state is ``verified snapshot + replayed chained suffix``.  A
        corrupted suffix is refused -- the node falls back to the verified
        prefix (or a fresh node when the snapshot itself is broken) and the
        detection is recorded in ``durability_tamper_detections``.  Returns
        the :class:`~repro.durability.store.RestoreResult`.
        """
        from repro.durability import NodeDurableStore

        if not self.config.durability_enabled:
            raise RuntimeError("restart_from_durable requires durability_enabled")
        if node_id not in self.topology.controllers:
            raise ValueError(f"{node_id} is not a controller")
        self._evict_adversary(node_id)
        store = NodeDurableStore(
            self.config.durability_dir,
            node_id,
            seed=self._seed,
            snapshot_interval=self.config.snapshot_interval,
        )
        result = store.load()
        if result.tampered:
            self.durability_tamper_detections.append(
                {
                    "node": node_id,
                    "round": self.round_no,
                    "reason": result.tamper_reason,
                    "refused_records": result.refused_records,
                }
            )
        node = result.node if result.node is not None else self._fresh_node(node_id)
        node.durable = store
        # Force a full mode adoption at the rejoin round: the restored
        # schedule may equal the one start() adopts, and _adopt_mode's
        # no-change fast path would then skip re-syncing the path set and
        # the auditing layer to the current round (leaving stale pre-crash
        # expectations that would wrongly accuse live links).
        node.current_schedule = None
        blessing = self._mint_blessing(node_id)
        self._install_node(node_id, node)
        # Replay the verified chained suffix (evidence admitted after the
        # snapshot cut) into the restored node.
        for item in result.evidence:
            node.forwarding.submit_evidence(item)
        self._flood_blessing(node_id, blessing)
        store.record_restore(self.round_no, result)
        rec = _flight.active
        if rec is not None:
            rec.emit(
                EV_PERSIST_RESTORE,
                node_id,
                {
                    "snapshot_round": result.snapshot_round,
                    "replayed": len(result.evidence),
                    "tampered": result.tampered,
                    "reason": result.tamper_reason,
                },
                round_no=self.round_no,
            )
        monitor = self.monitor
        if monitor is not None and hasattr(monitor, "note_restart"):
            monitor.note_restart(node_id, self.round_no)
        return result

    def cut_link_now(self, a: int, b: int) -> None:
        rec = _flight.active
        if rec is not None:
            rec.emit(
                EV_FAULT_INJECTED,
                min(a, b),
                {"link": [min(a, b), max(a, b)]},
                round_no=self.round_no + 1,
            )
        self.network.fail_link(a, b)
        self.true_failed_links.add((min(a, b), max(a, b)))
        self.fault_rounds.append(self.round_no)

    # -- monitoring -------------------------------------------------------------------

    def attach_monitor(self, monitor) -> None:
        """Observe every round with a :class:`~repro.chaos.monitor.BTRMonitor`
        (or anything exposing ``observe(system)``)."""
        self.monitor = monitor

    def attach_series(self, series) -> None:
        """Sample a :class:`~repro.obs.series.MetricsTimeSeries` after
        every round (registry counters plus derived system/monitor
        gauges).  Observation-only, like the monitor and the recorder."""
        self.series = series

    def _update_budget_signal(self) -> None:
        """Degraded-environment signal (never an exception): the deployment
        is operating outside the fault budget it was provisioned for.

        Set when (a) the chaos layer reports applied out-of-budget
        impairments -- the simulator stands in for the link-quality
        telemetry a real deployment would have; (b) the injected ground
        truth exceeds ``fmax``; or (c) a correct node's normalized failure
        pattern overflows the budget (possible when verifiable PoMs alone
        accuse more than ``fmax`` nodes).  Once raised it stays up; the
        protocol keeps running in whatever mode its evidence supports.
        """
        if self.budget_exceeded:
            return
        if getattr(self.network, "out_of_budget_activity", False):
            self.budget_exceeded = True
            return
        fmax = self.config.fmax
        if len(self.true_faulty_nodes) + len(self.true_failed_links) > fmax:
            self.budget_exceeded = True
            return
        for node_id in self.correct_controllers():
            if self.nodes[node_id].fault_pattern.fault_count > fmax:
                self.budget_exceeded = True
                return

    # -- execution --------------------------------------------------------------------

    def run_round(self) -> None:
        if self.scale_workers >= 2 and self._engine is None:
            self._start_engine()
        next_round = self.round_no + 1
        rec = _flight.active
        if rec is not None:
            rec.begin_round(next_round)
        for event in self.scenario.due(next_round):
            if event.node is not None and event.behavior is not None:
                self.inject_now(event.node, event.behavior)
            elif event.link is not None:
                self.cut_link_now(*event.link)
        for behavior in self._active_behaviors:
            behavior.on_round(next_round)
        self.network.run_round()
        if self.auditors:
            for node_id in sorted(self.auditors):
                if node_id in self.true_faulty_nodes:
                    continue
                if self._engine is not None and self._engine.is_sharded(node_id):
                    continue  # worker-resident state is audited on recall
                self.auditors[node_id].maybe_audit(self.round_no)
        if self.config.tree_refresh_enabled:
            self._maybe_refresh_tree()
        self._update_budget_signal()
        if self.monitor is not None:
            self.monitor.observe(self)
        if self.series is not None:
            self.series.sample(self, self.monitor)

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # -- ground truth & recovery metrics ---------------------------------------------

    def true_scenario(self) -> FailureScenario:
        return FailureScenario(
            nodes=frozenset(self.true_faulty_nodes),
            links=frozenset(self.true_failed_links),
        )

    def target_schedule(self):
        """The mode the system should converge to for the true faults."""
        return self.mode_tree.schedule_for(self.true_scenario())

    def mode_census(self) -> CollectionsCounter:
        """How many correct controllers currently sit in each mode."""
        census: CollectionsCounter = CollectionsCounter()
        for node_id in self.correct_controllers():
            schedule = self.nodes[node_id].current_schedule
            key = (
                tuple(sorted(schedule.failed_nodes)),
                tuple(sorted(schedule.failed_links)),
            ) if schedule else ((), ())
            census[key] += 1
        return census

    def detected(self) -> bool:
        """Has any correct node's pattern noticed the true faults?"""
        for node_id in self.correct_controllers():
            pattern = self.nodes[node_id].fault_pattern
            if pattern.nodes & self.true_faulty_nodes:
                return True
            for link in pattern.links:
                if set(link) & self.true_faulty_nodes:
                    return True
                if link in self.true_failed_links:
                    return True
        return False

    def converged(self) -> bool:
        """All correct controllers adopted a mode that excludes the true
        faulty nodes from every placement."""
        for node_id in self.correct_controllers():
            schedule = self.nodes[node_id].current_schedule
            if schedule is None:
                return False
            for _copy, host in schedule.placements.items():
                if host in self.true_faulty_nodes:
                    return False
        return True

    def schedules_agree(self) -> bool:
        schedules = {
            id(None) if self.nodes[n].current_schedule is None
            else (
                tuple(sorted(self.nodes[n].current_schedule.failed_nodes)),
                tuple(sorted(self.nodes[n].current_schedule.failed_links)),
            )
            for n in self.correct_controllers()
        }
        return len(schedules) == 1

    # -- cost metrics ------------------------------------------------------------------

    def total_crypto_counters(self):
        from repro.crypto.cost_model import CryptoCounters

        total = CryptoCounters()
        for node in self.nodes.values():
            total.merge(node.crypto.total_counters())
        return total

    def mean_storage_bytes(self) -> float:
        if not self.nodes:
            return 0.0
        if self._engine is not None:
            # One RPC per shard instead of one per node.
            sizes = self._engine.storage_bytes_map()
            total = sum(sizes.values()) + sum(
                node.forwarding.storage_bytes()
                for nid, node in self.nodes.items()
                if nid not in sizes
            )
            return total / len(self.nodes)
        return sum(
            node.forwarding.storage_bytes() for node in self.nodes.values()
        ) / len(self.nodes)

    def mean_link_bytes_in_round(self, round_no: Optional[int] = None) -> float:
        r = self.round_no if round_no is None else round_no
        return self.network.mean_link_bytes(r)
