"""Evidence: LFDs, PoMs, evidence sets, verification (paper S3.2).

A node can fail by *commission* (sending a bad message) or *omission*
(failing to send an expected one).  Commission faults yield **proofs of
misbehavior (PoMs)** -- self-certifying objects any node can verify without
trusting the reporter.  Omission faults yield **link failure declarations
(LFDs)**: either endpoint of a link may declare it dead; a single LFD does
not attribute blame to a specific endpoint, but the link is no longer used,
and enough LFDs sharing an endpoint imply a node fault (S3.2's inference,
implemented by :func:`repro.sched.modegen.normalize_scenario`).

Everything here is a registered wire message; evidence digests are computed
over canonical encodings, so two nodes always agree on whether an item is
"the same evidence".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.crypto.hashing import hash_bytes
from repro.net.message import codec_memo_enabled, encode, register_message
from repro.sched.modegen import FailureScenario, normalize_scenario

# -- signed message bodies -----------------------------------------------------
#
# All protocol signatures cover canonical encodings of small tuples whose
# first element is a kind tag.  Equivocation is defined per *slot*: two
# validly signed bodies with the same slot but different content.

KIND_HEARTBEAT = "HB"
KIND_EVIDENCE_HALF = "EV"
KIND_DATA = "DATA"
KIND_LFD = "LFD"


# heartbeat_body is the single hottest encode: every received record is
# re-encoded to verify its signature, and the same (round, delta) pairs
# recur across all of a partition's records.  Memoized behind the codec
# memo switch; the ``type(...) is int`` guards matter because True == 1
# hash-equal while encode(True) != encode(1).
_hb_body_memo: Dict[Tuple[int, int], bytes] = {}
_HB_BODY_MEMO_CAP = 8192


def heartbeat_body(round_no: int, delta_count: int) -> bytes:
    """The signed content of an S3.6 heartbeat half sigma_i(r, |dE|).

    Deliberately excludes the signer's identity so that identical bodies
    from different nodes can be multisignature-aggregated.
    """
    if codec_memo_enabled() and type(round_no) is int and type(delta_count) is int:
        blob = _hb_body_memo.get((round_no, delta_count))
        if blob is None:
            blob = encode((KIND_HEARTBEAT, round_no, delta_count))
            if len(_hb_body_memo) >= _HB_BODY_MEMO_CAP:
                _hb_body_memo.clear()
            _hb_body_memo[(round_no, delta_count)] = blob
        return blob
    return encode((KIND_HEARTBEAT, round_no, delta_count))


def evidence_half_body(round_no: int, item_digest: bytes) -> bytes:
    """The signed content of an S3.6 evidence half sigma_i(r, e)."""
    return encode((KIND_EVIDENCE_HALF, round_no, item_digest))


def data_body(path_id: int, round_no: int, payload_digest: bytes) -> bytes:
    """The signed content of a data packet on a forwarding-layer path.

    The signature covers the payload *digest*, making the signed part a
    small detachable authenticator (paper S3.8) that can travel without the
    payload on the beta->rho paths.
    """
    return encode((KIND_DATA, path_id, round_no, payload_digest))


def lfd_body(a: int, b: int, round_no: int) -> bytes:
    """The signed content of an LFD: sigma_i(LFD(i, j))."""
    lo, hi = sorted((a, b))
    return encode((KIND_LFD, lo, hi, round_no))


def slot_of(body: bytes) -> Optional[Tuple]:
    """The equivocation slot of a signed body, or None if not slotted.

    Heartbeats equivocate per round; data packets per (path, round).
    """
    from repro.net.message import decode

    try:
        decoded = decode(body)
    except (ValueError, TypeError):
        return None
    if not isinstance(decoded, tuple) or not decoded:
        return None
    kind = decoded[0]
    if kind == KIND_HEARTBEAT and len(decoded) == 3:
        return (KIND_HEARTBEAT, decoded[1])
    if kind == KIND_DATA and len(decoded) == 4:
        return (KIND_DATA, decoded[1], decoded[2])
    return None


# -- evidence items -------------------------------------------------------------


@register_message
@dataclass(frozen=True)
class LFD:
    """A link failure declaration for the link (a, b), issued by one endpoint.

    Attributes:
        a, b: link endpoints, stored sorted.
        declared_round: round in which the declaring endpoint observed the
            failure.
        issuer: the endpoint that signed the declaration.
        signature: issuer's signature over :func:`lfd_body`.
    """

    a: int
    b: int
    declared_round: int
    issuer: int
    signature: bytes

    @property
    def link(self) -> Tuple[int, int]:
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)

    def body(self) -> bytes:
        return lfd_body(self.a, self.b, self.declared_round)


@register_message
@dataclass(frozen=True)
class EquivocationPoM:
    """Proof that ``accused`` signed two conflicting bodies for one slot.

    Attributes:
        accused: the equivocating node.
        body_a, body_b: the two conflicting signed bodies (canonical bytes).
        sig_a, sig_b: the accused's signatures over each body.
    """

    accused: int
    body_a: bytes
    sig_a: bytes
    body_b: bytes
    sig_b: bytes


@register_message
@dataclass(frozen=True)
class BadComputationPoM:
    """Proof that a primary produced the wrong output for its own inputs.

    Verifiable by deterministic replay (paper S3.7): the primary streams a
    signed *bundle* -- (round, pre-state, inputs) -- to each replica on the
    tau->rho path; its output authenticator is signed separately.  Any node
    can re-execute the task on the bundle and compare the output digest with
    the claimed one.  Because both artifacts carry the accused's signature,
    neither a lying replica (fabricating a state or dropping an input) nor a
    lying primary (mis-reporting its state or inputs) can frame a correct
    node: a correct primary's bundle always replays to its own output.

    Attributes:
        accused: the node hosting the primary task.
        task_id: the audited task.
        round_no: execution round.
        bundle_payload: ``encode((round, state, inputs))`` where inputs is a
            tuple of (origin, path_id, origin_round, payload, signature)
            5-tuples, each signature being the upstream producer's signature
            over the corresponding data body.
        bundle_signature: the accused's signature over the bundle's data
            body on ``input_path_id``.
        input_path_id: the tau->rho path the bundle travelled on.
        claimed_output_digest: hash of the output payload the primary sent.
        claimed_signature: the accused's signature over the output body.
        output_path_id: path on which the claimed output travelled.
    """

    accused: int
    task_id: int
    round_no: int
    bundle_payload: bytes
    bundle_signature: bytes
    input_path_id: int
    claimed_output_digest: bytes
    claimed_signature: bytes
    output_path_id: int


@register_message
@dataclass(frozen=True)
class StateChainPoM:
    """Proof that a primary broke its own state chain.

    The bundle streamed to replicas for round e+1 must carry exactly the
    state produced by replaying the (signed) bundle of round e; two signed
    bundles violating this are verifiable proof of misbehavior -- the
    PeerReview-style defense against a primary that fabricates its state to
    make wrong outputs replay "correctly".

    Attributes:
        accused: the primary's host.
        task_id: the audited task.
        round_no: the round of the *first* bundle (the second is round+1).
        bundle_a_payload / bundle_a_signature: the round-e bundle.
        bundle_b_payload / bundle_b_signature: the round-(e+1) bundle.
        input_path_id: the tau->rho path both bundles travelled on.
    """

    accused: int
    task_id: int
    round_no: int
    bundle_a_payload: bytes
    bundle_a_signature: bytes
    bundle_b_payload: bytes
    bundle_b_signature: bytes
    input_path_id: int


EvidenceItem = object  # union of LFD | EquivocationPoM | BadComputationPoM | StateChainPoM


def evidence_digest(item: EvidenceItem) -> bytes:
    """Canonical digest identifying an evidence item."""
    return hash_bytes(encode(item))


# -- verification ------------------------------------------------------------


class EvidenceVerifier:
    """Independent evidence verification (paper Req. 3, Accuracy).

    Args:
        verify_signature: callable (node_id, body, signature) -> bool,
            checking under the node's *current working key* (key rotation).
        replay_task: callable (task_id, state, inputs, round) -> bytes or
            None, deterministically re-executing a task; None when the
            verifier lacks the task code (it must then distrust the PoM).
            ``inputs`` is the tuple of 5-tuples from the PoM bundle.
        verify_record_signature: optional fallback with the same shape as
            ``verify_signature`` for signatures heartbeat records carry under
            the multisignature variant (a partial-multisig value rather than
            a plain RSA signature).  An equivocation PoM embeds the two
            conflicting records' signatures verbatim, so the verifier must be
            able to check whichever scheme the accused actually signed with.
    """

    def __init__(
        self,
        verify_signature: Callable[[int, bytes, bytes], bool],
        replay_task: Optional[Callable[[int, bytes, Tuple, int], Optional[bytes]]] = None,
        replay_state: Optional[Callable[[int, bytes, Tuple, int], Optional[bytes]]] = None,
        verify_operator: Optional[Callable[[bytes, bytes], bool]] = None,
        verify_record_signature: Optional[Callable[[int, bytes, bytes], bool]] = None,
    ):
        self._verify_signature = verify_signature
        self._replay_task = replay_task
        self._replay_state = replay_state
        self._verify_operator = verify_operator
        self._verify_record_signature = verify_record_signature

    def _accused_signed(self, accused: int, body: bytes, signature: bytes) -> bool:
        """True if ``signature`` binds ``accused`` to ``body`` under either
        signing scheme the accused could have used for a record."""
        if self._verify_signature(accused, body, signature):
            return True
        fallback = self._verify_record_signature
        return fallback is not None and fallback(accused, body, signature)

    def verify_blessing(self, blessing) -> bool:
        if self._verify_operator is None:
            return False  # no operator trust root configured
        return self._verify_operator(blessing.body(), blessing.signature)

    def verify(self, item: EvidenceItem) -> bool:
        from repro.core.blessing import Blessing

        if isinstance(item, Blessing):
            return self.verify_blessing(item)
        if isinstance(item, LFD):
            return self.verify_lfd(item)
        if isinstance(item, EquivocationPoM):
            return self.verify_equivocation(item)
        if isinstance(item, BadComputationPoM):
            return self.verify_bad_computation(item)
        if isinstance(item, StateChainPoM):
            return self.verify_state_chain(item)
        return False

    def verify_lfd(self, lfd: LFD) -> bool:
        if lfd.issuer not in (lfd.a, lfd.b):
            return False  # only endpoints may declare (paper S3.2)
        if lfd.a == lfd.b:
            return False
        return self._verify_signature(lfd.issuer, lfd.body(), lfd.signature)

    def verify_equivocation(self, pom: EquivocationPoM) -> bool:
        if pom.body_a == pom.body_b:
            return False
        slot_a, slot_b = slot_of(pom.body_a), slot_of(pom.body_b)
        if slot_a is None or slot_a != slot_b:
            return False
        return self._accused_signed(
            pom.accused, pom.body_a, pom.sig_a
        ) and self._accused_signed(pom.accused, pom.body_b, pom.sig_b)

    def verify_bad_computation(self, pom: BadComputationPoM) -> bool:
        if self._replay_task is None:
            return False
        from repro.net.message import decode

        # 1. The claimed output really was signed by the accused.
        output_body = data_body(
            pom.output_path_id, pom.round_no, pom.claimed_output_digest
        )
        if not self._verify_signature(pom.accused, output_body, pom.claimed_signature):
            return False
        # 2. The input bundle really was signed (streamed) by the accused.
        bundle_body = data_body(
            pom.input_path_id, pom.round_no, hash_bytes(pom.bundle_payload)
        )
        if not self._verify_signature(pom.accused, bundle_body, pom.bundle_signature):
            return False
        try:
            bundle = decode(pom.bundle_payload)
        except (ValueError, TypeError):
            return True  # signed garbage bundle is itself misbehavior
        if (
            not isinstance(bundle, tuple)
            or len(bundle) != 3
            or bundle[0] != pom.round_no
        ):
            return True  # signed bundle with a lying round: misbehavior
        _round, state, inputs = bundle
        if not isinstance(state, bytes) or not isinstance(inputs, tuple):
            return True
        # 3. Every input inside the bundle carries its producer's signature;
        #    a bundle containing an unsigned input is itself misbehavior.
        for entry in inputs:
            if not (isinstance(entry, tuple) and len(entry) == 5):
                return True
            origin, path_id, origin_round, payload, signature = entry
            body = data_body(path_id, origin_round, hash_bytes(payload))
            if not self._verify_signature(origin, body, signature):
                return True
        # 4. Deterministic replay disagrees with the claimed output digest.
        expected = self._replay_task(pom.task_id, state, inputs, pom.round_no)
        if expected is None:
            return False  # verifier lacks the task code: distrust the PoM
        return hash_bytes(expected) != pom.claimed_output_digest

    def verify_state_chain(self, pom: StateChainPoM) -> bool:
        if self._replay_state is None:
            return False
        from repro.net.message import decode

        for payload, signature, round_no in (
            (pom.bundle_a_payload, pom.bundle_a_signature, pom.round_no),
            (pom.bundle_b_payload, pom.bundle_b_signature, pom.round_no + 1),
        ):
            body = data_body(pom.input_path_id, round_no, hash_bytes(payload))
            if not self._verify_signature(pom.accused, body, signature):
                return False
        try:
            bundle_a = decode(pom.bundle_a_payload)
            bundle_b = decode(pom.bundle_b_payload)
        except (ValueError, TypeError):
            return True  # a signed undecodable bundle is itself misbehavior
        for bundle, expected_round in ((bundle_a, pom.round_no), (bundle_b, pom.round_no + 1)):
            if not (
                isinstance(bundle, tuple)
                and len(bundle) == 3
                and bundle[0] == expected_round
                and isinstance(bundle[1], bytes)
                and isinstance(bundle[2], tuple)
            ):
                return True
        replayed_state = self._replay_state(
            pom.task_id, bundle_a[1], bundle_a[2], pom.round_no
        )
        if replayed_state is None:
            return False
        return replayed_state != bundle_b[1]


# -- evidence sets ---------------------------------------------------------------


def _accusation_round_of(item: EvidenceItem) -> Optional[int]:
    """The round an evidence item accuses (None if not attributable).

    Mirrors :func:`repro.core.blessing.accusation_round` without importing
    it (blessing imports this module); kept here so the bounded-store
    ordering and the PoM-explains-LFD window are pure functions of the item.
    """
    if isinstance(item, LFD):
        return item.declared_round
    if isinstance(item, (BadComputationPoM, StateChainPoM)):
        return item.round_no
    if isinstance(item, EquivocationPoM):
        slot = slot_of(item.body_a)
        if slot is None:
            return None
        return slot[1] if slot[0] == KIND_HEARTBEAT else slot[2]
    return None


# How many items a bounded EvidenceSet keeps per bucket: the earliest and
# the latest by accusation round.  This is pattern-equivalent to keeping
# everything: a rejected middle item is bracketed by a kept item with a
# round >= its own, so whenever the middle item would be unabsolved (its
# round exceeds every blessing's as_of_round) the kept maximum is too, and
# the same link/node stays declared.  Crucially the *maximum* survives, so
# a genuine post-blessing accusation (necessarily the newest) is always
# admitted no matter how much stale material an adversary pre-flooded.
_BUCKET_KEEP = 2


class EvidenceSet:
    """A monotonic, canonically-digestible set of evidence items.

    With ``bounded=True`` (the quota layer), attributable items are grouped
    into buckets -- LFDs per (link, issuer), PoMs per (kind, accused) --
    and each bucket retains only its extremes by (accusation round, digest).
    Total attributable storage is then O(n^2) regardless of how fast an
    adversary manufactures validly signed evidence, while the derived
    failure pattern is identical to the unbounded set's (see _BUCKET_KEEP).
    Blessings are operator-minted and idempotent, so they stay unbounded.
    """

    def __init__(self, bounded: bool = False) -> None:
        self._items: Dict[bytes, EvidenceItem] = {}
        self._digest_cache: Optional[bytes] = None
        self._bounded = bounded
        self._buckets: Dict[Tuple, List[Tuple[Tuple[int, bytes], bytes]]] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: EvidenceItem) -> bool:
        return evidence_digest(item) in self._items

    def has_digest(self, digest: bytes) -> bool:
        return digest in self._items

    @staticmethod
    def _bucket_of(item: EvidenceItem) -> Optional[Tuple]:
        if isinstance(item, LFD):
            return ("LFD", item.link, item.issuer)
        if isinstance(item, EquivocationPoM):
            return ("EQV", item.accused)
        if isinstance(item, BadComputationPoM):
            return ("BAD", item.accused, item.task_id)
        if isinstance(item, StateChainPoM):
            return ("CHAIN", item.accused, item.task_id)
        return None

    def add(self, item: EvidenceItem) -> bool:
        """Add an (already verified) item; True if it was new.

        A bounded set may refuse a bucket-dominated item (returns False) or
        evict a previous extreme to admit the new one."""
        digest = evidence_digest(item)
        if digest in self._items:
            return False
        if self._bounded:
            bucket = self._bucket_of(item)
            if bucket is not None:
                rank = ((_accusation_round_of(item) or 0), digest)
                members = self._buckets.setdefault(bucket, [])
                if len(members) >= _BUCKET_KEEP:
                    members.sort()
                    lo, hi = members[0], members[-1]
                    if rank < lo[0]:
                        evict = lo
                    elif rank > hi[0]:
                        evict = hi
                    else:
                        return False  # dominated by the kept extremes
                    members.remove(evict)
                    del self._items[evict[1]]
                    self.evictions += 1
                members.append((rank, digest))
        self._items[digest] = item
        self._digest_cache = None
        return True

    def dominated(self, item: EvidenceItem) -> bool:
        """Would :meth:`add` refuse this item as bucket-dominated?

        A bounded store keeps only the rank extremes per bucket, so two
        same-policy stores fed different item orders can legitimately
        disagree on mid-rank members; the state auditor treats a dominated
        item as covered rather than as divergence."""
        if not self._bounded:
            return False
        bucket = self._bucket_of(item)
        if bucket is None:
            return False
        members = self._buckets.get(bucket, [])
        if len(members) < _BUCKET_KEEP:
            return False
        rank = ((_accusation_round_of(item) or 0), evidence_digest(item))
        return min(members)[0] <= rank <= max(members)[0]

    def merge(self, other: "EvidenceSet") -> List[EvidenceItem]:
        """Union in ``other``; returns the newly added items."""
        if self._bounded:
            added = []
            for digest in sorted(other._items):
                if digest not in self._items and self.add(other._items[digest]):
                    added.append(other._items[digest])
            return added
        added = []
        for digest, item in other._items.items():
            if digest not in self._items:
                self._items[digest] = item
                added.append(item)
        if added:
            self._digest_cache = None
        return added

    def items(self) -> List[EvidenceItem]:
        return [self._items[d] for d in sorted(self._items)]

    def digest(self) -> bytes:
        if self._digest_cache is None:
            self._digest_cache = hash_bytes(*sorted(self._items))
        return self._digest_cache

    # -- self-stabilization hooks (docs/PROTOCOL.md section 16) ------------------
    #
    # The store indexes items by content digest, which makes arbitrary
    # in-RAM corruption *detectable by construction*: a flipped key no
    # longer matches its item's canonical digest, and a flipped digest memo
    # no longer matches the keys.  The StateAuditor leans on these checks.

    def corrupted_keys(self) -> List[bytes]:
        """Stored digests that do not match their item's canonical digest."""
        return [
            stored
            for stored, item in self._items.items()
            if evidence_digest(item) != stored
        ]

    def digest_cache_coherent(self) -> bool:
        """True iff the memoized set digest (if any) matches the stored keys."""
        return self._digest_cache is None or self._digest_cache == hash_bytes(
            *sorted(self._items)
        )

    def repair(self) -> int:
        """Re-key items stored under a corrupted digest and invalidate the
        digest memo; returns the number of repaired entries.  A key flip
        leaves the item object intact, so repair is lossless."""
        bad = self.corrupted_keys()
        for stored in bad:
            item = self._items.pop(stored)
            self._items.setdefault(evidence_digest(item), item)
        if bad and self._bounded:
            self._buckets = {}
            for digest, item in self._items.items():
                bucket = self._bucket_of(item)
                if bucket is not None:
                    rank = ((_accusation_round_of(item) or 0), digest)
                    self._buckets.setdefault(bucket, []).append((rank, digest))
        if bad or not self.digest_cache_coherent():
            self._digest_cache = None
        return len(bad)

    def serialized_size(self) -> int:
        return len(encode(self.items()))

    # -- failure-pattern derivation (paper S3.2) ---------------------------------

    def _best_blessings(self):
        """node_id -> the newest Blessing on file for it (by epoch)."""
        from repro.core.blessing import Blessing

        best = {}
        for item in self._items.values():
            if isinstance(item, Blessing):
                current = best.get(item.node_id)
                if current is None or item.epoch > current.epoch:
                    best[item.node_id] = item
        return best

    def _is_absolved(self, item, blessings) -> bool:
        from repro.core.blessing import absolves

        return any(absolves(b, item) for b in blessings.values())

    def accused_nodes(self) -> FrozenSet[int]:
        """Nodes condemned by an unabsolved PoM (paper S2.4: a repaired
        node is only re-admitted once the operator blesses it)."""
        blessings = self._best_blessings()
        accused = set()
        for item in self._items.values():
            if isinstance(
                item, (EquivocationPoM, BadComputationPoM, StateChainPoM)
            ) and not self._is_absolved(item, blessings):
                accused.add(item.accused)
        return frozenset(accused)

    def declared_links(self) -> FrozenSet[Tuple[int, int]]:
        """Links declared failed by at least one unabsolved LFD."""
        blessings = self._best_blessings()
        return frozenset(
            item.link
            for item in self._items.values()
            if isinstance(item, LFD) and not self._is_absolved(item, blessings)
        )

    def _pom_accusations(self, blessings) -> List[Tuple[int, int]]:
        """(accused, accusation_round) for each unabsolved commission PoM."""
        out = []
        for item in self._items.values():
            if isinstance(
                item, (EquivocationPoM, BadComputationPoM, StateChainPoM)
            ) and not self._is_absolved(item, blessings):
                rnd = _accusation_round_of(item)
                if rnd is not None:
                    out.append((item.accused, rnd))
        return out

    def failure_pattern(
        self, fmax: int, pom_lfd_slack: Optional[int] = None
    ) -> FailureScenario:
        """The (KN, KL) this evidence implies, normalized to the fault budget.

        PoM-accused nodes go to KN directly; LFD links whose endpoints are
        already in KN are absorbed; the rest stay in KL unless the budget
        forces blaming a shared endpoint (S3.2).

        With ``pom_lfd_slack`` set (the forwarding layer passes a function
        of the shared d_max), an LFD declared within ``slack`` rounds after
        an unabsolved commission PoM's accusation round is *explained* by
        that PoM and not counted: during an equivocation storm the proven
        equivocator's heartbeats poison propagation everywhere at once, and
        the resulting shower of coverage LFDs between correct neighbors must
        not enter the fault-budget inference (Req. 3).  The filter reads
        only item-intrinsic rounds, so every node derives the same pattern
        from the same evidence set regardless of arrival order.
        """
        nodes = self.accused_nodes()
        blessings = self._best_blessings()
        accusations = self._pom_accusations(blessings) if pom_lfd_slack else []
        links = set()
        for item in self._items.values():
            if not isinstance(item, LFD) or self._is_absolved(item, blessings):
                continue
            if set(item.link) & nodes:
                continue
            if accusations and any(
                acc_round <= item.declared_round <= acc_round + pom_lfd_slack
                for _accused, acc_round in accusations
            ):
                continue
            links.add(item.link)
        return normalize_scenario(
            FailureScenario(nodes=nodes, links=frozenset(links)), fmax
        )
