"""Per-mode path computation (paper S3.1, S3.8).

The auditing layer hands the forwarding layer, for each mode m, a set of
paths PATH(m).  For a task tau with upstream tasks alpha_i, downstream
consumers beta_j (tasks or actuators), and replicas rho_1..rho_fconc, four
kinds of paths exist:

1. ``data``  -- alpha_i -> tau and tau -> beta_j: the flow's payload.
2. ``input`` -- tau -> rho_i: the primary forwards its (signed) inputs to
   its replicas for deterministic replay.
3. ``auth``  -- beta_j -> rho_i: downstream consumers forward authenticators
   of tau's outputs to tau's replicas (so replicas see what tau *actually*
   sent, defeating equivocation toward the replicas).
4. ``xrep``  -- rho_i -> rho_j: replicas exchange authenticators of tau's
   inputs and outputs.

Paths are computed deterministically from (topology, mode schedule), so all
correct nodes derive identical path sets without coordination.  Routing uses
BFS with sorted tie-breaking over the *surviving* graph; only controllers
relay, but sensor/actuator endpoints terminate paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.net.message import encode, register_message
from repro.net.topology import Topology
from repro.sched.assign import ModeSchedule
from repro.sched.task import Workload

PATH_DATA = "data"
PATH_INPUT = "input"
PATH_AUTH = "auth"
PATH_XREP = "xrep"

# Pseudo task id used for sensor/actuator endpoints in path descriptors.
DEVICE_TASK = -1


@register_message
@dataclass(frozen=True)
class Path:
    """A unidirectional forwarding path for one mode.

    Attributes:
        path_id: deterministic 63-bit id derived from the descriptor.
        kind: one of ``data``, ``input``, ``auth``, ``xrep``.
        hops: node ids from source to sink, inclusive (length >= 1).
        flow_id: owning flow.
        task_from: producing task id (or DEVICE_TASK for a sensor).
        copy_from: producing copy index (0 = primary).
        task_to: consuming task id (or DEVICE_TASK for an actuator).
        copy_to: consuming copy index.
    """

    path_id: int
    kind: str
    hops: Tuple[int, ...]
    flow_id: int
    task_from: int
    copy_from: int
    task_to: int
    copy_to: int

    @property
    def source(self) -> int:
        return self.hops[0]

    @property
    def sink(self) -> int:
        return self.hops[-1]

    @property
    def length(self) -> int:
        """Number of hops (rounds to traverse)."""
        return len(self.hops) - 1

    def next_hop(self, node: int) -> Optional[int]:
        for i, hop in enumerate(self.hops[:-1]):
            if hop == node:
                return self.hops[i + 1]
        return None

    def position_of(self, node: int) -> Optional[int]:
        try:
            return self.hops.index(node)
        except ValueError:
            return None


def _path_id(descriptor: Tuple) -> int:
    digest = hashlib.sha256(encode(descriptor)).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _bfs_route(graph: nx.Graph, source: int, sink: int) -> Optional[List[int]]:
    """Deterministic shortest path (sorted-neighbor BFS)."""
    if source == sink:
        return [source]
    if source not in graph or sink not in graph:
        return None
    parent: Dict[int, int] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor not in parent:
                    parent[neighbor] = node
                    if neighbor == sink:
                        path = [sink]
                        while path[-1] != source:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return None


class PathSet:
    """All paths of one mode, with per-node indices."""

    def __init__(self, paths: Sequence[Path]):
        self.by_id: Dict[int, Path] = {}
        for path in paths:
            if path.path_id in self.by_id and self.by_id[path.path_id] != path:
                raise ValueError(f"path id collision: {path.path_id}")
            self.by_id[path.path_id] = path

    def __len__(self) -> int:
        return len(self.by_id)

    def all(self) -> List[Path]:
        return [self.by_id[k] for k in sorted(self.by_id)]

    def originating_at(self, node: int) -> List[Path]:
        return [p for p in self.all() if p.source == node]

    def through(self, node: int) -> List[Path]:
        return [p for p in self.all() if node in p.hops]

    def terminating_at(self, node: int) -> List[Path]:
        return [p for p in self.all() if p.sink == node]

    def of_kind(self, kind: str) -> List[Path]:
        return [p for p in self.all() if p.kind == kind]


class PathComputer:
    """Computes PATH(m) for mode schedules over a fixed topology/workload."""

    def __init__(self, topology: Topology, workload: Workload, fconc: int):
        self.topology = topology
        self.workload = workload
        self.fconc = fconc

    def _surviving_graph(self, schedule: ModeSchedule) -> nx.Graph:
        g = self.topology.graph().copy()
        g.remove_nodes_from(schedule.failed_nodes)
        for a, b in schedule.failed_links:
            if g.has_edge(a, b):
                g.remove_edge(a, b)
        return g

    def _route(
        self, graph: nx.Graph, source: int, sink: int
    ) -> Optional[List[int]]:
        """Route via live controllers; device endpoints allowed at the ends."""
        controllers = set(self.topology.controllers)
        keep = (controllers | {source, sink}) & set(graph.nodes)
        sub = graph.subgraph(keep)
        return _bfs_route(sub, source, sink)

    def compute(self, schedule: ModeSchedule) -> PathSet:
        graph = self._surviving_graph(schedule)
        paths: List[Path] = []

        def add(kind: str, hops: List[int], flow_id: int, task_from: int,
                copy_from: int, task_to: int, copy_to: int,
                src_device: int = -1, dst_device: int = -1) -> None:
            # Device node ids disambiguate flows with several sensors or
            # actuators; they do not change when tasks migrate, so path ids
            # stay stable across modes.
            descriptor = (kind, flow_id, task_from, copy_from, task_to,
                          copy_to, src_device, dst_device)
            paths.append(
                Path(
                    path_id=_path_id(descriptor),
                    kind=kind,
                    hops=tuple(hops),
                    flow_id=flow_id,
                    task_from=task_from,
                    copy_from=copy_from,
                    task_to=task_to,
                    copy_to=copy_to,
                )
            )

        for flow_id in sorted(schedule.active_flows):
            flow = self.workload.flows[flow_id]
            hosts = {
                task.task_id: schedule.primary_of(task.task_id) for task in flow.tasks
            }
            if any(h is None for h in hosts.values()):
                continue  # defensively skip partially placed flows

            # 1. data: sensors -> entry tasks.
            for task in flow.entry_tasks():
                for sensor in flow.sensors:
                    route = self._route(graph, sensor, hosts[task.task_id])
                    if route:
                        add(PATH_DATA, route, flow_id, DEVICE_TASK, 0,
                            task.task_id, 0, src_device=sensor)
            # 2. data: task -> downstream task.
            for task in flow.tasks:
                for down_id in flow.downstream_of(task.task_id):
                    route = self._route(graph, hosts[task.task_id], hosts[down_id])
                    if route:
                        add(PATH_DATA, route, flow_id, task.task_id, 0, down_id, 0)
            # 3. data: exit tasks -> actuators.
            for task in flow.exit_tasks():
                for actuator in flow.actuators:
                    route = self._route(graph, hosts[task.task_id], actuator)
                    if route:
                        add(PATH_DATA, route, flow_id, task.task_id, 0,
                            DEVICE_TASK, 0, dst_device=actuator)

            # Audit paths, per task (paper S3.8).
            for task in flow.tasks:
                replica_hosts = {
                    copy_idx: schedule.placements.get((task.task_id, copy_idx))
                    for copy_idx in range(1, self.fconc + 1)
                }
                primary = hosts[task.task_id]
                for copy_idx, rho in sorted(replica_hosts.items()):
                    if rho is None:
                        continue
                    # tau -> rho_i (input forwarding).
                    route = self._route(graph, primary, rho)
                    if route:
                        add(PATH_INPUT, route, flow_id, task.task_id, 0,
                            task.task_id, copy_idx)
                    # beta_j -> rho_i (output authenticators), where beta_j is
                    # each downstream task host or actuator.
                    downstream_nodes: List[Tuple[int, int]] = []
                    for down_id in flow.downstream_of(task.task_id):
                        downstream_nodes.append((down_id, hosts[down_id]))
                    if task in flow.exit_tasks():
                        for actuator in flow.actuators:
                            downstream_nodes.append((DEVICE_TASK, actuator))
                    for beta_task, beta_node in downstream_nodes:
                        route = self._route(graph, beta_node, rho)
                        if route:
                            add(PATH_AUTH, route, flow_id, beta_task, 0,
                                task.task_id, copy_idx,
                                src_device=beta_node if beta_task == DEVICE_TASK else -1)
                    # rho_i -> rho_j exchanges.
                    for other_idx, other_rho in sorted(replica_hosts.items()):
                        if other_idx == copy_idx or other_rho is None:
                            continue
                        route = self._route(graph, rho, other_rho)
                        if route:
                            add(PATH_XREP, route, flow_id, task.task_id, copy_idx,
                                task.task_id, other_idx)
        return PathSet(paths)
