"""Sensor and actuator devices (paper S2.3).

Devices are not controllers: they run no heartbeat protocol, host no tasks,
and are trusted not to be compromised (the paper scopes attacks to
controllers; attack-resilient state estimation is cited as the orthogonal
defense for sensors/actuators).  They do, however:

* **sensors** -- sign and emit one reading per round on each of their data
  paths, so that task inputs are attributable end-to-end;
* **actuators** -- verify that an incoming command is signed by the task
  primary the *current mode* designates, apply it to the plant, and echo the
  command's authenticator to the task's replicas (the beta -> rho role for
  exit tasks).  To know the current mode, an actuator passively verifies the
  evidence it observes on its bus and performs the same independent mode
  lookup controllers do.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.auditing import TaskRegistry
from repro.core.config import ReboundConfig
from repro.core.evidence import EvidenceSet, EvidenceVerifier, data_body
from repro.core.forwarding import DataPacket, RoundMessage
from repro.core.identity import NodeCrypto
from repro.core.node import PathCache
from repro.core.paths import PATH_AUTH, PATH_DATA, PathSet
from repro.crypto.hashing import hash_bytes
from repro.net.message import encode
from repro.net.network import NodeProtocol
from repro.net.topology import Topology
from repro.sched.assign import ModeSchedule
from repro.sched.modegen import ModeTree


class _DeviceBase(NodeProtocol):
    """Shared mode-tracking logic for sensors and actuators."""

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        config: ReboundConfig,
        crypto: NodeCrypto,
        registry: TaskRegistry,
        mode_tree: ModeTree,
        path_cache: PathCache,
    ):
        self.node_id = node_id
        self.topology = topology
        self.config = config
        self.crypto = crypto
        self.mode_tree = mode_tree
        self.path_cache = path_cache
        self.verifier = EvidenceVerifier(
            verify_signature=crypto.verify,
            replay_task=registry.replay,
            replay_state=registry.replay_state,
            verify_operator=crypto.verify_operator,
        )
        self.evidence = EvidenceSet(bounded=config.quotas_enabled)
        self.schedule: Optional[ModeSchedule] = None
        self.paths: PathSet = PathSet([])
        self._round = 0
        self.adopt_mode()

    def adopt_mode(self) -> None:
        from repro.core.quotas import pom_lfd_slack

        # Same explained-LFD window as the controllers' forwarding layers:
        # a device deriving a different pattern from the same evidence would
        # adopt a divergent mode.
        slack = None if self.config.d_max is None else pom_lfd_slack(self.config.d_max)
        pattern = self.evidence.failure_pattern(self.config.fmax, pom_lfd_slack=slack)
        schedule = self.mode_tree.schedule_for(pattern)
        if schedule != self.schedule:
            self.schedule = schedule
            self.paths = self.path_cache.paths_for(schedule)

    def _ingest_evidence(self, items: Tuple[Any, ...]) -> None:
        changed = False
        for item in items:
            if item in self.evidence:
                continue
            if self.verifier.verify(item):
                changed |= self.evidence.add(item)
        if changed:
            self.adopt_mode()

    def on_round_start(self, round_no: int) -> None:
        self._round = round_no


class SensorDevice(_DeviceBase):
    """Emits one signed reading per round on each path originating here.

    Args:
        read: callable(round) -> payload bytes (wired to the plant model).
    """

    def __init__(self, *args, read: Callable[[int], bytes], **kwargs):
        super().__init__(*args, **kwargs)
        self.read = read
        self.readings_sent = 0

    def on_receive(self, round_no: int, sender: int, payload: Any) -> None:
        if isinstance(payload, RoundMessage):
            self._ingest_evidence(payload.evidence)

    def on_round_end(self, round_no: int) -> None:
        reading = self.read(round_no)
        packets_by_hop: Dict[int, List[DataPacket]] = {}
        for path in self.paths.originating_at(self.node_id):
            if path.kind != PATH_DATA or path.length == 0:
                continue
            body = data_body(path.path_id, round_no, hash_bytes(reading))
            packet = DataPacket(
                path_id=path.path_id,
                origin_round=round_no,
                payload=reading,
                origin=self.node_id,
                signature=self.crypto.sign(body),
            )
            packets_by_hop.setdefault(path.hops[1], []).append(packet)
            self.readings_sent += 1
        for hop, packets in sorted(packets_by_hop.items()):
            msg = RoundMessage(
                sender=self.node_id,
                round_no=round_no,
                records=(),
                aggregates=(),
                evidence=(),
                packets=tuple(packets),
            )
            self.network.send(self.node_id, hop, msg)


class ActuatorDevice(_DeviceBase):
    """Applies mode-authorized commands to the plant and echoes auths.

    Args:
        apply: callable(round, payload, origin) -> None (wired to the
            plant model).
    """

    def __init__(self, *args, apply: Callable[[int, bytes, int], None], **kwargs):
        super().__init__(*args, **kwargs)
        self.apply = apply
        self.trace: List[Tuple[int, bytes, int]] = []
        self.rejected = 0
        self._auth_outbox: List[Tuple[Any, bytes]] = []
        self._seen: set = set()

    def on_receive(self, round_no: int, sender: int, payload: Any) -> None:
        if not isinstance(payload, RoundMessage):
            return
        self._ingest_evidence(payload.evidence)
        for packet in payload.packets:
            self._on_packet(round_no, packet)

    def _on_packet(self, round_no: int, packet: DataPacket) -> None:
        path = self.paths.by_id.get(packet.path_id)
        if path is None or path.sink != self.node_id or path.kind != PATH_DATA:
            return
        key = (packet.path_id, packet.origin_round)
        if key in self._seen:
            return
        self._seen.add(key)
        # Only the mode-designated primary may command this actuator.
        if packet.origin != path.source:
            self.rejected += 1
            return
        if not self.crypto.verify(packet.origin, packet.body(), packet.signature):
            self.rejected += 1
            return
        self.trace.append((round_no, packet.payload, packet.origin))
        self.apply(round_no, packet.payload, packet.origin)
        # Echo the authenticator to the producing task's replicas.
        auth_payload = encode(
            (
                packet.path_id,
                packet.origin_round,
                hash_bytes(packet.payload),
                packet.signature,
            )
        )
        for auth_path in self.paths.of_kind(PATH_AUTH):
            if (
                auth_path.source == self.node_id
                and auth_path.task_to == path.task_from
            ):
                self._auth_outbox.append((auth_path, auth_payload))

    def on_round_end(self, round_no: int) -> None:
        outbox, self._auth_outbox = self._auth_outbox, []
        packets_by_hop: Dict[int, List[DataPacket]] = {}
        for path, payload in outbox:
            if path.length == 0:
                continue
            body = data_body(path.path_id, round_no, hash_bytes(payload))
            packet = DataPacket(
                path_id=path.path_id,
                origin_round=round_no,
                payload=payload,
                origin=self.node_id,
                signature=self.crypto.sign(body),
            )
            packets_by_hop.setdefault(path.hops[1], []).append(packet)
        for hop, packets in sorted(packets_by_hop.items()):
            msg = RoundMessage(
                sender=self.node_id,
                round_no=round_no,
                records=(),
                aggregates=(),
                evidence=(),
                packets=tuple(packets),
            )
            self.network.send(self.node_id, hop, msg)

    def applied_in_round(self, round_no: int) -> List[Tuple[bytes, int]]:
        return [(p, o) for r, p, o in self.trace if r == round_no]
