"""REBOUND deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

VARIANT_BASIC = "basic"
VARIANT_MULTI = "multi"


@dataclass
class ReboundConfig:
    """Parameters of a REBOUND deployment.

    Attributes:
        fmax: total faults planned for (size of the mode tree).
        fconc: maximum concurrent faults within one recovery window; also
            the number of replicas per task (paper S2.5, S3.7).
        round_length_us: length of one protocol round in microseconds (the
            testbed uses 40 ms rounds, equal to the task period).
        variant: ``"basic"`` (S3.5 optimizations, individual RSA
            signatures) or ``"multi"`` (adds S3.6 multisignatures).
        d_max: message-expiry horizon in rounds (the max-fail distance bound
            of S3.5).  ``None`` lets the runtime compute it from the
            topology.
        utilization_cap: EDF budget per controller left for application
            tasks after the REBOUND protocol task.
        expiry_optimization: drop heartbeats older than ``d_max`` rounds
            (second refinement of S3.5).  Disabled only for ablations.
        bus_broadcast: broadcast heartbeats on buses instead of unicasting
            to each bus neighbor (third refinement of S3.5).
        signature_spot_checking: on buses, have each broadcast signature
            verified by a subset of fmax+1 members instead of everyone
            (third refinement of S3.5, challenge-based).
        crypto_profile: cost-model profile name (see
            :mod:`repro.crypto.cost_model`).
        rsa_bits: modulus size for ordinary signatures (paper: 512).
        multisig_bits: group size for multisignatures (paper: 256).
        scheduler_method: per-mode placement engine, ``"greedy"`` or
            ``"ilp"``.
        audit_lag_rounds: rounds a replica waits for downstream
            authenticators before auditing a primary output.
        protocol_enabled: set False for the *unprotected* baseline of
            Fig. 8/10/11: no heartbeats, no omission detection, no
            auditing replicas -- just task execution and data routing.
        verify_cache: consult the process-wide signature-verification
            cache (:mod:`repro.crypto.verify_cache`).  A pure simulator
            fast path; disabling it yields byte-identical transcripts
            and operation counts, just slower (see benchmarks).
        quotas_enabled: admission control + bounded evidence/challenge
            stores (:mod:`repro.core.quotas`).  Transcript-preserving
            whenever no quota fires -- i.e. in any run where every sender
            stays within what a correct node could legitimately originate
            per round.  Disabled only for ablations.
        bitset_coverage: numpy-backed bitsets for Rule B delivered/coverage
            sets and the heartbeat store (:mod:`repro.core.heartbeat`).
            A pure simulator fast path -- byte-identical transcripts and
            counts; silently falls back to plain sets without numpy.
        round_batched_verify: under MULTI, buffer a round's inbound
            messages and warm the verification cache with one batched
            multisignature pass over all admissible aggregates before
            per-message processing.  Transcript- and counter-identical
            (warming never counts; the per-message path still charges
            every logical operation).
        frame_ipc: ship sharded-engine deliveries and captured intents
            between processes as interned canonical codec frames
            (:mod:`repro.net.frames`) instead of pickled message objects,
            and batch worker write-RPCs into the round flush.  A pure IPC
            fast path: transcripts and logical counters are byte-identical
            either way (frames *are* the canonical encoding).  Disabled
            only for ablation/benchmark comparison; ignored by the serial
            engine.
        durability_enabled: persist every node's protocol state to disk --
            an append-only HMAC-chained event log plus periodic sealed
            snapshots (:mod:`repro.durability`) -- enabling verified
            crash-restart-rejoin.  Off by default; the write path is
            observation-only, so transcripts are byte-identical either way.
        durability_dir: root directory for the per-node durable stores
            (``<dir>/node_<id>/``).  Required when durability is enabled.
        snapshot_interval: rounds between consistent snapshots of the
            evidence store, heartbeat/coverage stores, quota ledger, and
            mode pointer.
        stabilize_enabled: run a periodic :class:`~repro.stabilize.StateAuditor`
            on every node -- each ``audit_interval`` rounds the auditor
            digests local state (evidence root, epoch digest cache, mode
            pointer, quota ledger) into an audit beacon, cross-checks it
            against quorum evidence, and on divergence resyncs the node
            from a quorum reference plus the durable verified prefix
            (when durability is on).  Off by default; with no corruption
            the audit pass is observation-only, so transcripts are
            byte-identical either way.
        audit_interval: rounds between state audits.  Together with
            ``d_max`` it fixes the self-stabilization convergence bound
            ``2 * audit_interval + d_max + 2`` asserted by the monitor's
            Req-S check (docs/PROTOCOL.md section 16).
        tree_refresh_enabled: when the observed failure pattern drifts
            beyond the precomputed mode tree (> fmax), regenerate the
            affected subtree online via the parallel modegen engine
            instead of sitting in the covering-ancestor holding mode
            forever.  Off by default (holding mode is still safe -- this
            flag only adds the refresh); byte-identical transcripts when
            the pattern never leaves the tree.
    """

    fmax: int = 1
    fconc: int = 1
    round_length_us: int = 40_000
    variant: str = VARIANT_MULTI
    d_max: Optional[int] = None
    utilization_cap: float = 0.9
    expiry_optimization: bool = True
    bus_broadcast: bool = True
    signature_spot_checking: bool = True
    crypto_profile: str = "x86"
    rsa_bits: int = 512
    multisig_bits: int = 256
    scheduler_method: str = "greedy"
    audit_lag_rounds: int = 1
    protocol_enabled: bool = True
    verify_cache: bool = True
    quotas_enabled: bool = True
    bitset_coverage: bool = True
    round_batched_verify: bool = True
    frame_ipc: bool = True
    durability_enabled: bool = False
    durability_dir: Optional[str] = None
    snapshot_interval: int = 8
    stabilize_enabled: bool = False
    audit_interval: int = 4
    tree_refresh_enabled: bool = False

    def __post_init__(self) -> None:
        if self.fmax < 0 or self.fconc < 0:
            raise ValueError("fmax and fconc must be non-negative")
        if self.fconc > self.fmax:
            raise ValueError("fconc cannot exceed fmax")
        if self.variant not in (VARIANT_BASIC, VARIANT_MULTI):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.round_length_us <= 0:
            raise ValueError("round length must be positive")
        if not 0 < self.utilization_cap <= 1:
            raise ValueError("utilization cap must be in (0, 1]")
        if self.snapshot_interval <= 0:
            raise ValueError("snapshot interval must be positive")
        if self.durability_enabled and not self.durability_dir:
            raise ValueError("durability_enabled requires durability_dir")
        if self.audit_interval <= 0:
            raise ValueError("audit interval must be positive")

    @property
    def round_length_ms(self) -> float:
        return self.round_length_us / 1000.0

    def rounds_to_us(self, rounds: int) -> int:
        return rounds * self.round_length_us

    def recovery_bound_rounds(self, detection_rounds: int, stabilization_rounds: int,
                              switch_rounds: int = 1) -> int:
        """Rmax in rounds: Tdet + Tstab + Tswitch (paper S2.7)."""
        return detection_rounds + stabilization_rounds + switch_rounds
