"""The REBOUND forwarding layer (paper S3.3-3.6).

Responsibilities (paper S3.1):

1. carry data packets along PATH(m) for the current mode;
2. distribute evidence to every correct node in the sender's partition;
3. detect nodes that fail at (1) or (2) and generate evidence of it;
4. select the local mode from the available evidence (done by the node that
   owns this layer; the layer reports evidence changes upward).

Detection rules (implementing Fig. 4's demands in an explicitly round-based
style):

* **Rule A (liveness)** -- each live controller neighbor must deliver a
  well-formed round message every round; a missing or malformed one yields
  an LFD against the shared link.
* **Rule B (coverage)** -- heartbeats must propagate at one hop per round:
  by round r, neighbor j must have delivered heartbeats (individual or
  aggregated) of every origin within distance r-1-r' of j in the
  fault-adjusted graph, for every origin round r'.  A shortfall that the
  sender's declared evidence does not excuse yields an LFD.  The check is
  suspended for origin rounds within ``stabilization_slack`` of the last
  evidence change, because propagation is legitimately disturbed while a
  new fault's evidence floods (each new fault restarts the Rmax clock,
  paper S2.5).
* **Rule C (data paths)** -- once the mode has been stable long enough for
  a path's pipeline to fill, each hop must receive the path's packet every
  round; a miss yields an LFD against the upstream hop.
* **Equivocation** -- two validly signed heartbeats (or data packets) for
  the same slot with different content yield a PoM against the signer.

Variants: REBOUND-BASIC floods individually signed heartbeats with delta
flooding + expiry + bus broadcast (S3.5).  REBOUND-MULTI additionally
aggregates heartbeats into multisignatures whose signer multisets are
derived from the topology (S3.6; see :mod:`repro.core.heartbeat`), falling
back to individual flooding while evidence is in flux.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import VARIANT_BASIC, VARIANT_MULTI, ReboundConfig
from repro.core.evidence import (
    EquivocationPoM,
    EvidenceSet,
    EvidenceVerifier,
    LFD,
    data_body,
    evidence_digest,
    evidence_half_body,
    heartbeat_body,
    lfd_body,
)
from repro.core.heartbeat import (
    HAVE_NUMPY,
    AggregateHeartbeat,
    BasicHeartbeatStore,
    BitsetHeartbeatStore,
    CoverageCalculator,
    HeartbeatRecord,
    bitset_words,
)

if HAVE_NUMPY:
    import numpy as _np
from repro.core.identity import NodeCrypto
from repro.core.paths import Path, PathSet
from repro.core.quotas import AdmissionQuotas, pom_lfd_slack
from repro.crypto.hashing import hash_bytes
from repro.net.message import encode, register_message
from repro.net.topology import Topology
from repro.obs import recorder as _flight
from repro.obs.events import (
    EV_EPOCH_ADVANCE,
    EV_EVIDENCE_APPLIED,
    EV_HEARTBEAT_SEND,
    EV_HEARTBEAT_VERIFY,
    EV_LFD_ISSUED,
    EV_POM_CREATED,
    EV_QUOTA_DROP,
)
from repro.sched.modegen import FailureScenario

# Process-wide LRU cache of coverage calculators, keyed by the canonical
# adjacency encoding.  The DP is a deterministic function of shared public
# information (topology + fault pattern), so sharing it across simulated
# nodes loses no fidelity.  Bounded so a long-lived process sweeping many
# scenarios (the figure scripts) cannot grow it without limit.
_COVERAGE_CACHE_CAPACITY = 256
_coverage_cache: "OrderedDict[bytes, CoverageCalculator]" = OrderedDict()
_coverage_cache_stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def _coverage_for(adjacency: Dict[int, Tuple[int, ...]], max_age: int) -> CoverageCalculator:
    key = hash_bytes(encode((sorted(adjacency.items()), max_age)))
    calc = _coverage_cache.get(key)
    if calc is None:
        _coverage_cache_stats["misses"] += 1
        calc = CoverageCalculator(adjacency, max_age)
        _coverage_cache[key] = calc
        while len(_coverage_cache) > _COVERAGE_CACHE_CAPACITY:
            _coverage_cache.popitem(last=False)
            _coverage_cache_stats["evictions"] += 1
    else:
        _coverage_cache_stats["hits"] += 1
        _coverage_cache.move_to_end(key)
    return calc


def coverage_cache_stats() -> Dict[str, int]:
    stats = dict(_coverage_cache_stats)
    stats["capacity"] = _COVERAGE_CACHE_CAPACITY
    stats["entries"] = len(_coverage_cache)
    return stats


def reset_coverage_cache_stats() -> None:
    _coverage_cache_stats.update(hits=0, misses=0, evictions=0)


def _evidence_event_data(item: Any) -> Dict[str, Any]:
    """Kind-specific flight-recorder fields for one evidence item."""
    from repro.core.blessing import Blessing

    data: Dict[str, Any] = {"item": type(item).__name__}
    if isinstance(item, LFD):
        data["link"] = list(item.link)
        data["issuer"] = item.issuer
    elif isinstance(item, Blessing):
        data["blessed"] = item.node_id
    else:
        accused = getattr(item, "accused", None)
        if accused is not None:
            data["accused"] = accused
    return data


def configure_coverage_cache(capacity: int) -> None:
    """Resize the coverage-calculator cache (evicting LRU entries)."""
    global _COVERAGE_CACHE_CAPACITY
    if capacity <= 0:
        raise ValueError("coverage cache capacity must be positive")
    _COVERAGE_CACHE_CAPACITY = capacity
    while len(_coverage_cache) > capacity:
        _coverage_cache.popitem(last=False)
        _coverage_cache_stats["evictions"] += 1


@register_message
@dataclass(frozen=True)
class DataPacket:
    """A payload travelling on a forwarding-layer path.

    The origin signs the *authenticator* -- (path, round, payload digest) --
    so the signature is detachable from the payload (paper S3.8).
    """

    path_id: int
    origin_round: int
    payload: bytes
    origin: int
    signature: bytes

    def body(self) -> bytes:
        return data_body(self.path_id, self.origin_round, hash_bytes(self.payload))


@register_message
@dataclass(frozen=True)
class RoundMessage:
    """Everything one node sends a neighbor in one round."""

    sender: int
    round_no: int
    records: Tuple[HeartbeatRecord, ...]
    aggregates: Tuple[AggregateHeartbeat, ...]
    evidence: Tuple[Any, ...]
    packets: Tuple[DataPacket, ...]


@dataclass
class RoundOutput:
    """What a node must transmit at the end of a round.

    The flood content (records/aggregates/evidence) is identical for every
    neighbor -- which is what makes the S3.5 bus-broadcast optimization
    possible; data packets are routed to their specific next hops (which may
    be devices).
    """

    round_no: int
    records: Tuple[HeartbeatRecord, ...]
    aggregates: Tuple[AggregateHeartbeat, ...]
    evidence: Tuple[Any, ...]
    packets_by_next_hop: Dict[int, List[DataPacket]]
    controller_neighbors: List[int]

    def message_for(self, sender: int, destinations: List[int]) -> RoundMessage:
        """Compose one wire message covering ``destinations``."""
        packets: List[DataPacket] = []
        for dest in destinations:
            packets.extend(self.packets_by_next_hop.get(dest, []))
        return RoundMessage(
            sender=sender,
            round_no=self.round_no,
            records=self.records,
            aggregates=self.aggregates,
            evidence=self.evidence,
            packets=tuple(packets),
        )


# Module-level defaultdict factories: lambdas here would make nodes
# unpicklable, and the sharded engine recalls nodes by pickling.
def _new_delivered_set_bucket() -> "defaultdict[int, Set[int]]":
    return defaultdict(set)


def _new_delivered_bucket() -> Dict[int, Any]:
    return {}


@dataclass
class _AggregateState:
    """This node's in-progress aggregate for one origin round."""

    value: int
    support: Set[int]
    grew: bool = True  # support grew this round (transmit trigger)
    broken: bool = False  # diverged from the DP; stop aggregating


class ForwardingLayer:
    """One controller's forwarding layer.

    Args:
        node_id: this controller.
        topology: the full physical topology.
        config: deployment parameters.
        crypto: counted crypto handle.
        verifier: evidence verifier (shared verification logic).
        on_new_evidence: callback(list of items) after evidence grows.
        on_packet: callback(path, origin_round, payload, origin,
            signature) when a packet reaches this node as sink (signature
            already verified).
    """

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        config: ReboundConfig,
        crypto: NodeCrypto,
        verifier: EvidenceVerifier,
        on_new_evidence: Callable[[List[Any]], None],
        on_packet: Callable[[Path, int, bytes, int, bytes], None],
    ):
        self.node_id = node_id
        self.topology = topology
        self.config = config
        self.crypto = crypto
        self.verifier = verifier
        self.on_new_evidence = on_new_evidence
        self.on_packet = on_packet

        if config.d_max is None:
            raise ValueError("config.d_max must be resolved before layer creation")
        self.d_max: int = config.d_max
        self.window = self.d_max + 2
        self.stabilization_slack = self.d_max + 2

        self.evidence = EvidenceSet(bounded=config.quotas_enabled)
        self.last_evidence_change = -(10**9)
        # Bitset fast path: delivered/coverage sets and the heartbeat store
        # keyed by controller bit position (transcript-identical; see
        # ReboundConfig.bitset_coverage).
        self._use_bitsets = bool(config.bitset_coverage and HAVE_NUMPY)
        self._node_index: Dict[int, int] = {
            nid: pos for pos, nid in enumerate(sorted(topology.controllers))
        }
        self._bit_words = bitset_words(len(self._node_index))
        if self._use_bitsets:
            self.store: BasicHeartbeatStore = BitsetHeartbeatStore(
                window=self.window,
                expiry=config.expiry_optimization,
                node_index=self._node_index,
            )
        else:
            self.store = BasicHeartbeatStore(
                window=self.window, expiry=config.expiry_optimization
            )
        self.store.owner = node_id
        # MULTI aggregate state per origin round.
        self._aggregates: Dict[int, _AggregateState] = {}
        # Rule B bookkeeping: neighbor -> origin round -> delivered origins
        # (a plain set of ids, or a packed bit array on the bitset path).
        self._delivered: Dict[int, Dict[int, Any]] = defaultdict(
            _new_delivered_bucket if self._use_bitsets else _new_delivered_set_bucket
        )
        self._got_message_from: Set[int] = set()
        # link -> round of the last LFD this layer issued for it.  Re-issue
        # is allowed after ``lfd_reissue_cooldown`` rounds so a genuine link
        # fault whose first declaration was explained away by a concurrent
        # equivocation PoM (see EvidenceSet.failure_pattern) is not masked
        # forever; a link already adopted into the fault pattern stops being
        # a live neighbor, so the cooldown never causes per-round re-minting.
        self._lfds_issued: Dict[Tuple[int, int], int] = {}
        # Deferred Rule B suspicions: neighbor -> (round raised, expected
        # support at raise time).  A coverage shortfall is held for
        # ``rule_b_grace`` rounds before becoming an LFD; if a commission PoM
        # against a node inside the expected support arrives meanwhile, the
        # shortfall is charged to that proven-faulty origin instead of the
        # relaying neighbor (the equivocation-storm accuracy fix).
        self._pending_rule_b: Dict[int, Tuple[int, frozenset]] = {}
        # While probing, _compose_heartbeats falls back to individual-record
        # flooding even in MULTI's stable state: conflicting per-destination
        # heartbeats only surface as equivocation PoMs when records circulate.
        self._probe_until = -1
        self.rule_b_grace = self.d_max + 2
        # An unabsolved commission PoM explains LFDs declared up to this many
        # rounds after its accusation round (storm geometry: conflict
        # propagation plus the Rule B horizon plus the deferral window).
        self.pom_lfd_slack = pom_lfd_slack(self.d_max)
        self.lfd_reissue_cooldown = self.pom_lfd_slack + 1
        self.quotas: Optional[AdmissionQuotas] = (
            AdmissionQuotas.from_topology(topology, self.d_max)
            if config.quotas_enabled and config.protocol_enabled
            else None
        )

        # Data-path state.
        self.paths: PathSet = PathSet([])
        self.paths_stable_since = 0
        self._relay_queue: List[DataPacket] = []
        self._local_outbox: List[DataPacket] = []
        self._seen_packets: Set[Tuple[int, int]] = set()
        self._packets_this_round: Set[Tuple[int, int]] = set()
        self._new_evidence_outbox: List[Any] = []
        self._fault_pattern = FailureScenario(nodes=frozenset(), links=frozenset())
        self._coverage: Optional[CoverageCalculator] = None
        self._round = 0
        self._joined_round = 0
        self.started = False

    # -- wiring --------------------------------------------------------------

    def start(self, round_no: int) -> None:
        """Begin participating (heartbeats expected from the next round on)."""
        self._joined_round = round_no
        self._round = round_no
        self.started = True
        self._refresh_pattern(initial=True)

    def set_paths(self, paths: PathSet, stable_since: int) -> None:
        self.paths = paths
        self.paths_stable_since = stable_since

    # -- fault pattern / coverage ------------------------------------------------

    def _refresh_pattern(self, initial: bool = False) -> None:
        pattern = self.evidence.failure_pattern(
            self.config.fmax, pom_lfd_slack=self.pom_lfd_slack
        )
        if not initial and pattern == self._fault_pattern and self._coverage is not None:
            return
        self._fault_pattern = pattern
        adjacency: Dict[int, Tuple[int, ...]] = {}
        controllers = [
            c for c in self.topology.controllers if c not in pattern.nodes
        ]
        controller_set = set(controllers)
        for c in controllers:
            neigh = [
                x
                for x in self.topology.neighbors(c)
                if x in controller_set
                and (min(c, x), max(c, x)) not in pattern.links
            ]
            adjacency[c] = tuple(neigh)
        self._coverage = _coverage_for(adjacency, self.d_max)
        if self._use_bitsets:
            self._coverage.ensure_bit_index(self._node_index)

    def _mark_delivered(self, sender: int, round_no: int, origin: int) -> None:
        """Record that ``sender`` relayed ``origin``'s round-``round_no``
        heartbeat (individually)."""
        if not self._use_bitsets:
            self._delivered[sender][round_no].add(origin)
            return
        pos = self._node_index.get(origin)
        if pos is None:
            return  # non-controller origin: never in any expected support
        bucket = self._delivered[sender]
        bits = bucket.get(round_no)
        if bits is None:
            bits = _np.zeros(self._bit_words, dtype=_np.uint64)
            bucket[round_no] = bits
        bits[pos >> 6] |= _np.uint64(1) << _np.uint64(pos & 63)

    def _mark_delivered_support(self, sender: int, round_no: int, age: int) -> None:
        """Fold a verified aggregate's whole support set into the
        delivered map (the hot O(n) union of Rule B bookkeeping)."""
        assert self._coverage is not None
        if not self._use_bitsets:
            self._delivered[sender][round_no].update(
                self._coverage.support(sender, age)
            )
            return
        support_bits = self._coverage.support_bits(sender, age)
        bucket = self._delivered[sender]
        bits = bucket.get(round_no)
        if bits is None:
            bucket[round_no] = support_bits.copy()
        else:
            _np.bitwise_or(bits, support_bits, out=bits)

    def _coverage_shortfall(self, j: int, r_origin: int) -> bool:
        """Rule B subset test: did neighbor ``j`` fail to deliver some
        origin it must have covered by age d_max?"""
        assert self._coverage is not None
        if self._use_bitsets:
            expected_bits = self._coverage.support_bits(j, self.d_max)
            bits = self._delivered[j].get(r_origin)
            if bits is None:
                return bool(_np.any(expected_bits))
            return bool(_np.any(expected_bits & ~bits))
        expected = self._coverage.support(j, self.d_max)
        return not expected <= self._delivered[j][r_origin]

    @property
    def fault_pattern(self) -> FailureScenario:
        return self._fault_pattern

    @property
    def epoch_digest(self) -> bytes:
        return self.evidence.digest()

    def _live_neighbors(self) -> List[int]:
        pattern = self._fault_pattern
        out = []
        for x in self.topology.neighbors(self.node_id):
            if self.topology.role(x) != "controller":
                continue
            if x in pattern.nodes:
                continue
            if (min(self.node_id, x), max(self.node_id, x)) in pattern.links:
                continue
            out.append(x)
        return out

    # -- evidence ---------------------------------------------------------------

    def issue_lfd(self, other: int) -> None:
        """Declare the link to ``other`` failed (omission observed)."""
        link = (min(self.node_id, other), max(self.node_id, other))
        last = self._lfds_issued.get(link)
        if last is not None and self._round < last + self.lfd_reissue_cooldown:
            return
        self._lfds_issued[link] = self._round
        flight = _flight.active
        if flight is not None:
            flight.emit(
                EV_LFD_ISSUED,
                self.node_id,
                {"link": list(link)},
                round_no=self._round,
            )
        body = lfd_body(self.node_id, other, self._round)
        lfd = LFD(
            a=link[0],
            b=link[1],
            declared_round=self._round,
            issuer=self.node_id,
            signature=self.crypto.sign(body),
        )
        self._admit_evidence([lfd], verified=True)

    def submit_evidence(self, item: Any) -> None:
        """Inject locally generated (already valid) evidence, e.g. a PoM
        from the auditing layer."""
        self._admit_evidence([item], verified=True)

    def _admit_evidence(self, items: List[Any], verified: bool) -> List[Any]:
        from repro.core.blessing import Blessing

        added = []
        for item in items:
            if item in self.evidence:
                continue
            if not verified and not self.verifier.verify(item):
                continue
            if self.evidence.add(item):
                added.append(item)
                if isinstance(item, Blessing):
                    # The repaired node's links may legitimately fail again
                    # later; re-arm this layer's one-LFD-per-link guard.
                    self._lfds_issued = {
                        link: rnd
                        for link, rnd in self._lfds_issued.items()
                        if item.node_id not in link
                    }
                    # A blessing absolves accusations up to as_of_round.  A
                    # coverage suspicion raised in that window would mature
                    # into a *post*-blessing LFD the blessing cannot absolve,
                    # permanently re-condemning the repaired node -- drop it
                    # the same way an explaining pattern entry would.
                    pending = self._pending_rule_b.get(item.node_id)
                    if pending is not None and pending[0] <= item.as_of_round:
                        del self._pending_rule_b[item.node_id]
        if added:
            self.last_evidence_change = self._round
            self._new_evidence_outbox.extend(added)
            self._refresh_pattern()
            flight = _flight.active
            if flight is not None:
                for item in added:
                    flight.emit(
                        EV_EVIDENCE_APPLIED,
                        self.node_id,
                        _evidence_event_data(item),
                        round_no=self._round,
                    )
                pattern = self._fault_pattern
                flight.emit(
                    EV_EPOCH_ADVANCE,
                    self.node_id,
                    {
                        "digest": self.evidence.digest().hex()[:16],
                        "items": len(self.evidence),
                        "pattern_nodes": sorted(pattern.nodes),
                        "pattern_links": [
                            list(link) for link in sorted(pattern.links)
                        ],
                    },
                    round_no=self._round,
                )
            self.on_new_evidence(added)
        return added

    # -- round lifecycle -----------------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        self._round = round_no
        self._got_message_from = set()
        self._packets_this_round = set()
        if self.quotas is not None:
            self.quotas.begin_round(round_no)

    def _charge_quota(self, sender: int, kind: str) -> bool:
        """Admission control: one unit of round-``kind`` verification budget
        for ``sender``.  Anything beyond what a correct node could
        legitimately originate in one round is dropped *before* signature
        verification (the flood defense); the first drop per (sender, kind)
        per round is flight-recorded."""
        quotas = self.quotas
        if quotas is None:
            return True
        allowed, first_drop = quotas.charge(sender, kind)
        if not allowed and first_drop:
            flight = _flight.active
            if flight is not None:
                flight.emit(
                    EV_QUOTA_DROP,
                    self.node_id,
                    {"sender": sender, "kind": kind},
                    round_no=self._round,
                )
        return allowed

    def receive(self, round_no: int, sender: int, msg: Any) -> None:
        if not isinstance(msg, RoundMessage):
            return
        if msg.sender != sender or msg.round_no != round_no - 1:
            self.issue_lfd(sender)
            return
        if sender in self._fault_pattern.nodes:
            return  # excluded node: its messages are ignored (Fig. 4, l.23)
        first_from_sender = sender not in self._got_message_from
        self._got_message_from.add(sender)
        bad = False
        bad |= not self._process_evidence(sender, msg.evidence)
        if first_from_sender:
            # A node sharing two buses with the sender hears the same
            # broadcast twice; heartbeats are only folded in once (combining
            # an aggregate twice would diverge from the coverage DP).
            bad |= not self._process_records(sender, msg.records)
            bad |= not self._process_aggregates(sender, msg.aggregates)
        self._process_packets(sender, msg.packets)
        if bad:
            self.issue_lfd(sender)

    def receive_batch(self, batch: List[Tuple[int, int, Any]]) -> None:
        """Process a round's buffered deliveries: one batched warm pass
        over every admissible aggregate signature, then the ordinary
        per-message path in original order.

        Warming only prefetches verification outcomes into the shared
        cache (no counters, no state), so this is transcript- and
        counter-identical to per-message processing -- the win is that all
        residual multisig checks of the round amortize into a single
        batched group equation instead of one small batch per message.
        """
        self._warm_aggregate_verifications(batch)
        for round_no, sender, msg in batch:
            self.receive(round_no, sender, msg)

    def _warm_aggregate_verifications(
        self, batch: List[Tuple[int, int, Any]]
    ) -> None:
        if (
            self.config.variant != VARIANT_MULTI
            or self._coverage is None
            or not self.config.protocol_enabled
        ):
            return
        digest = self.epoch_digest
        entries: List[Tuple[bytes, int, Counter, Tuple]] = []
        for round_no, sender, msg in batch:
            if not isinstance(msg, RoundMessage):
                continue
            if msg.sender != sender or msg.round_no != round_no - 1:
                continue
            if sender in self._fault_pattern.nodes:
                continue
            if not self._coverage.has_node(sender):
                continue
            for agg in msg.aggregates:
                age = self._round - 1 - agg.round_no
                if age < 0 or age > self.d_max:
                    continue
                if agg.epoch_digest != digest:
                    continue
                entries.append(
                    (
                        agg.body(),
                        agg.sig_value,
                        self._coverage.multiset(sender, age),
                        (digest, sender, age),
                    )
                )
        if entries:
            self.crypto.ms_warm_batch(entries)

    # -- receive helpers ---------------------------------------------------------

    def _process_evidence(self, sender: int, items: Tuple[Any, ...]) -> bool:
        ok = True
        to_add = []
        for item in items:
            if item in self.evidence:
                continue
            if not self._charge_quota(sender, "evidence"):
                continue
            if self.verifier.verify(item):
                to_add.append(item)
            else:
                ok = False  # a correct node never forwards invalid evidence
        if to_add:
            self._admit_evidence(to_add, verified=True)
        return ok

    def _process_records(
        self, sender: int, records: Tuple[HeartbeatRecord, ...]
    ) -> bool:
        ok = True
        for rec in records:
            if rec.round_no > self._round or (
                self.config.expiry_optimization
                and rec.round_no < self._round - self.window
            ):
                continue  # expired or from the future; ignore (S3.5)
            existing = self.store.get(rec.origin, rec.round_no)
            if existing is not None and existing.delta_count == rec.delta_count:
                self._mark_delivered(sender, rec.round_no, rec.origin)
                continue
            if not self._charge_quota(sender, "records"):
                continue
            if not self._verify_record(sender, rec):
                ok = False
                continue
            status, conflict = self.store.add(rec)
            self._mark_delivered(sender, rec.round_no, rec.origin)
            if status == "conflict" and conflict is not None:
                pom = EquivocationPoM(
                    accused=rec.origin,
                    body_a=conflict.body(),
                    sig_a=conflict.signature,
                    body_b=rec.body(),
                    sig_b=rec.signature,
                )
                flight = _flight.active
                if flight is not None:
                    flight.emit(
                        EV_POM_CREATED,
                        self.node_id,
                        {"accused": rec.origin, "pom": "equivocation"},
                        round_no=self._round,
                    )
                self._admit_evidence([pom], verified=True)
        return ok

    def _verify_record(self, sender: int, rec: HeartbeatRecord) -> bool:
        if self._spot_check_skip(sender, rec):
            return True
        if self.config.variant == VARIANT_MULTI:
            try:
                value = int.from_bytes(rec.signature, "big")
            except (TypeError, ValueError):
                return False
            ok = self.crypto.ms_verify_value(
                rec.body(),
                value,
                Counter({rec.origin: 1}),
                cache_key=("single", rec.origin),
            )
        else:
            ok = self.crypto.verify(rec.origin, rec.body(), rec.signature)
        flight = _flight.active
        if flight is not None:
            flight.emit(
                EV_HEARTBEAT_VERIFY,
                self.node_id,
                {"origin": rec.origin, "hb_round": rec.round_no, "ok": ok},
                round_no=self._round,
            )
        return ok

    def _spot_check_skip(self, sender: int, rec: HeartbeatRecord) -> bool:
        """Bus spot-checking (S3.5): only fmax+1 members verify a broadcast.

        Returns True when this node may skip the verification.  The checker
        subset is derived deterministically from the record identity so the
        adversary cannot aim at a round with no correct checker.
        """
        if not (self.config.bus_broadcast and self.config.signature_spot_checking):
            return False
        try:
            channel = self.topology.channel_between(sender, self.node_id)
        except KeyError:
            return False
        if channel[0] != "bus":
            return False
        bus = self.topology.buses[channel[1]]
        members = sorted(
            m for m in bus.members if self.topology.role(m) == "controller"
        )
        k = self.config.fmax + 1
        if len(members) <= k:
            return False
        seed = int.from_bytes(
            hash_bytes(encode((rec.origin, rec.round_no, bus.bus_id)))[:8], "big"
        )
        checkers = {members[(seed + i) % len(members)] for i in range(k)}
        return self.node_id not in checkers

    def _process_aggregates(
        self, sender: int, aggregates: Tuple[AggregateHeartbeat, ...]
    ) -> bool:
        if self.config.variant != VARIANT_MULTI:
            return len(aggregates) == 0
        assert self._coverage is not None
        # Two passes: collect every admissible aggregate, batch-verify them
        # in one combined group equation (verdicts identical to per-item
        # checks -- see crypto.multisig), then fold in the ones that pass.
        # Admissibility only reads state the loop never mutates (epoch
        # digest, coverage DP), so the split is behavior-preserving.
        admissible: List[Tuple[AggregateHeartbeat, int]] = []
        for agg in aggregates:
            age = self._round - 1 - agg.round_no
            if age < 0 or age > self.d_max:
                continue
            if agg.epoch_digest != self.epoch_digest:
                # Different fault epoch; fallback records cover this.  An
                # unexplained divergence -- our own evidence has been stable
                # well past the slack window, so no recent fault accounts
                # for it -- is a storm symptom: probe with individual
                # records so any equivocation surfaces as a PoM.
                if self.last_evidence_change < self._round - self.stabilization_slack:
                    self._start_probe()
                continue
            if not self._coverage.has_node(sender):
                continue
            if not self._charge_quota(sender, "aggregates"):
                continue
            admissible.append((agg, age))
        if not admissible:
            return True
        verdicts = self.crypto.ms_verify_batch(
            [
                (
                    agg.body(),
                    agg.sig_value,
                    self._coverage.multiset(sender, age),
                    (self.epoch_digest, sender, age),
                )
                for agg, age in admissible
            ]
        )
        for (agg, age), ok in zip(admissible, verdicts):
            if not ok:
                # The sender's propagation was disturbed (or it lies); do not
                # combine, and let Rule B attribute any resulting shortfall.
                # Probe with individual records meanwhile: if an equivocator
                # poisoned the aggregation chain, only circulating records
                # can expose the conflicting signatures.
                self._start_probe()
                continue
            self._mark_delivered_support(sender, agg.round_no, age)
            state = self._aggregates.get(agg.round_no)
            if state is None or state.broken:
                continue
            # Combine every verified aggregate: the DP multiset recurrence
            # adds every transmitting neighbor's aggregate, even when the
            # support set does not grow (multiplicities still change).
            support = self._coverage.support(sender, age)
            new_support = state.support | support
            state.value = self.crypto.ms_combine(state.value, agg.sig_value)
            if new_support != state.support:
                state.support = new_support
                state.grew = True
        return True

    def _process_packets(self, sender: int, packets: Tuple[DataPacket, ...]) -> None:
        for packet in packets:
            path = self.paths.by_id.get(packet.path_id)
            if path is None:
                continue
            position = path.position_of(self.node_id)
            if position is None or position == 0:
                continue
            key = (packet.path_id, packet.origin_round)
            self._packets_this_round.add(key)
            if key in self._seen_packets:
                continue
            self._seen_packets.add(key)
            if path.sink == self.node_id:
                # During a mode transition, packets signed under the old
                # mode are still in flight; dropping them silently (instead
                # of blaming the relay) preserves accuracy.  Detection of a
                # genuinely bad source resumes once the pipeline refills.
                settling = (
                    self._round - self.paths_stable_since < path.length + 4
                )
                if packet.origin != path.source:
                    if not settling:
                        self.issue_lfd(sender)
                    continue
                if not self.crypto.verify(
                    packet.origin, packet.body(), packet.signature,
                    domain="auditing",
                ):
                    # The payload or signature was tampered with in transit.
                    if not settling:
                        self.issue_lfd(sender)
                    continue
                self.on_packet(
                    path,
                    packet.origin_round,
                    packet.payload,
                    packet.origin,
                    packet.signature,
                )
            else:
                self._relay_queue.append(packet)

    # -- sending --------------------------------------------------------------------

    def queue_packet(self, path: Path, payload: bytes) -> None:
        """Originate a data packet on ``path`` (source must be this node)."""
        if path.source != self.node_id:
            raise ValueError("only the path source may originate packets")
        body = data_body(path.path_id, self._round, hash_bytes(payload))
        packet = DataPacket(
            path_id=path.path_id,
            origin_round=self._round,
            payload=payload,
            origin=self.node_id,
            signature=self.crypto.sign(body, domain="auditing"),
        )
        if path.length == 0:
            # Degenerate single-node path: deliver locally.
            self.on_packet(
                path, self._round, payload, self.node_id, packet.signature
            )
        else:
            self._local_outbox.append(packet)

    def _detect_omissions(self) -> None:
        """Rules A, B, C at the end of a round."""
        r = self._round
        if not self.config.protocol_enabled:
            return
        if r <= self._joined_round + 1:
            return
        live = self._live_neighbors()
        # Rule A.  Suspended for two rounds after an evidence change: a
        # just-re-admitted (blessed) neighbor needs one round before its
        # first message can arrive.  The suspension is bounded by the
        # total amount of valid evidence an adversary can mint.
        if r > self.last_evidence_change + 2:
            for j in live:
                if j not in self._got_message_from:
                    self.issue_lfd(j)
        # Rule B: coverage freshness, enforced once per origin round at the
        # expiry horizon (age == d_max), when propagation must have finished.
        # A shortfall does not become an LFD immediately: it is held as a
        # suspicion for ``rule_b_grace`` rounds (while record probing runs)
        # so an equivocation PoM can claim it first -- a correct neighbor
        # relaying a poisoned aggregation chain must not take the blame.
        if self._coverage is not None:
            stable_floor = self.last_evidence_change + self.stabilization_slack
            r_origin = r - 1 - self.d_max
            if r_origin >= max(self._joined_round + 1, stable_floor):
                for j in live:
                    if j not in self._got_message_from:
                        continue
                    if self._coverage_shortfall(j, r_origin):
                        self._suspect_coverage(
                            j, self._coverage.support(j, self.d_max)
                        )
        self._resolve_coverage_suspicions()
        # Rule C: data-path omissions.  Only paths whose sources produce
        # unconditionally every round are enforced: data paths (tasks
        # execute every period even with empty inputs; sensors always read)
        # and input-bundle paths (primaries always stream).  Auth and xrep
        # packets are produced only in *reaction* to other paths' traffic,
        # so their absence is attributable to the upstream omission that is
        # already detected on the originating path.
        from repro.core.paths import PATH_AUTH, PATH_XREP

        for path in self.paths.through(self.node_id):
            if path.kind in (PATH_AUTH, PATH_XREP):
                continue
            position = path.position_of(self.node_id)
            if position is None or position == 0:
                continue
            # Pipeline-fill grace after a mode change: the packet source may
            # itself adopt the new mode a couple of rounds after us (devices
            # learn modes from flooded evidence), so allow for both the
            # path latency and the adoption skew before expecting traffic.
            if r - self.paths_stable_since < position + 4:
                continue
            expected_key = (path.path_id, r - position)
            if expected_key[1] < self.paths_stable_since + 3:
                continue
            if expected_key not in self._packets_this_round and expected_key not in self._seen_packets:
                upstream = path.hops[position - 1]
                if upstream in self._fault_pattern.nodes:
                    continue
                link = (min(self.node_id, upstream), max(self.node_id, upstream))
                if link in self._fault_pattern.links:
                    continue
                self.issue_lfd(upstream)

    def _start_probe(self) -> None:
        """Fall back to individual-record flooding for a short window.

        MULTI's steady state floods no individual records, so conflicting
        per-destination heartbeats from an equivocator never meet at a
        correct node and no PoM can be minted.  Each storm symptom (failed
        aggregate verification, unexplained epoch divergence, a pending
        Rule B suspicion) extends the probe, keeping records circulating
        until the symptom clears or the suspicion resolves."""
        self._probe_until = max(self._probe_until, self._round + 2)

    def _pom_explains(self, expected: frozenset) -> bool:
        """True when a held commission PoM condemns a node inside the
        expected support set: the proven-faulty origin's equivocating
        heartbeats poisoned the relay chain, so the coverage shortfall is
        charged to it rather than the relaying neighbor."""
        return bool(self.evidence.accused_nodes() & expected)

    def _suspect_coverage(self, j: int, expected: Set[int]) -> None:
        if self._pom_explains(expected):
            return
        if j not in self._pending_rule_b:
            self._pending_rule_b[j] = (self._round, frozenset(expected))

    def _resolve_coverage_suspicions(self) -> None:
        if not self._pending_rule_b:
            return
        self._start_probe()
        pattern = self._fault_pattern
        for j, (raised, expected) in sorted(self._pending_rule_b.items()):
            link = (min(self.node_id, j), max(self.node_id, j))
            if (
                self._pom_explains(expected)
                or j in pattern.nodes
                or link in pattern.links
            ):
                # Explained by a PoM, or the link/node is already declared
                # faulty through other evidence: no LFD of ours is needed.
                del self._pending_rule_b[j]
                continue
            if self._round >= raised + self.rule_b_grace:
                del self._pending_rule_b[j]
                self.issue_lfd(j)

    def end_round(self) -> RoundOutput:
        """Finish the round; returns the transmission plan.

        The caller (the node protocol) is responsible for using bus
        broadcast where the config enables it.
        """
        self._detect_omissions()
        r = self._round
        if not self.config.protocol_enabled:
            return self._end_round_unprotected(r)
        # Fresh evidence => heartbeat delta binding (sigma_i(r, |dE|)).
        delta = len(self._new_evidence_outbox)
        body = heartbeat_body(r, delta)
        if self.config.variant == VARIANT_MULTI:
            sig_value = self.crypto.ms_sign(body)
            own_sig = sig_value.to_bytes(self.crypto.directory.group.element_size, "big")
        else:
            own_sig = self.crypto.sign(body)
        own_record = HeartbeatRecord(
            origin=self.node_id, round_no=r, delta_count=delta, signature=own_sig
        )
        flight = _flight.active
        if flight is not None:
            flight.emit(
                EV_HEARTBEAT_SEND, self.node_id, {"delta": delta}, round_no=r
            )
        self.store.add(own_record)
        # Evidence halves: sigma_i(r, e) for each new item (S3.6's split).
        if delta and self.config.variant == VARIANT_MULTI:
            for item in self._new_evidence_outbox:
                self.crypto.ms_sign(evidence_half_body(r, evidence_digest(item)))

        # MULTI: seed own aggregate for this round.
        if self.config.variant == VARIANT_MULTI:
            self._aggregates[r] = _AggregateState(
                value=int.from_bytes(own_sig, "big") if delta == 0 else 0,
                support={self.node_id} if delta == 0 else set(),
                grew=True,
                broken=delta != 0,  # nonzero-delta bodies cannot join the aggregate
            )

        records, aggregates = self._compose_heartbeats(r, own_record)
        evidence_out = tuple(self._new_evidence_outbox)
        self._new_evidence_outbox = []

        packets = list(self._relay_queue) + list(self._local_outbox)
        self._relay_queue = []
        self._local_outbox = []

        # Expiry.
        self.store.expire(r)
        for stale in [k for k in self._aggregates if k < r - self.window]:
            del self._aggregates[stale]
        for per_neighbor in self._delivered.values():
            for stale in [k for k in per_neighbor if k < r - self.window]:
                del per_neighbor[stale]
        for stale in [k for k in self._seen_packets if k[1] < r - self.window]:
            self._seen_packets.discard(stale)

        packets_by_next_hop: Dict[int, List[DataPacket]] = defaultdict(list)
        for p in packets:
            path = self.paths.by_id.get(p.path_id)
            if path is None:
                continue
            next_hop = path.next_hop(self.node_id)
            if next_hop is not None:
                packets_by_next_hop[next_hop].append(p)
        return RoundOutput(
            round_no=r,
            records=records,
            aggregates=aggregates,
            evidence=evidence_out,
            packets_by_next_hop=dict(packets_by_next_hop),
            controller_neighbors=self._live_neighbors(),
        )

    def _end_round_unprotected(self, r: int) -> RoundOutput:
        """Payload-only transmission plan for the unprotected baseline."""
        packets = list(self._relay_queue) + list(self._local_outbox)
        self._relay_queue = []
        self._local_outbox = []
        for stale in [k for k in self._seen_packets if k[1] < r - self.window]:
            self._seen_packets.discard(stale)
        packets_by_next_hop: Dict[int, List[DataPacket]] = defaultdict(list)
        for p in packets:
            path = self.paths.by_id.get(p.path_id)
            if path is None:
                continue
            next_hop = path.next_hop(self.node_id)
            if next_hop is not None:
                packets_by_next_hop[next_hop].append(p)
        return RoundOutput(
            round_no=r,
            records=(),
            aggregates=(),
            evidence=(),
            packets_by_next_hop=dict(packets_by_next_hop),
            controller_neighbors=self._live_neighbors(),
        )

    def _compose_heartbeats(
        self, r: int, own_record: HeartbeatRecord
    ) -> Tuple[Tuple[HeartbeatRecord, ...], Tuple[AggregateHeartbeat, ...]]:
        if self.config.variant == VARIANT_BASIC:
            return tuple(self.store.drain_new()), ()
        # MULTI: aggregates for stable rounds, individual fallback otherwise.
        assert self._coverage is not None
        stable_floor = self.last_evidence_change + 1
        aggregates: List[AggregateHeartbeat] = []
        records: List[HeartbeatRecord] = []
        unstable = (
            self.last_evidence_change >= r - self.stabilization_slack
            or r <= self._probe_until
        )
        new_records = self.store.drain_new()
        for r_origin, state in sorted(self._aggregates.items()):
            if state.broken:
                continue
            if r_origin < stable_floor:
                continue
            if not state.grew:
                continue
            state.grew = False
            aggregates.append(
                AggregateHeartbeat(
                    round_no=r_origin,
                    sig_value=state.value,
                    epoch_digest=self.epoch_digest,
                )
            )
        if unstable or own_record.delta_count != 0:
            # Fall back to BASIC-style individual flooding while evidence is
            # in flux (the bounded worst case of S3.6).
            records = list(new_records)
            if own_record not in records:
                records.append(own_record)
        # In stable state individual records are not retransmitted: the
        # aggregates carry the coverage, so MULTI's steady-state bandwidth
        # and storage stay small (Fig. 5a/b).
        return tuple(records), tuple(aggregates)

    # -- metrics ---------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes of retained protocol state (Fig. 5b metric)."""
        size = self.store.serialized_size()
        size += self.evidence.serialized_size()
        if self.config.variant == VARIANT_MULTI:
            element = self.crypto.directory.group.element_size
            size += len(self._aggregates) * (element + 16)
        return size

from repro.obs import registry as _telemetry

_telemetry.register("coverage_cache", coverage_cache_stats, reset_coverage_cache_stats)
