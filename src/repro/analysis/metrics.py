"""Per-round cost accounting over a running :class:`ReboundSystem`.

Collects exactly the quantities the paper's evaluation reports: per-link
bandwidth (Fig. 5a, 6, 8a), per-node storage (Fig. 5b, 8c), and per-node
cryptographic operation counts split by layer (Fig. 5c, 8b).

Also aggregates the *fast-path* instrumentation: hit/miss/time counters
from the CRT signer, the process-wide verification cache, batched multisig
checks, the codec encode memo, and the coverage-calculator cache (see
docs/PROTOCOL.md, "Performance architecture").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.core.identity import DOMAIN_AUDITING, DOMAIN_FORWARDING
from repro.crypto.cost_model import CryptoCostModel, CryptoCounters


@dataclass
class CostSnapshot:
    """Costs accumulated during one round, averaged per node / per link.

    Attributes:
        round_no: the last round this snapshot covers.
        bytes_per_link: mean bytes transmitted per channel per round.
        storage_per_node: mean retained protocol state in bytes.
        forwarding_ops: mean forwarding-layer crypto ops per node per round.
        auditing_ops: mean auditing-layer crypto ops per node per round.
        rounds_covered: how many rounds elapsed since the previous sample;
            all per-round means are normalized by it, so sampling every
            k-th round still yields true per-round figures.
    """

    round_no: int
    bytes_per_link: float
    storage_per_node: float
    forwarding_ops: CryptoCounters
    auditing_ops: CryptoCounters
    rounds_covered: int = 1

    def ops_per_node(self) -> float:
        total = CryptoCounters()
        total.merge(self.forwarding_ops)
        total.merge(self.auditing_ops)
        return (
            total.total_signatures()
            + total.total_verifications()
        )

    def cpu_seconds_per_node(self, model: CryptoCostModel) -> float:
        return model.cpu_seconds(self.forwarding_ops) + model.cpu_seconds(
            self.auditing_ops
        )


class MetricsCollector:
    """Samples a system each round, producing a time series of snapshots."""

    def __init__(self, system):
        self.system = system
        self.snapshots: List[CostSnapshot] = []
        self._prev_fwd: Dict[int, CryptoCounters] = {}
        self._prev_aud: Dict[int, CryptoCounters] = {}
        self._last_round = system.round_no
        self._prime()

    def _prime(self) -> None:
        for node_id, node in self.system.nodes.items():
            self._prev_fwd[node_id] = node.crypto.counters[DOMAIN_FORWARDING].copy()
            self._prev_aud[node_id] = node.crypto.counters[DOMAIN_AUDITING].copy()

    def sample(self) -> CostSnapshot:
        """Record the costs of every round since the previous sample.

        Counter deltas accumulate across skipped rounds, so when a caller
        samples every k-th round each snapshot covers k rounds and all
        per-round means are divided by the covered span -- a sparse series
        and a dense one report the same per-round costs.
        """
        system = self.system
        r = system.round_no
        span = max(1, r - self._last_round)
        covered = range(self._last_round + 1, r + 1) if r > self._last_round else [r]
        self._last_round = r
        n = max(1, len(system.nodes))
        fwd_delta = CryptoCounters()
        aud_delta = CryptoCounters()
        for node_id, node in system.nodes.items():
            current_fwd = node.crypto.counters[DOMAIN_FORWARDING]
            current_aud = node.crypto.counters[DOMAIN_AUDITING]
            fwd_delta.merge(current_fwd.diff(self._prev_fwd[node_id]))
            aud_delta.merge(current_aud.diff(self._prev_aud[node_id]))
            self._prev_fwd[node_id] = current_fwd.copy()
            self._prev_aud[node_id] = current_aud.copy()
        mean_fwd = _scale(fwd_delta, 1.0 / (n * span))
        mean_aud = _scale(aud_delta, 1.0 / (n * span))
        snapshot = CostSnapshot(
            round_no=r,
            bytes_per_link=sum(
                system.mean_link_bytes_in_round(cr) for cr in covered
            ) / span,
            storage_per_node=system.mean_storage_bytes(),
            forwarding_ops=mean_fwd,
            auditing_ops=mean_aud,
            rounds_covered=span,
        )
        self.snapshots.append(snapshot)
        return snapshot

    def run_and_sample(self, rounds: int) -> List[CostSnapshot]:
        for _ in range(rounds):
            self.system.run_round()
            self.sample()
        return self.snapshots

    def steady_state(self, tail: int = 5) -> CostSnapshot:
        """Average of the last ``tail`` snapshots (paper measures the final
        round, i.e. steady state, for Fig. 5)."""
        if not self.snapshots:
            raise ValueError("no snapshots collected")
        window = self.snapshots[-tail:]
        k = len(window)
        fwd = CryptoCounters()
        aud = CryptoCounters()
        for snap in window:
            fwd.merge(snap.forwarding_ops)
            aud.merge(snap.auditing_ops)
        return CostSnapshot(
            round_no=window[-1].round_no,
            bytes_per_link=sum(s.bytes_per_link for s in window) / k,
            storage_per_node=sum(s.storage_per_node for s in window) / k,
            forwarding_ops=_scale(fwd, 1.0 / k),
            auditing_ops=_scale(aud, 1.0 / k),
        )


def transcript_entry(system) -> tuple:
    """One round's observable state: per-node evidence digest + mode.

    The shared fingerprint for transcript-identity checks (fast-path bench,
    chaos no-op verification): two runs whose entries match round-for-round
    made byte-identical protocol decisions.
    """
    digests = []
    for node_id in sorted(system.nodes):
        node = system.nodes[node_id]
        schedule = node.current_schedule
        mode = (
            (tuple(sorted(schedule.failed_nodes)), tuple(sorted(schedule.failed_links)))
            if schedule
            else None
        )
        digests.append((node_id, node.forwarding.evidence.digest().hex(), mode))
    return tuple(digests)


def fastpath_stats() -> Dict[str, Dict[str, Any]]:
    """One dict with every fast-path counter, keyed by component.

    Components: ``rsa_sign`` (CRT vs plain counts, wall-clock),
    ``verify_cache`` (process-wide verification outcomes),
    ``multisig_batch`` (batched aggregate checks), ``codec_memo``
    (canonical-encoding memo), ``coverage_cache`` (coverage DP reuse),
    ``ilp_solver`` (branch-and-bound solves, explored nodes, warm-start
    outcomes, tripped budgets), ``place_memo`` (placement-subproblem memo
    in the schedule builder), ``edf_memo`` (schedulability-test memo),
    ``modegen_lookup`` (mode-tree ``schedule_for`` memo).

    Each component module registers itself with
    :mod:`repro.obs.registry` at import time; this is a thin view over
    that registry, kept for callers that predate it.
    """
    from repro.obs import registry

    registry.ensure_default_components()
    return registry.stats_snapshot()


def reset_fastpath_stats() -> None:
    """Zero every fast-path counter (caches keep their contents)."""
    from repro.obs import registry

    registry.ensure_default_components()
    registry.reset_all()


def _scale(counters: CryptoCounters, factor: float) -> CryptoCounters:
    """Per-node/per-round means may be fractional; CryptoCounters holds
    plain numbers, so scaled copies simply carry floats."""
    scaled = CryptoCounters()
    for key, value in counters.as_dict().items():
        setattr(scaled, key, value * factor)
    return scaled
