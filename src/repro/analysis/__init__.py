"""Measurement utilities: cost accounting and recovery timing."""

from repro.analysis.metrics import CostSnapshot, MetricsCollector
from repro.analysis.recovery import RecoveryTimeline, measure_recovery

__all__ = [
    "CostSnapshot",
    "MetricsCollector",
    "RecoveryTimeline",
    "measure_recovery",
]
