"""Recovery-time measurement (the BTR property, paper S2.4/S2.7).

Runs a system through a fault and records when each milestone is reached,
in rounds relative to the fault:

* **detection** -- some correct node's failure pattern reflects the fault
  (Req. 1/2);
* **stabilization** -- every correct controller agrees on the mode
  (Req. 4, within one partition);
* **recovery** -- every correct controller has switched to a mode whose
  placements exclude the faulty nodes (the paper's goal: "all active data
  flows are executed on correct nodes").

The sum detection + stabilization + switch must stay below Rmax; the paper
measures ~5 rounds end-to-end on the testbed (S5.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class RecoveryTimeline:
    """Milestones of one recovery, in absolute rounds.

    ``None`` milestones were not reached within the observation window.
    """

    fault_round: int
    detection_round: Optional[int] = None
    stabilization_round: Optional[int] = None
    recovery_round: Optional[int] = None

    @property
    def detection_rounds(self) -> Optional[int]:
        if self.detection_round is None:
            return None
        return self.detection_round - self.fault_round

    @property
    def recovery_rounds(self) -> Optional[int]:
        if self.recovery_round is None:
            return None
        return self.recovery_round - self.fault_round

    @property
    def recovered(self) -> bool:
        return self.recovery_round is not None

    def recovery_time_us(self, round_length_us: int) -> Optional[int]:
        if self.recovery_rounds is None:
            return None
        return self.recovery_rounds * round_length_us


def measure_recovery(
    system,
    inject: Callable[[], None],
    max_rounds: int = 30,
) -> RecoveryTimeline:
    """Inject a fault via ``inject()`` and track recovery milestones.

    ``inject`` must call ``system.inject_now`` / ``system.cut_link_now``;
    the system should already be warmed up (steady state).
    """
    inject()
    timeline = RecoveryTimeline(fault_round=system.round_no)
    for _ in range(max_rounds):
        system.run_round()
        r = system.round_no
        if timeline.detection_round is None and system.detected():
            timeline.detection_round = r
        converged = system.converged()
        agreed = system.schedules_agree()
        if timeline.stabilization_round is None and converged and agreed:
            timeline.stabilization_round = r
        if timeline.recovery_round is None and converged:
            timeline.recovery_round = r
        if (
            timeline.detection_round is not None
            and timeline.stabilization_round is not None
            and timeline.recovery_round is not None
        ):
            break
    return timeline
