"""Command-line interface: regenerate any evaluation figure from a shell.

Usage::

    python -m repro fig5 [--sizes 4,10,20] [--rounds 25]
    python -m repro fig6 [--n 45] [--fault-round 50]
    python -m repro fig7 [--sizes 15,30] [--fmax 1,2] [--workers 4]
    python -m repro fig8 [--rounds 60]
    python -m repro fig9
    python -m repro fig10 [--duration 3.0]
    python -m repro fig11
    python -m repro table1
    python -m repro report --out results.md [--scale full]
    python -m repro bench-fastpath [--rounds 30] [--out BENCH_fastpath.json]
    python -m repro bench-modegen [--workers 2] [--quick] [--out BENCH_modegen.json]
    python -m repro bench-scale [--smoke] [--workers 4] [--out BENCH_scale.json]
    python -m repro chaos [--preset smoke|full|storm|restart|churn] [--seeds 0,1] [--workers 2] [--out BENCH_chaos.json]
    python -m repro bench-durability [--rounds 24] [--out BENCH_durability.json]
    python -m repro trace [--preset smoke|equivocation-gap] [--rounds 30]
    python -m repro trace --validate TRACE_smoke.jsonl
    python -m repro top [--preset smoke] [--rounds 30] [--once]
    python -m repro bench-diff --baseline old.json [--current BENCH_scale.json] [--strict]

Each command prints the regenerated rows and the paper's qualitative shape
checks.  The same drivers back the pytest benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import (
    fig5_overhead,
    fig6_modechange,
    fig7_scheduling,
    fig8_casestudy,
    fig9_pbft,
    fig10_xc90,
    fig11_testbed,
    timescales,
)
from repro.experiments.common import print_table


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def _print_checks(checks) -> int:
    print("\nshape checks:")
    failed = 0
    for name, ok in checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        failed += 0 if ok else 1
    return failed


def cmd_table1(_args) -> int:
    print_table(timescales.TABLE_1, "Table 1: timescales for recovery")
    return 0


def cmd_fig5(args) -> int:
    rows = fig5_overhead.run(sizes=tuple(args.sizes), rounds=args.rounds)
    print_table(rows, "Figure 5: protocol overhead vs system size")
    return _print_checks(fig5_overhead.check_shape(rows))


def cmd_fig6(args) -> int:
    rows = fig6_modechange.run(
        n=args.n, fault_round=args.fault_round,
        total_rounds=args.fault_round + 30,
    )
    window = [
        r for r in rows
        if args.fault_round - 4 <= r["round"] <= args.fault_round + 12
    ]
    print_table(window, "Figure 6: rounds around the fault")
    summary = fig6_modechange.summarize(rows, fault_round=args.fault_round)
    print(f"\nsummary: {summary}")
    return 0 if summary["converged_round"] is not None else 1


def cmd_fig7(args) -> int:
    rows = fig7_scheduling.run(
        sizes=tuple(args.sizes),
        fmax_values=tuple(args.fmax),
        workers=args.workers,
    )
    print_table(rows, "Figure 7: scheduling trees")
    return _print_checks(fig7_scheduling.check_shape(rows))


def cmd_fig8(args) -> int:
    rows = fig8_casestudy.run(rounds=args.rounds)
    print_table(rows, "Figure 8: case-study runtime costs")
    return _print_checks(fig8_casestudy.check_shape(rows))


def cmd_fig9(_args) -> int:
    rows = fig9_pbft.run()
    print_table(rows, "Figure 9: supported workload vs PBFT")
    return _print_checks(fig9_pbft.check_shape(rows))


def cmd_fig10(args) -> int:
    results = fig10_xc90.run_all(duration_s=args.duration)
    for name, r in results.items():
        print(
            f"{name}: peak {r['peak_mph']:.2f} mph, "
            f"final {r['final_mph']:.2f} mph, "
            f"excursion {r['excursion_mph']:.3f} mph, "
            f"recovery {r['recovery_ms']} ms"
        )
    return _print_checks(fig10_xc90.check_shape(results))


def cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(scale=args.scale)
    with open(args.out, "w") as fh:
        fh.write(text)
    print(f"wrote {args.out} ({len(text)} bytes)")
    failed = text.count("FAILED")
    print(f"{failed} shape check(s) failed" if failed else "all shape checks passed")
    return 1 if failed else 0


def cmd_bench_fastpath(args) -> int:
    from repro.experiments import bench_fastpath

    result = bench_fastpath.main(output_path=args.out, rounds=args.rounds)
    ok = result["transcripts_identical"] and result["speedup"] >= 1.0
    return 0 if ok else 1


def cmd_bench_modegen(args) -> int:
    from repro.experiments import bench_modegen

    result = bench_modegen.main(
        output_path=args.out, workers=args.workers, quick=args.quick
    )
    refresh = result["time_to_new_tree"]
    ok = (
        result["all_parallel_identical"]
        and result["all_flow_sets_match_seed"]
        and refresh["all_identical_to_scratch"]
        and refresh["all_parallel_identical"]
    )
    if not args.quick:
        # Tiny smoke cells are dominated by pool startup; the speedup gate
        # only applies to the full sweep.
        ok = ok and result["speedup_end_to_end"] >= 1.0
    return 0 if ok else 1


def cmd_bench_scale(args) -> int:
    from repro.experiments import bench_scale

    result = bench_scale.main(
        output_path=args.out,
        workers=args.workers,
        smoke=args.smoke,
        rounds=args.rounds,
        sizes=args.sizes,
        engines=args.engines.split(",") if args.engines else None,
    )
    return 0 if result["identity"]["all_identical"] else 1


def cmd_bench_durability(args) -> int:
    from repro.experiments import bench_durability

    result = bench_durability.main(output_path=args.out, rounds=args.rounds)
    ok = result["transcripts_identical"] and result["restore"]["ok"]
    return 0 if ok else 1


def cmd_chaos(args) -> int:
    from repro.chaos import run_campaign

    on_result = None
    if args.live:
        from repro.obs.console import CampaignLiveSink

        on_result = CampaignLiveSink()
    report = run_campaign(
        preset=args.preset,
        seeds=args.seeds,
        max_cells=args.max_cells,
        shrink=not args.no_shrink,
        output_path=args.out,
        progress=print if args.verbose else None,
        workers=args.workers,
        on_result=on_result,
    )
    matrix = report["matrix"]
    print(
        f"chaos[{args.preset}]: {report['cell_count']} cells -- "
        f"{matrix.get('pass', 0)} pass, {matrix.get('fail', 0)} fail, "
        f"{matrix.get('tagged', 0)} tagged, {matrix.get('crash', 0)} crash "
        f"({report['elapsed_s']:.1f}s)"
    )
    print(f"violation census: {report['violation_census'] or 'none'}")
    print(f"noop transcript identical: {report['noop_transcript_identical']}")
    for shrunk in report["failures"]:
        print(f"minimal repro: {json.dumps(shrunk, sort_keys=True)}")
    if args.out:
        print(f"wrote {args.out}")
    ok = (
        matrix.get("fail", 0) == 0
        and matrix.get("crash", 0) == 0
        and report["noop_transcript_identical"]
    )
    return 0 if ok else 1


def cmd_trace(args) -> int:
    from repro.experiments import trace_run

    if args.validate is not None:
        from repro.obs.events import validate_jsonl

        try:
            count = validate_jsonl(args.validate)
        except (OSError, ValueError) as exc:
            print(f"INVALID {args.validate}: {exc}")
            return 1
        print(f"ok {args.validate}: {count} schema-valid event(s)")
        return 0
    return trace_run.main(
        preset=args.preset,
        rounds=args.rounds,
        seed=args.seed,
        jsonl_path=args.jsonl,
        chrome_path=args.chrome,
    )


def cmd_top(args) -> int:
    from repro.obs.console import run_top

    return run_top(
        preset=args.preset,
        rounds=args.rounds,
        seed=args.seed,
        once=args.once,
        interval=args.interval,
    )


def cmd_bench_diff(args) -> int:
    from repro.experiments import bench_diff

    return bench_diff.main(
        current_path=args.current,
        baseline_path=args.baseline,
        threshold=args.threshold,
        strict=args.strict,
    )


def cmd_fig11(_args) -> int:
    results = fig11_testbed.run_all()
    for name, r in results.items():
        print(f"{name}: active={r['active_flows']} dropped={r['dropped_flows']}")
    return _print_checks(fig11_testbed.check_shape(results))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the REBOUND paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="recovery-timescale survey").set_defaults(
        func=cmd_table1
    )

    p5 = sub.add_parser("fig5", help="protocol overhead vs n")
    p5.add_argument("--sizes", type=_int_list, default=[4, 10, 20, 35, 50])
    p5.add_argument("--rounds", type=int, default=25)
    p5.set_defaults(func=cmd_fig5)

    p6 = sub.add_parser("fig6", help="mode-change dynamics")
    p6.add_argument("--n", type=int, default=45)
    p6.add_argument("--fault-round", type=int, default=50)
    p6.set_defaults(func=cmd_fig6)

    p7 = sub.add_parser("fig7", help="scheduling trees")
    p7.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan mode-tree layers across N worker processes "
        "(identical output; serial by default)",
    )
    p7.add_argument("--sizes", type=_int_list, default=[15, 30, 60])
    p7.add_argument("--fmax", type=_int_list, default=[1, 2])
    p7.set_defaults(func=cmd_fig7)

    p8 = sub.add_parser("fig8", help="case-study runtime costs")
    p8.add_argument("--rounds", type=int, default=60)
    p8.set_defaults(func=cmd_fig8)

    sub.add_parser("fig9", help="comparison to PBFT").set_defaults(func=cmd_fig9)

    p10 = sub.add_parser("fig10", help="XC90 cruise-control attack")
    p10.add_argument("--duration", type=float, default=3.0)
    p10.set_defaults(func=cmd_fig10)

    sub.add_parser("fig11", help="testbed attack scenarios").set_defaults(
        func=cmd_fig11
    )

    bench = sub.add_parser(
        "bench-fastpath",
        help="crypto/wire fast-path speedup benchmark (prints a BENCH JSON line)",
    )
    bench.add_argument("--rounds", type=int, default=30)
    bench.add_argument("--out", default="BENCH_fastpath.json")
    bench.set_defaults(func=cmd_bench_fastpath)

    benchm = sub.add_parser(
        "bench-modegen",
        help="mode-tree generation speedup benchmark: seed serial path vs "
        "warm-started/memoized/parallel engine (prints a BENCH JSON line)",
    )
    benchm.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the parallel runs",
    )
    benchm.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized smoke sweep (skips the expensive ILP cells)",
    )
    benchm.add_argument("--out", default="BENCH_modegen.json")
    benchm.set_defaults(func=cmd_bench_modegen)

    benchs = sub.add_parser(
        "bench-scale",
        help="scale-out round-engine benchmark: Erdos-Renyi n=200/500/1000 "
        "sweeps, serial vs sharded vs legacy path, with byte-identity "
        "checks at small n (writes BENCH_scale.json)",
    )
    benchs.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sharded runs "
        "(default REBOUND_SCALE_WORKERS or 4)",
    )
    benchs.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep: n=200 only, <60s",
    )
    benchs.add_argument("--rounds", type=int, default=None,
                        help="override rounds per sweep")
    benchs.add_argument(
        "--sizes", type=_int_list, default=None,
        help="comma-separated sweep sizes (default 200,500,1000; "
        "recorded in the output's filters block)",
    )
    benchs.add_argument(
        "--engines", default=None,
        help="comma-separated engine subset of legacy,serial,sharded "
        "(default all; recorded in the output's filters block)",
    )
    benchs.add_argument("--out", default="BENCH_scale.json")
    benchs.set_defaults(func=cmd_bench_scale)

    benchd = sub.add_parser(
        "bench-durability",
        help="durability-layer benchmark: persistence overhead (chained "
        "log + snapshots vs off), transcript identity, and verified "
        "restore timing (writes BENCH_durability.json)",
    )
    benchd.add_argument("--rounds", type=int, default=24)
    benchd.add_argument("--out", default="BENCH_durability.json")
    benchd.set_defaults(func=cmd_bench_durability)

    chaos = sub.add_parser(
        "chaos",
        help="chaos campaign: adversaries x impairment plans x topologies "
        "under the BTR invariant monitor (writes BENCH_chaos.json)",
    )
    chaos.add_argument(
        "--preset", choices=["smoke", "full", "storm", "restart", "churn"],
        default="smoke",
        help="cell matrix (smoke is CI-sized, <60s; storm stresses the "
        "evidence layer: equivocation + floods with memory-bound checks; "
        "restart runs durable crash-restart-rejoin arcs plus log-tamper "
        "detection cells)",
    )
    chaos.add_argument(
        "--seeds", type=_int_list, default=None,
        help="restrict to these topology seeds (e.g. 0,1)",
    )
    chaos.add_argument("--max-cells", type=int, default=None)
    chaos.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimizing failing cells",
    )
    chaos.add_argument("--verbose", action="store_true",
                       help="print one line per cell")
    chaos.add_argument(
        "--workers", type=int, default=None,
        help="run each cell on the sharded round engine with N worker "
        "processes (>= 2; default REBOUND_SCALE_WORKERS or serial); "
        "transcripts and judgments are engine-independent",
    )
    chaos.add_argument(
        "--live", action="store_true",
        help="print a live running tally line as each cell finishes",
    )
    chaos.add_argument("--out", default="BENCH_chaos.json")
    chaos.set_defaults(func=cmd_chaos)

    top = sub.add_parser(
        "top",
        help="live campaign console: run a trace preset with the full "
        "telemetry plane attached and render per-round progress, node "
        "health, and the recovery decomposition",
    )
    top.add_argument(
        "--preset", choices=["smoke", "equivocation-gap"], default="smoke",
    )
    top.add_argument("--rounds", type=int, default=None,
                     help="override the preset's round count")
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--once", action="store_true",
        help="render a single final frame (headless/CI mode)",
    )
    top.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to sleep between frames on a TTY",
    )
    top.set_defaults(func=cmd_top)

    bdiff = sub.add_parser(
        "bench-diff",
        help="compare a BENCH_*.json against a committed baseline: flags "
        "wall-clock regressions beyond a ratio threshold, skips itself "
        "when the env blocks are not comparable (different cpu_count)",
    )
    bdiff.add_argument("--current", default="BENCH_scale.json",
                       help="candidate BENCH json (default BENCH_scale.json)")
    bdiff.add_argument("--baseline", required=True,
                       help="baseline BENCH json to compare against")
    bdiff.add_argument("--threshold", type=float, default=1.5,
                       help="flag ratios beyond this factor (default 1.5)")
    bdiff.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on regressions (default warn-only)",
    )
    bdiff.set_defaults(func=cmd_bench_diff)

    trace = sub.add_parser(
        "trace",
        help="flight-recorder run: record a seeded fault, reconstruct the "
        "recovery timeline, export JSONL + Chrome-trace files",
    )
    trace.add_argument(
        "--preset", choices=["smoke", "equivocation-gap"], default="smoke",
        help="smoke = seeded crash on a 4x5 grid; equivocation-gap = the "
        "(closed) equivocation storm, gated: exits non-zero if the "
        "decomposition or monitor cross-check regresses",
    )
    trace.add_argument("--rounds", type=int, default=None,
                       help="override the preset's round count")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--jsonl", default=None,
                       help="JSONL event log path (default TRACE_<preset>.jsonl)")
    trace.add_argument(
        "--chrome", default=None,
        help="Chrome-trace path (default TRACE_<preset>.chrome.json)",
    )
    trace.add_argument(
        "--validate", default=None, metavar="PATH",
        help="validate an existing JSONL trace against the event schema "
        "and exit (no run)",
    )
    trace.set_defaults(func=cmd_trace)

    rep = sub.add_parser("report", help="run everything, write a markdown report")
    rep.add_argument("--out", default="results.md")
    rep.add_argument("--scale", choices=["small", "full"], default="small")
    rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
