"""Chaos campaign runner: adversaries x impairment plans x topologies x seeds.

Each campaign *cell* builds a fresh deployment, attaches a
:class:`~repro.chaos.impairments.ChaosRoundNetwork` carrying one
:class:`ImpairmentPlan` and a :class:`~repro.chaos.monitor.BTRMonitor` in
record mode, optionally injects one adversary behaviour mid-run, and runs a
fixed number of rounds.  The expectations depend on the cell's budget
classification:

* **in-budget** cells must finish with *zero* invariant violations;
* **out-of-budget** cells must raise ``ReboundSystem.budget_exceeded``,
  never crash, and never condemn a correct node through verifiable
  evidence (the monitor's hard-accuracy check).

Failing cells are shrunk to a minimal repro: impairment components are
removed one at a time, the adversary is dropped, and the round count is
halved, keeping every simplification that still fails.  Results are
written to ``BENCH_chaos.json`` (pass/fail matrix, rounds-to-recovery
distribution, violation census) -- the ``smoke`` preset is CI-sized.

The ``storm`` preset concentrates on the evidence layer: equivocation
(plain and epoch-split) and evidence floods, with the monitor additionally
asserting the admission-quota memory bounds every round.  The equivocation
accuracy gap these cells used to trip is closed (see
``tests/test_regression_equivocation.py``), so storm cells are judged like
any other -- zero violations in budget.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.corruption import CORRUPTIONS
from repro.chaos.impairments import (
    IN_BUDGET,
    ChaosRoundNetwork,
    ImpairmentPlan,
    LinkFlap,
    Partition,
)
from repro.chaos.monitor import BTRMonitor
from repro.chaos.restart import CrashRestartBehavior, LogTamperBehavior
from repro.core.config import ReboundConfig
from repro.core.runtime import ReboundSystem
from repro.faults import adversary as adv
from repro.net.network import RoundNetwork
from repro.net.topology import (
    Topology,
    chemical_plant_topology,
    erdos_renyi_topology,
    grid_topology,
)
from repro.obs.recorder import FlightRecorder
from repro.sched.task import chemical_plant_workload
from repro.sched.workload import WorkloadGenerator

WARMUP_ROUNDS = 10
RUN_ROUNDS = 26
IMPAIR_START = 12  # impairments and adversaries activate after warm-up
FMAX = 2

# -- topologies ----------------------------------------------------------------


def _er(n: int):
    def build(seed: int):
        topology = erdos_renyi_topology(n, seed=seed)
        workload = WorkloadGenerator(
            seed=seed, chain_length_range=(1, 2)
        ).workload(target_utilization=1.5)
        return topology, workload
    return build


def _grid(rows: int, cols: int):
    def build(seed: int):
        topology = grid_topology(rows, cols)
        workload = WorkloadGenerator(
            seed=seed, chain_length_range=(1, 2)
        ).workload(target_utilization=1.5)
        return topology, workload
    return build


def _plant(seed: int):
    return chemical_plant_topology(), chemical_plant_workload()


TOPOLOGIES: Dict[str, Callable[[int], Tuple[Topology, Any]]] = {
    "er6": _er(6),
    "er8": _er(8),
    "grid4x5": _grid(4, 5),
    "plant": _plant,
}

# -- adversaries ---------------------------------------------------------------


@dataclass(frozen=True)
class BehaviorSpec:
    name: str
    factory: Optional[Callable[[], Any]]
    fault_units: int
    observable: bool
    #: the cell runs with persistence on (a tempdir durable store per run).
    durability: bool = False
    #: the behavior corrupts the durable log; passing requires the restore
    #: path to report at least one tamper detection.
    expect_tamper: bool = False
    #: scripted churn arc: ``seed -> [(round_no, fn(system, victim)), ...]``.
    #: Arc cells run with stabilization + online tree refresh enabled on the
    #: serial engine (the arcs poke node internals mid-run).
    arc: Optional[Callable[[int], List[Tuple[int, Callable[..., Any]]]]] = None
    #: every transient corruption the arc injects must be detected by the
    #: auditor and resolved within the Req-S convergence bound.
    expect_converge: bool = False
    #: the arc drifts past fmax; passing requires at least one online
    #: subtree refresh and every correct node still holding a schedule.
    expect_refresh: bool = False


# -- churn arcs (PROTOCOL.md §16.5) --------------------------------------------
#
# Scripted multi-event timelines for the ``churn`` preset: transient
# corruption storms, compromise/bless/re-compromise cycles, and >fmax
# drift.  Each factory takes the cell seed and returns a sorted list of
# ``(round_no, action)``; ``run_cell`` fires each action once the system
# reaches that round.


def _crash_filler(system, victim):
    """Crash one non-victim controller so the evidence store is non-empty
    when a corruption lands (flipping a bit in an empty store is a no-op)."""
    target = max(
        c for c in system.topology.controllers
        if c != victim and c not in system.true_faulty_nodes
    )
    system.inject_now(target, adv.CrashBehavior())


def _arc_corrupt(kind: str):
    """One in-budget crash for evidence, then one transient corruption of
    the (still correct) victim four rounds later."""
    def build(seed: int):
        def corrupt(system, victim):
            system.corrupt_now(victim, CORRUPTIONS[kind](seed=seed))
        return [(IMPAIR_START, _crash_filler), (IMPAIR_START + 4, corrupt)]
    return build


def _arc_corruption_storm(seed: int):
    """Every corruption kind in sequence, across rotating correct victims."""
    actions: List[Tuple[int, Callable[..., Any]]] = [
        (IMPAIR_START, _crash_filler)
    ]
    for i, kind in enumerate(sorted(CORRUPTIONS)):
        def corrupt(system, victim, _kind=kind, _i=i):
            correct = sorted(system.correct_controllers())
            target = correct[(seed + _i) % len(correct)]
            system.corrupt_now(target, CORRUPTIONS[_kind](seed=seed + _i))
        actions.append((IMPAIR_START + 4 + 2 * i, corrupt))
    return actions


def _arc_cycle(seed: int):
    """Compromise -> operator repair+bless -> re-compromise -> repair."""
    def compromise(system, victim):
        system.inject_now(victim, adv.EquivocateBehavior())

    def bless(system, victim):
        system.repair_and_bless(victim)

    return [
        (IMPAIR_START, compromise),
        (IMPAIR_START + 8, bless),
        (IMPAIR_START + 16, compromise),
        (IMPAIR_START + 24, bless),
    ]


def _arc_drift(seed: int):
    """Crash fmax+1 distinct controllers: the observed pattern overflows
    the precomputed tree, forcing an online subtree refresh (no halt)."""
    actions: List[Tuple[int, Callable[..., Any]]] = []
    for i in range(FMAX + 1):
        def crash(system, victim, _i=i):
            correct = sorted(system.correct_controllers())
            system.inject_now(
                correct[(seed + _i) % len(correct)], adv.CrashBehavior()
            )
        actions.append((IMPAIR_START + 2 * i, crash))
    return actions


BEHAVIORS: Dict[str, BehaviorSpec] = {
    spec.name: spec
    for spec in [
        BehaviorSpec("none", None, 0, False),
        BehaviorSpec("crash", adv.CrashBehavior, 1, True),
        BehaviorSpec("silence", adv.SilenceBehavior, 1, True),
        BehaviorSpec("delay", lambda: adv.DelayBehavior(delay_rounds=2), 1, True),
        BehaviorSpec("flood", lambda: adv.GarbageFloodBehavior(size=2_000), 1, True),
        BehaviorSpec("equivocate", adv.EquivocateBehavior, 1, True),
        BehaviorSpec("epoch-split", adv.EpochSplitEquivocateBehavior, 1, True),
        # The flood's self-incriminating PoMs make the attacker observable.
        BehaviorSpec(
            "evidence-flood",
            lambda: adv.EvidenceFloodBehavior(rate=100),
            1,
            True,
        ),
        BehaviorSpec("lfd-storm", adv.LFDStormBehavior, 1, True),
        # Observability of a corrupted output depends on the drawn workload
        # (paper Req. 1 excludes faults with no visible effect), so the
        # detection deadline stays disarmed for this one.
        BehaviorSpec("random-output", lambda: adv.RandomOutputBehavior(seed=11), 1, False),
        # Durability arcs: fail-stop, stay down, restart from the durable
        # store, rejoin within the recovery bound.  The tamper variants
        # corrupt the on-disk chained log while the victim is down and
        # must be *detected* (refused suffix), never silently replayed.
        BehaviorSpec(
            "crash-restart",
            lambda: CrashRestartBehavior(down_rounds=3),
            1, True, durability=True,
        ),
        BehaviorSpec(
            "tamper-truncate",
            lambda: LogTamperBehavior(mode="truncate", down_rounds=3),
            1, True, durability=True, expect_tamper=True,
        ),
        BehaviorSpec(
            "tamper-bitflip",
            lambda: LogTamperBehavior(mode="bitflip", down_rounds=3),
            1, True, durability=True, expect_tamper=True,
        ),
        BehaviorSpec(
            "tamper-splice",
            lambda: LogTamperBehavior(mode="splice", down_rounds=3),
            1, True, durability=True, expect_tamper=True,
        ),
        # Churn arcs (the ``churn`` preset): stabilization + online tree
        # refresh enabled, serial engine.  The corruption arcs spend one
        # budget unit on a crash that seeds the evidence store; the drift
        # arc deliberately overspends the budget.
        BehaviorSpec(
            "corrupt-evidence", None, 1, True,
            arc=_arc_corrupt("evidence-bitflip"), expect_converge=True,
        ),
        BehaviorSpec(
            "corrupt-epoch", None, 1, True,
            arc=_arc_corrupt("epoch-desync"), expect_converge=True,
        ),
        BehaviorSpec(
            "corrupt-mode", None, 1, True,
            arc=_arc_corrupt("mode-scramble"), expect_converge=True,
        ),
        BehaviorSpec(
            "corrupt-quota", None, 1, True,
            arc=_arc_corrupt("quota-corrupt"), expect_converge=True,
        ),
        BehaviorSpec(
            "corruption-storm", None, 1, True,
            arc=_arc_corruption_storm, expect_converge=True,
        ),
        BehaviorSpec("bless-cycle", None, 1, True, arc=_arc_cycle),
        BehaviorSpec(
            "drift-overflow", None, FMAX + 1, True,
            arc=_arc_drift, expect_refresh=True,
        ),
    ]
}

# -- impairment plans ----------------------------------------------------------


def _controller_links(topology: Topology) -> List[Tuple[int, int]]:
    controllers = set(topology.controllers)
    return sorted(
        tuple(sorted(link))
        for link in topology.p2p_links
        if set(link) <= controllers
    ) or sorted(
        tuple(sorted((a, b)))
        for bus in topology.buses.values()
        for a in bus.members
        for b in bus.members
        if a < b and {a, b} <= controllers
    )


def _pick_link(topology: Topology, seed: int, avoid: Optional[int]) -> Tuple[int, int]:
    links = _controller_links(topology)
    eligible = [l for l in links if avoid not in l] or links
    return eligible[seed % len(eligible)]


def _pick_node(topology: Topology, seed: int, avoid: Optional[int]) -> int:
    controllers = [c for c in topology.controllers if c != avoid]
    return controllers[seed % len(controllers)]


def _halves(topology: Topology) -> Tuple[frozenset, frozenset]:
    controllers = topology.controllers
    mid = len(controllers) // 2
    return frozenset(controllers[:mid]), frozenset(controllers[mid:])


# Each builder: (topology, seed, victim) -> ImpairmentPlan.
PlanBuilder = Callable[[Topology, int, Optional[int]], ImpairmentPlan]


def _plan_none(topology, seed, victim):
    return ImpairmentPlan(seed=seed)


def _plan_dup(topology, seed, victim):
    return ImpairmentPlan(seed=seed, dup_prob=0.35, start_round=IMPAIR_START)


def _plan_reorder(topology, seed, victim):
    return ImpairmentPlan(seed=seed, reorder_prob=0.6, start_round=IMPAIR_START)


def _plan_dup_reorder(topology, seed, victim):
    return ImpairmentPlan(
        seed=seed, dup_prob=0.25, reorder_prob=0.5, start_round=IMPAIR_START
    )


def _plan_drop_link(topology, seed, victim):
    link = _pick_link(topology, seed, victim)
    return ImpairmentPlan(
        seed=seed, drop_prob=0.7, target_links=frozenset([link]),
        start_round=IMPAIR_START,
    )


def _plan_corrupt_link(topology, seed, victim):
    link = _pick_link(topology, seed, victim)
    return ImpairmentPlan(
        seed=seed, corrupt_prob=0.6, target_links=frozenset([link]),
        start_round=IMPAIR_START,
    )


def _plan_delay_link(topology, seed, victim):
    link = _pick_link(topology, seed, victim)
    return ImpairmentPlan(
        seed=seed, delay_prob=0.5, max_delay_rounds=2,
        target_links=frozenset([link]), start_round=IMPAIR_START,
    )


def _plan_flap_link(topology, seed, victim):
    a, b = _pick_link(topology, seed, victim)
    return ImpairmentPlan(
        seed=seed,
        flaps=(LinkFlap(a, b, start_round=IMPAIR_START, down_rounds=4),),
        start_round=IMPAIR_START,
    )


def _plan_drop_global(topology, seed, victim):
    return ImpairmentPlan(seed=seed, drop_prob=0.12, start_round=IMPAIR_START)


def _plan_corrupt_global(topology, seed, victim):
    return ImpairmentPlan(seed=seed, corrupt_prob=0.15, start_round=IMPAIR_START)


def _plan_delay_global(topology, seed, victim):
    return ImpairmentPlan(
        seed=seed, delay_prob=0.25, max_delay_rounds=3, start_round=IMPAIR_START
    )


def _plan_storm(topology, seed, victim):
    return ImpairmentPlan(
        seed=seed, drop_prob=0.1, dup_prob=0.2, corrupt_prob=0.1,
        delay_prob=0.15, reorder_prob=0.5, start_round=IMPAIR_START,
    )


def _plan_partition(topology, seed, victim):
    left, right = _halves(topology)
    return ImpairmentPlan(
        seed=seed,
        partitions=(Partition(
            groups=(left, right),
            start_round=IMPAIR_START, end_round=IMPAIR_START + 6,
        ),),
        start_round=IMPAIR_START,
    )


def _plan_flap_many(topology, seed, victim):
    links = _controller_links(topology)
    chosen = links[: FMAX + 1]
    return ImpairmentPlan(
        seed=seed,
        flaps=tuple(
            LinkFlap(a, b, start_round=IMPAIR_START + i, down_rounds=4)
            for i, (a, b) in enumerate(chosen)
        ),
        start_round=IMPAIR_START,
    )


PLANS: Dict[str, PlanBuilder] = {
    "none": _plan_none,
    "dup": _plan_dup,
    "reorder": _plan_reorder,
    "dup+reorder": _plan_dup_reorder,
    "drop-link": _plan_drop_link,
    "corrupt-link": _plan_corrupt_link,
    "delay-link": _plan_delay_link,
    "flap-link": _plan_flap_link,
    "drop-global": _plan_drop_global,
    "corrupt-global": _plan_corrupt_global,
    "delay-global": _plan_delay_global,
    "storm-global": _plan_storm,
    "partition": _plan_partition,
    "flap-many": _plan_flap_many,
}

# -- cells ---------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One configuration of the sweep."""

    topology: str
    behavior: str
    plan: str
    seed: int
    variant: str = "multi"
    rounds: int = RUN_ROUNDS
    #: explicit plan override used by the shrinker (None = build from name)
    plan_override: Optional[ImpairmentPlan] = field(default=None, compare=False)

    @property
    def cell_id(self) -> str:
        return f"{self.topology}/{self.behavior}/{self.plan}/s{self.seed}/{self.variant}"


def smoke_cells() -> List[CampaignCell]:
    """The CI-sized matrix: every behaviour and every plan at least once,
    both budget classes, two seeds on the small topology, plus 20-node
    grid spot checks."""
    cells: List[CampaignCell] = []
    er_pairs = [
        ("none", "none"), ("none", "dup"), ("none", "reorder"),
        ("none", "dup+reorder"), ("none", "drop-link"),
        ("none", "corrupt-link"), ("none", "delay-link"),
        ("none", "flap-link"),
        ("crash", "none"), ("crash", "dup"), ("crash", "drop-link"),
        ("silence", "reorder"), ("delay", "dup"), ("flood", "none"),
        ("lfd-storm", "none"), ("equivocate", "dup"),
        ("random-output", "reorder"),
        # out-of-budget block
        ("none", "drop-global"), ("none", "corrupt-global"),
        ("none", "delay-global"), ("none", "storm-global"),
        ("none", "partition"), ("none", "flap-many"),
        ("crash", "drop-global"),
    ]
    for behavior, plan in er_pairs:
        for seed in (0, 1):
            cells.append(CampaignCell("er6", behavior, plan, seed))
    cells.append(CampaignCell("grid4x5", "none", "none", 0))
    cells.append(CampaignCell("grid4x5", "crash", "drop-link", 0))
    cells.append(CampaignCell("grid4x5", "none", "partition", 0))
    return cells


def full_cells() -> List[CampaignCell]:
    cells: List[CampaignCell] = []
    for topology in ("er6", "er8", "plant", "grid4x5"):
        for behavior in BEHAVIORS:
            for plan in PLANS:
                for seed in (0, 1, 2):
                    cells.append(CampaignCell(topology, behavior, plan, seed))
    return cells


def storm_cells() -> List[CampaignCell]:
    """The evidence-layer stress matrix: equivocation storms (plain and
    epoch-split) and 100x evidence floods, on the small graph and the
    20-node grid, with the memory-bound checks armed."""
    cells: List[CampaignCell] = []
    for behavior in ("equivocate", "epoch-split", "evidence-flood"):
        for seed in (0, 1):
            cells.append(CampaignCell("er6", behavior, "none", seed))
    cells.append(CampaignCell("er6", "equivocate", "dup", 0))
    cells.append(CampaignCell("er6", "evidence-flood", "reorder", 0))
    cells.append(CampaignCell("grid4x5", "evidence-flood", "none", 0))
    cells.append(CampaignCell("grid4x5", "equivocate", "none", 0))
    return cells


def restart_cells() -> List[CampaignCell]:
    """The durability matrix: crash-restart-rejoin arcs (restore within
    the recovery bound) plus one cell per log-tamper mode (truncation,
    bit-flip, splice -- each must be detected, not silently replayed).
    Longer cells: the restart opens a fresh ``r_max`` window around round
    14, and the grid's ``d_max`` puts that deadline in the high 30s."""
    rounds = 44
    cells: List[CampaignCell] = []
    for seed in (0, 1):
        cells.append(CampaignCell("er6", "crash-restart", "none", seed, rounds=rounds))
    cells.append(CampaignCell("er6", "crash-restart", "dup", 0, rounds=rounds))
    cells.append(CampaignCell("grid4x5", "crash-restart", "none", 0, rounds=rounds))
    for behavior in ("tamper-truncate", "tamper-bitflip", "tamper-splice"):
        cells.append(CampaignCell("er6", behavior, "none", 0, rounds=rounds))
    return cells


def churn_cells() -> List[CampaignCell]:
    """The self-stabilization matrix (PROTOCOL.md §16.5): every transient
    corruption kind (plus a rotating-victim storm of all of them), the
    compromise -> bless -> re-compromise lifecycle, and >fmax drift cells
    whose observed pattern falls outside the precomputed tree -- those
    must refresh the affected subtree online, never halt.  Corruption
    cells are judged against the Req-S convergence bound; drift cells
    additionally report ``time_to_new_tree_s``."""
    rounds = 44
    cells: List[CampaignCell] = []
    for behavior in (
        "corrupt-evidence", "corrupt-epoch", "corrupt-mode", "corrupt-quota"
    ):
        for seed in (0, 1):
            cells.append(CampaignCell("er6", behavior, "none", seed, rounds=rounds))
    cells.append(
        CampaignCell("er6", "corruption-storm", "none", 0, rounds=rounds + 8)
    )
    cells.append(CampaignCell("er6", "bless-cycle", "none", 0, rounds=rounds + 8))
    cells.append(CampaignCell("er6", "corrupt-evidence", "dup", 0, rounds=rounds))
    cells.append(CampaignCell("grid4x5", "corrupt-epoch", "none", 0, rounds=rounds))
    for seed in (0, 1):
        cells.append(
            CampaignCell("er6", "drift-overflow", "none", seed, rounds=rounds)
        )
    return cells


PRESETS: Dict[str, Callable[[], List[CampaignCell]]] = {
    "smoke": smoke_cells,
    "full": full_cells,
    "storm": storm_cells,
    "restart": restart_cells,
    "churn": churn_cells,
}


def known_issue_tag(cell: CampaignCell) -> Optional[str]:
    """Configurations held open by the suite (strict-xfail pins) are
    tagged, not failed, so the campaign stays green while they are open.
    Currently empty: the equivocation accuracy gap that used to live here
    is fixed and pinned green by ``tests/test_regression_equivocation.py``."""
    return None


# -- execution -----------------------------------------------------------------


def run_cell(cell: CampaignCell, workers: Optional[int] = None) -> Dict[str, Any]:
    """Build, impair, run, and judge one cell.

    ``workers >= 2`` runs the cell on the sharded round engine
    (``REBOUND_SCALE_WORKERS`` supplies a default when None); the victim is
    parent-pinned so mid-run injection needs no worker recall.  Transcripts
    are engine-independent, so judgments are identical either way.
    """
    spec = BEHAVIORS[cell.behavior]
    topology, workload = TOPOLOGIES[cell.topology](cell.seed)
    victim = (
        topology.controllers[cell.seed % len(topology.controllers)]
        if spec.factory is not None or spec.arc is not None
        else None
    )
    if spec.arc is not None:
        workers = 0  # arcs poke node internals mid-run; keep them resident
    plan = cell.plan_override
    if plan is None:
        plan = PLANS[cell.plan](topology, cell.seed, victim)
    budget = FMAX - spec.fault_units
    in_budget = plan.classify(budget) == IN_BUDGET
    context = {
        "topology": cell.topology,
        "topology_seed": cell.seed,
        "behavior": cell.behavior,
        "victim": victim,
        "variant": cell.variant,
        "plan_name": cell.plan,
        "plan": plan.as_dict(),
        "rounds": cell.rounds,
    }
    # The Req. 1 deadline is armed for observable adversaries and for
    # lossy in-budget impairments (a dropped heartbeat must surface as an
    # LFD); dup/reorder-only plans leave nothing to detect.
    monitor = BTRMonitor(
        in_budget=in_budget,
        require_detection=spec.observable or (in_budget and plan.is_lossy),
        record_only=True,
        context=context,
    )
    result: Dict[str, Any] = {
        "cell": cell.cell_id,
        "topology": cell.topology,
        "behavior": cell.behavior,
        "plan_name": cell.plan,
        "plan": plan.as_dict(),
        "seed": cell.seed,
        "variant": cell.variant,
        "in_budget": in_budget,
        "budget_units": plan.budget_units(),
    }
    # A per-cell flight recorder: violation repro dicts (and crash results)
    # carry the trailing event window.  The recorder only observes, so the
    # cell's transcript is unchanged (see noop_transcript_check).
    recorder = FlightRecorder(capacity=4096)
    recorder.install()
    system = None
    durability_dir = None
    try:
        config_kwargs: Dict[str, Any] = {}
        if spec.arc is not None:
            config_kwargs.update(
                stabilize_enabled=True,
                audit_interval=4,
                tree_refresh_enabled=True,
            )
        if spec.durability:
            durability_dir = tempfile.mkdtemp(prefix="rebound-durable-")
            config_kwargs = {
                "durability_enabled": True,
                "durability_dir": durability_dir,
                "snapshot_interval": 8,
            }
        config = ReboundConfig(
            fmax=FMAX, fconc=1, variant=cell.variant, rsa_bits=256,
            **config_kwargs,
        )
        system = ReboundSystem(
            topology, workload, config, seed=cell.seed,
            network_factory=lambda topo: ChaosRoundNetwork(
                topo, plan, budget=budget
            ),
            scale_workers=workers,
            parent_resident=({victim} if victim is not None else None),
        )
        result["engine"] = system.engine_name
        result["workers"] = system.scale_workers
        system.run(WARMUP_ROUNDS)
        system.attach_monitor(monitor)
        if spec.arc is not None:
            for rnd, action in sorted(spec.arc(cell.seed), key=lambda a: a[0]):
                while system.round_no < min(rnd, cell.rounds):
                    system.run_round()
                action(system, victim)
        elif spec.factory is not None:
            system.run(IMPAIR_START - WARMUP_ROUNDS - 1)
            system.inject_now(victim, spec.factory())
        remaining = cell.rounds - (system.round_no - 0)
        system.run(max(0, remaining))
    except Exception as exc:  # noqa: BLE001 -- "never crash" is the invariant
        result["outcome"] = "crash"
        result["crash"] = f"{type(exc).__name__}: {exc}"
        result["violations"] = [v.as_dict() for v in monitor.violations]
        result["violation_census"] = monitor.census()
        result["trace_tail"] = recorder.tail(64)
        return result
    finally:
        recorder.uninstall()
        if system is not None:
            system.close()
        if durability_dir is not None:
            shutil.rmtree(durability_dir, ignore_errors=True)

    result["budget_exceeded"] = system.budget_exceeded
    result["violations"] = [v.as_dict() for v in monitor.violations]
    result["violation_census"] = monitor.census()
    result["detection_round"] = monitor.detection_round
    result["recovery_round"] = monitor.recovery_round
    if spec.durability:
        detections = getattr(system, "durability_tamper_detections", [])
        result["tamper_detections"] = len(detections)
        result["tamper_reasons"] = [d["reason"] for d in detections]
    stats = getattr(system.network, "chaos_stats", None)
    result["impairment_stats"] = stats.as_dict() if stats is not None else None
    first_event = min(system.fault_rounds) if system.fault_rounds else (
        stats.first_impact_round if stats is not None else None
    )
    if monitor.recovery_round is not None and first_event is not None:
        result["rounds_to_recovery"] = monitor.recovery_round - first_event
    else:
        result["rounds_to_recovery"] = None

    tag = known_issue_tag(cell)
    hard_accuracy = [
        v for v in monitor.violations
        if v.kind == "accuracy" and v.repro.get("layer") == "evidence"
    ]
    if monitor.violations and tag is not None:
        result["outcome"] = "tagged"
        result["tag"] = tag
    elif in_budget:
        result["outcome"] = "fail" if monitor.violations else "pass"
    else:
        ok = system.budget_exceeded and not hard_accuracy
        result["outcome"] = "pass" if ok else "fail"
        if not system.budget_exceeded:
            result["fail_reason"] = "budget_exceeded not reported"
        elif hard_accuracy:
            result["fail_reason"] = "verifiable evidence condemned a correct node"
    if spec.expect_tamper and result["outcome"] == "pass":
        # A tamper cell only passes when the restore path actually caught
        # the corruption; a clean rejoin over a forged log is the failure
        # this cell exists to rule out.
        if result.get("tamper_detections", 0) < 1:
            result["outcome"] = "fail"
            result["fail_reason"] = "log tamper not detected on restore"
    if spec.arc is not None:
        from repro.stabilize.auditor import convergence_bound

        bound = convergence_bound(
            system.config.audit_interval, system.config.d_max
        )
        divergences = [
            dict(record)
            for aud in system.auditors.values()
            for record in aud.divergences
        ]
        result["convergence_bound"] = bound
        result["corruptions"] = list(system.transient_corruptions)
        result["divergences"] = divergences
        result["tree_refreshes"] = list(system.tree_refreshes)
    if spec.expect_converge and result["outcome"] == "pass":
        # Req-S: within the convergence bound of each corruption landing,
        # the victim's auditor must report a *clean* tick -- either the
        # resync repaired the damage or fresh protocol traffic overwrote
        # it naturally before the tick (equally valid convergence).
        laggards = []
        for corruption in system.transient_corruptions:
            audits = system.auditors[corruption["node"]].audits
            converged = any(
                corruption["round"] < tick <= corruption["round"] + bound
                and not outstanding
                for tick, outstanding in audits
            )
            if not converged:
                laggards.append(corruption)
        if laggards:
            result["outcome"] = "fail"
            result["fail_reason"] = (
                f"{len(laggards)} corruption(s) not converged within "
                f"{bound} rounds"
            )
            result["laggards"] = laggards
    if spec.expect_refresh and result["outcome"] == "pass":
        refreshes = result.get("tree_refreshes", [])
        holes = [
            n for n in system.correct_controllers()
            if system.nodes[n].current_schedule is None
        ]
        if not refreshes:
            result["outcome"] = "fail"
            result["fail_reason"] = "no online tree refresh for >fmax drift"
        elif holes:
            result["outcome"] = "fail"
            result["fail_reason"] = (
                f"correct node(s) {holes} left without a schedule"
            )
        else:
            result["time_to_new_tree_s"] = max(
                r["elapsed_s"] for r in refreshes
            )
    return result


# -- shrinking -----------------------------------------------------------------


def shrink_cell(
    cell: CampaignCell, max_attempts: int = 16, workers: Optional[int] = None
) -> Dict[str, Any]:
    """Greedy minimization of a failing cell.

    Re-runs simplified variants (drop one impairment component, drop the
    adversary, halve the rounds) and keeps each simplification that still
    fails.  Returns the minimal failing configuration's repro dict.
    """
    spec = BEHAVIORS[cell.behavior]
    topology, _ = TOPOLOGIES[cell.topology](cell.seed)
    victim = (
        topology.controllers[cell.seed % len(topology.controllers)]
        if spec.factory is not None
        else None
    )
    base_plan = cell.plan_override or PLANS[cell.plan](topology, cell.seed, victim)
    current = replace(cell, plan_override=base_plan)
    attempts = 0

    def fails(candidate: CampaignCell) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        kwargs = {} if workers is None else {"workers": workers}
        return run_cell(candidate, **kwargs)["outcome"] in ("fail", "crash")

    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for component in current.plan_override.components():
            candidate = replace(
                current, plan_override=current.plan_override.without(component)
            )
            if fails(candidate):
                current = candidate
                changed = True
                break
        if not changed and current.behavior != "none":
            candidate = replace(current, behavior="none")
            if fails(candidate):
                current = candidate
                changed = True
        if not changed and current.rounds > 8:
            candidate = replace(current, rounds=current.rounds // 2)
            if fails(candidate):
                current = candidate
                changed = True
    return {
        "cell": current.cell_id,
        "topology": current.topology,
        "seed": current.seed,
        "behavior": current.behavior,
        "variant": current.variant,
        "rounds": current.rounds,
        "plan": current.plan_override.as_dict(),
        "shrink_attempts": attempts,
    }


# -- the no-op identity check --------------------------------------------------


def noop_transcript_check(rounds: int = 16, crash_round: int = 8) -> bool:
    """A no-op chaos network must be invisible: byte-identical transcripts
    (per-node evidence digests + modes, every round) against the plain
    network on the 20-node grid, across a crash fault."""
    from repro.analysis.metrics import transcript_entry

    def run(factory) -> List[Tuple]:
        topology = grid_topology(4, 5)
        workload = WorkloadGenerator(
            seed=0, chain_length_range=(1, 2)
        ).workload(target_utilization=1.5)
        config = ReboundConfig(fmax=1, fconc=1, variant="multi", rsa_bits=256)
        system = ReboundSystem(
            topology, workload, config, seed=0, network_factory=factory
        )
        transcript = []
        for r in range(1, rounds + 1):
            if r == crash_round:
                system.inject_now(max(topology.controllers), adv.CrashBehavior())
            system.run_round()
            transcript.append(transcript_entry(system))
        return transcript

    plain = run(RoundNetwork)
    chaotic = run(lambda topo: ChaosRoundNetwork(topo, ImpairmentPlan()))
    return plain == chaotic


# -- campaign driver -----------------------------------------------------------


def run_campaign(
    preset: str = "smoke",
    seeds: Optional[List[int]] = None,
    max_cells: Optional[int] = None,
    shrink: bool = True,
    output_path: Optional[str] = "BENCH_chaos.json",
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run a preset's cells and write the BENCH report.

    ``on_result`` (when given) receives each cell's full outcome dict as
    it lands -- the hook behind ``chaos --live``'s running tally
    (:class:`repro.obs.console.CampaignLiveSink`).  It fires before
    shrinking, so a slow shrink does not delay the verdict line.
    """
    from repro.experiments.common import bench_env
    from repro.net.shard import resolve_workers

    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r} (have {sorted(PRESETS)})")
    cells = PRESETS[preset]()
    if seeds is not None:
        chosen = set(seeds)
        cells = [c for c in cells if c.seed in chosen]
    if max_cells is not None:
        cells = cells[:max_cells]
    t0 = time.perf_counter()
    results: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    for cell in cells:
        outcome = run_cell(cell, workers=workers)
        results.append(outcome)
        if on_result is not None:
            on_result(outcome)
        if progress is not None:
            progress(f"[{outcome['outcome']:>6}] {outcome['cell']}")
        if outcome["outcome"] in ("fail", "crash") and shrink:
            outcome["shrunk"] = shrink_cell(cell, workers=workers)
            failures.append(outcome["shrunk"])
    matrix = {"pass": 0, "fail": 0, "tagged": 0, "crash": 0}
    census: Dict[str, int] = {}
    recovery_rounds: List[int] = []
    for outcome in results:
        matrix[outcome["outcome"]] = matrix.get(outcome["outcome"], 0) + 1
        for kind, count in outcome.get("violation_census", {}).items():
            census[kind] = census.get(kind, 0) + count
        if outcome.get("rounds_to_recovery") is not None:
            recovery_rounds.append(outcome["rounds_to_recovery"])
    noop_identical = noop_transcript_check()
    report = {
        "benchmark": "chaos",
        "env": bench_env(workers=resolve_workers(workers)),
        "preset": preset,
        "fmax": FMAX,
        "cells": results,
        "cell_count": len(results),
        "matrix": matrix,
        "violation_census": census,
        "recovery_rounds": {
            "values": sorted(recovery_rounds),
            "mean": (
                sum(recovery_rounds) / len(recovery_rounds)
                if recovery_rounds else None
            ),
            "max": max(recovery_rounds) if recovery_rounds else None,
        },
        "failures": failures,
        "noop_transcript_identical": noop_identical,
        "elapsed_s": time.perf_counter() - t0,
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
