"""Deterministic chaos-injection layer + BTR invariant monitor.

Three pieces (docs/PROTOCOL.md section 9):

* :mod:`repro.chaos.impairments` -- seeded, composable
  :class:`ImpairmentPlan`\\ s (drop / duplicate / reorder / corrupt /
  delay / link flaps / partitions) applied by :class:`ChaosRoundNetwork`
  at the network layer, each classified *in-budget* or *out-of-budget*
  against the deployment's fault budget;
* :mod:`repro.chaos.monitor` -- :class:`BTRMonitor`, a per-round oracle
  for the paper's Reqs. 1-3 (bounded detection, bounded recovery,
  accuracy) plus structural invariants, raising typed
  :class:`InvariantViolation`\\ s with replayable repro dicts;
* :mod:`repro.chaos.campaign` -- the sweep runner behind
  ``python -m repro chaos``, with failure shrinking and
  ``BENCH_chaos.json`` reporting.
"""

from repro.chaos.impairments import (
    IN_BUDGET,
    OUT_OF_BUDGET,
    NOOP_PLAN,
    ChaosRoundNetwork,
    ImpairmentPlan,
    ImpairmentStats,
    LinkFlap,
    Partition,
)
from repro.chaos.corruption import (
    CORRUPTIONS,
    EpochDesync,
    EvidenceBitFlip,
    ModePointerScramble,
    QuotaLedgerCorrupt,
    TransientCorruption,
)
from repro.chaos.monitor import (
    AccuracyViolation,
    BTRMonitor,
    DetectionTimeoutViolation,
    InvariantViolation,
    MemoryBoundViolation,
    RecoveryTimeoutViolation,
    StabilizationViolation,
    StructuralViolation,
)
from repro.chaos.restart import CrashRestartBehavior, LogTamperBehavior
from repro.chaos.campaign import (
    BEHAVIORS,
    PLANS,
    PRESETS,
    CampaignCell,
    known_issue_tag,
    noop_transcript_check,
    run_campaign,
    run_cell,
    shrink_cell,
)

__all__ = [
    "IN_BUDGET",
    "OUT_OF_BUDGET",
    "NOOP_PLAN",
    "ChaosRoundNetwork",
    "ImpairmentPlan",
    "ImpairmentStats",
    "LinkFlap",
    "Partition",
    "CORRUPTIONS",
    "EpochDesync",
    "EvidenceBitFlip",
    "ModePointerScramble",
    "QuotaLedgerCorrupt",
    "TransientCorruption",
    "AccuracyViolation",
    "BTRMonitor",
    "DetectionTimeoutViolation",
    "InvariantViolation",
    "MemoryBoundViolation",
    "RecoveryTimeoutViolation",
    "StabilizationViolation",
    "StructuralViolation",
    "CrashRestartBehavior",
    "LogTamperBehavior",
    "BEHAVIORS",
    "PLANS",
    "PRESETS",
    "CampaignCell",
    "known_issue_tag",
    "noop_transcript_check",
    "run_campaign",
    "run_cell",
    "shrink_cell",
]
