"""Deterministic network impairments: the chaos layer's fault vocabulary.

REBOUND's system model (paper S2.2) assumes the *infrastructure* is
reliable -- unreliability comes only from faulty nodes and links.  The
chaos layer deliberately stresses that assumption: a seeded, composable
:class:`ImpairmentPlan` describes probabilistic message drop, duplication,
within-round reordering, byte-level corruption, bounded delay, transient
link flaps, and full partitions; :class:`ChaosRoundNetwork` applies the
plan inside the round engine, between the bandwidth/adversary accounting
and final delivery.

Every impairment is classified against the deployment's fault budget:

* **in-budget** -- the impairment is indistinguishable from a fault the
  protocol was provisioned for (``fmax`` faulty nodes/links, or effects
  the synchronous model never promised to exclude, like duplication of
  signed messages and within-round delivery order).  The protocol must
  still satisfy Reqs. 1-3 and converge within ``Rmax``.
* **out-of-budget** -- the environment violates the model itself (lossy
  links everywhere, partitions, more impaired elements than ``fmax``).
  The protocol must degrade gracefully: the runtime raises its
  ``budget_exceeded`` signal, never crashes, and its *verifiable evidence*
  still never condemns a correct node.

Determinism: every random decision is drawn from an RNG keyed by
``(plan.seed, round, sender, destination, sequence)`` through an integer
mixer (no ``hash()``), so a plan replays byte-identically regardless of
Python hash randomization -- the property the campaign shrinker and the
violation repro dicts rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.message import encode
from repro.net.network import Delivery, RoundNetwork
from repro.net.topology import Topology
from repro.obs import recorder as _flight
from repro.obs.events import EV_CHAOS_IMPAIRMENT

IN_BUDGET = "in_budget"
OUT_OF_BUDGET = "out_of_budget"

_MASK = 0xFFFFFFFFFFFFFFFF


def _mix(*parts: int) -> int:
    """Deterministic 64-bit mixer (splitmix64-style) over integer parts."""
    acc = 0x243F6A8885A308D3
    for part in parts:
        acc ^= (part + 0x9E3779B97F4A7C15) & _MASK
        acc = (acc * 0xBF58476D1CE4E5B9) & _MASK
        acc ^= acc >> 31
    return acc


@dataclass(frozen=True)
class LinkFlap:
    """A transient link outage: ``link`` is down while the flap is active.

    With ``period == 0`` the link is down for one window
    ``[start_round, start_round + down_rounds)``; with ``period > 0`` the
    outage repeats every ``period`` rounds.
    """

    a: int
    b: int
    start_round: int
    down_rounds: int
    period: int = 0

    @property
    def link(self) -> Tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))

    def down(self, round_no: int) -> bool:
        if round_no < self.start_round:
            return False
        offset = round_no - self.start_round
        if self.period <= 0:
            return offset < self.down_rounds
        return (offset % self.period) < self.down_rounds

    def as_dict(self) -> Dict[str, int]:
        return {
            "a": self.a, "b": self.b, "start_round": self.start_round,
            "down_rounds": self.down_rounds, "period": self.period,
        }


@dataclass(frozen=True)
class Partition:
    """A full partition: messages between different groups are dropped
    during ``[start_round, end_round)``.  Nodes absent from every group
    are unaffected (devices can be left out)."""

    groups: Tuple[FrozenSet[int], ...]
    start_round: int
    end_round: int

    def active(self, round_no: int) -> bool:
        return self.start_round <= round_no < self.end_round

    def separates(self, a: int, b: int) -> bool:
        ga = gb = None
        for idx, group in enumerate(self.groups):
            if a in group:
                ga = idx
            if b in group:
                gb = idx
        return ga is not None and gb is not None and ga != gb

    def as_dict(self) -> Dict[str, Any]:
        return {
            "groups": [sorted(g) for g in self.groups],
            "start_round": self.start_round,
            "end_round": self.end_round,
        }


@dataclass(frozen=True)
class ImpairmentPlan:
    """A seeded, composable description of environmental hostility.

    Message-level probabilities apply independently per message while the
    plan is active (``start_round <= round < end_round``); ``target_links``
    / ``target_nodes`` confine them to specific links or senders (``None``
    means everywhere -- which is out-of-budget for loss-like impairments).
    """

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    corrupt_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay_rounds: int = 2
    target_links: Optional[FrozenSet[Tuple[int, int]]] = None
    target_nodes: Optional[FrozenSet[int]] = None
    flaps: Tuple[LinkFlap, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    start_round: int = 1
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob",
                     "corrupt_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.max_delay_rounds < 1:
            raise ValueError("max_delay_rounds must be >= 1")
        if self.target_links is not None:
            object.__setattr__(
                self,
                "target_links",
                frozenset(tuple(sorted(l)) for l in self.target_links),
            )

    # -- composition / shrinking -------------------------------------------

    def without(self, component: str) -> "ImpairmentPlan":
        """A copy with one impairment component removed (shrinking)."""
        zeroes = {
            "drop": {"drop_prob": 0.0},
            "dup": {"dup_prob": 0.0},
            "reorder": {"reorder_prob": 0.0},
            "corrupt": {"corrupt_prob": 0.0},
            "delay": {"delay_prob": 0.0},
            "flaps": {"flaps": ()},
            "partitions": {"partitions": ()},
        }
        if component not in zeroes:
            raise ValueError(f"unknown component {component!r}")
        return replace(self, **zeroes[component])

    def components(self) -> List[str]:
        """The impairment components this plan actually exercises."""
        out = []
        if self.drop_prob > 0:
            out.append("drop")
        if self.dup_prob > 0:
            out.append("dup")
        if self.reorder_prob > 0:
            out.append("reorder")
        if self.corrupt_prob > 0:
            out.append("corrupt")
        if self.delay_prob > 0:
            out.append("delay")
        if self.flaps:
            out.append("flaps")
        if self.partitions:
            out.append("partitions")
        return out

    @property
    def is_noop(self) -> bool:
        return not self.components()

    @property
    def is_lossy(self) -> bool:
        """Whether the plan can make an element *look* faulty (drop,
        corrupt, delay, flap, partition) -- the impairments a correct
        protocol is expected to detect, as opposed to duplication and
        reordering, which the model never promised to exclude."""
        return bool(
            self.drop_prob > 0 or self.corrupt_prob > 0
            or self.delay_prob > 0 or self.flaps or self.partitions
        )

    def active(self, round_no: int) -> bool:
        if round_no < self.start_round:
            return False
        return self.end_round is None or round_no < self.end_round

    # -- budget classification ---------------------------------------------

    def budget_units(self) -> Optional[int]:
        """How many of the deployment's ``fmax`` fault slots this plan's
        loss-like impairments consume, or ``None`` when the plan cannot be
        attributed to bounded elements (untargeted loss, partitions).

        Duplication and reordering cost nothing: signed messages are
        idempotent and within-round delivery order was never promised.
        """
        if self.partitions:
            return None
        units = 0
        lossy = self.drop_prob > 0 or self.corrupt_prob > 0 or self.delay_prob > 0
        if lossy:
            if self.target_links is None and self.target_nodes is None:
                return None
            target_nodes = self.target_nodes or frozenset()
            units += len(target_nodes)
            for link in self.target_links or frozenset():
                if not (set(link) & target_nodes):
                    units += 1
        flap_links = {f.link for f in self.flaps}
        units += len(flap_links)
        return units

    def classify(self, budget: int) -> str:
        """``IN_BUDGET`` if the protocol must still meet Reqs. 1-3 under
        this plan given ``budget`` remaining fault slots, else
        ``OUT_OF_BUDGET``."""
        units = self.budget_units()
        if units is None or units > budget:
            return OUT_OF_BUDGET
        return IN_BUDGET

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable description (campaign results, repro dicts)."""
        return {
            "seed": self.seed,
            "drop_prob": self.drop_prob,
            "dup_prob": self.dup_prob,
            "reorder_prob": self.reorder_prob,
            "corrupt_prob": self.corrupt_prob,
            "delay_prob": self.delay_prob,
            "max_delay_rounds": self.max_delay_rounds,
            "target_links": sorted(self.target_links) if self.target_links else None,
            "target_nodes": sorted(self.target_nodes) if self.target_nodes else None,
            "flaps": [f.as_dict() for f in self.flaps],
            "partitions": [p.as_dict() for p in self.partitions],
            "start_round": self.start_round,
            "end_round": self.end_round,
        }


NOOP_PLAN = ImpairmentPlan()


@dataclass
class ImpairmentStats:
    """What the chaos layer actually did to the traffic."""

    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0
    reordered_rounds: int = 0
    flap_dropped: int = 0
    partition_dropped: int = 0
    first_impact_round: Optional[int] = None
    impacted_links: Set[Tuple[int, int]] = field(default_factory=set)
    impacted_nodes: Set[int] = field(default_factory=set)
    #: link/node -> round of first applied impairment on that element
    first_impact_by_element: Dict[Any, int] = field(default_factory=dict)

    @property
    def impacted(self) -> bool:
        return self.first_impact_round is not None

    def total_events(self) -> int:
        return (
            self.dropped + self.duplicated + self.corrupted + self.delayed
            + self.reordered_rounds + self.flap_dropped + self.partition_dropped
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "reordered_rounds": self.reordered_rounds,
            "flap_dropped": self.flap_dropped,
            "partition_dropped": self.partition_dropped,
            "first_impact_round": self.first_impact_round,
            "impacted_links": sorted(self.impacted_links),
            "impacted_nodes": sorted(self.impacted_nodes),
            "total_events": self.total_events(),
        }


class ChaosRoundNetwork(RoundNetwork):
    """A :class:`RoundNetwork` that subjects admitted traffic to an
    :class:`ImpairmentPlan`.

    Impairments act *after* bandwidth charging, adversary hooks, and
    physical link-failure checks (the bytes were radiated; the environment
    then loses, garbles, duplicates, or delays them) and *before* the
    deterministic delivery sort.  With a no-op plan the transcript is
    byte-identical to the base network: every override falls through to
    the parent without drawing randomness.
    """

    def __init__(self, topology: Topology, plan: ImpairmentPlan = NOOP_PLAN,
                 guardian_share: Optional[float] = None,
                 budget: Optional[int] = None):
        super().__init__(topology, guardian_share)
        self.plan = plan
        #: fault slots the environment may consume (``fmax`` minus whatever
        #: the campaign's adversary already uses); ``None`` = unknown, in
        #: which case only structurally unattributable plans count as
        #: out-of-budget activity.
        self.budget = budget
        self.chaos_stats = ImpairmentStats()
        #: (delivery_round, sender, destination, payload)
        self._held_messages: List[Tuple[int, int, int, Any]] = []

    # -- classification ------------------------------------------------------

    @property
    def out_of_budget_activity(self) -> bool:
        """True once an out-of-budget plan has actually impaired traffic;
        feeds ``ReboundSystem.budget_exceeded``."""
        if not self.chaos_stats.impacted:
            return False
        units = self.plan.budget_units()
        if units is None:
            return True
        return self.budget is not None and units > self.budget

    # -- impairment mechanics ------------------------------------------------

    def _eligible(self, sender: int, destination: int) -> bool:
        """A message is subject to probabilistic impairment when it matches
        the plan's targets (sender in ``target_nodes`` or its link in
        ``target_links``); an untargeted plan impairs everything."""
        plan = self.plan
        if plan.target_nodes is None and plan.target_links is None:
            return True
        if plan.target_nodes is not None and sender in plan.target_nodes:
            return True
        if plan.target_links is not None:
            link = (min(sender, destination), max(sender, destination))
            return link in plan.target_links
        return False

    def _record_impact(self, sender: int, destination: int, lossy: bool = True) -> None:
        """Track an applied impairment.  Only *lossy* impairments (drop,
        corrupt, delay, flap, partition) mark elements as impacted -- the
        protocol is expected to detect and route around those; duplication
        and reordering leave no element looking faulty."""
        stats = self.chaos_stats
        if stats.first_impact_round is None:
            stats.first_impact_round = self.round_no
        if not lossy:
            return
        link = (min(sender, destination), max(sender, destination))
        stats.impacted_links.add(link)
        stats.first_impact_by_element.setdefault(link, self.round_no)
        if self.plan.target_nodes is not None and sender in self.plan.target_nodes:
            stats.impacted_nodes.add(sender)
            stats.first_impact_by_element.setdefault(sender, self.round_no)

    def _emit_impairment(
        self, kind: str, sender: int, destination: int,
        delay: Optional[int] = None,
    ) -> None:
        flight = _flight.active
        if flight is None:
            return
        data: Dict[str, Any] = {
            "type": kind,
            "link": [min(sender, destination), max(sender, destination)],
        }
        if delay is not None:
            data["delay"] = delay
        flight.emit(EV_CHAOS_IMPAIRMENT, sender, data, round_no=self.round_no)

    def _corrupt_payload(self, rng: random.Random, payload: Any) -> bytes:
        """Byte-level corruption: garble the canonical encoding.

        The corrupted message is delivered as raw bytes -- the same shape a
        garbled frame has after failing deserialization, and the same shape
        the garbage-flood adversary already exercises, so every receiver
        treats it as an unverifiable message from that sender.
        """
        blob = bytearray(encode(payload))
        flips = max(1, len(blob) // 64)
        for _ in range(flips):
            pos = rng.randrange(len(blob))
            blob[pos] ^= 1 + rng.randrange(255)
        return bytes(blob)

    def _enqueue(self, sender: int, destination: int, payload: Any) -> None:
        plan = self.plan
        if plan.is_noop or not plan.active(self.round_no):
            super()._enqueue(sender, destination, payload)
            return
        stats = self.chaos_stats
        link = (min(sender, destination), max(sender, destination))
        for partition in plan.partitions:
            if partition.active(self.round_no) and partition.separates(sender, destination):
                stats.partition_dropped += 1
                self._record_impact(sender, destination)
                self._emit_impairment("partition", sender, destination)
                return
        for flap in plan.flaps:
            if flap.link == link and flap.down(self.round_no):
                stats.flap_dropped += 1
                self._record_impact(sender, destination)
                self._emit_impairment("flap", sender, destination)
                return
        if not self._eligible(sender, destination):
            super()._enqueue(sender, destination, payload)
            return
        rng = random.Random(
            _mix(plan.seed, self.round_no, sender, destination, self._seq)
        )
        if plan.drop_prob > 0 and rng.random() < plan.drop_prob:
            stats.dropped += 1
            self._record_impact(sender, destination)
            self._emit_impairment("drop", sender, destination)
            return
        if plan.corrupt_prob > 0 and rng.random() < plan.corrupt_prob:
            payload = self._corrupt_payload(rng, payload)
            stats.corrupted += 1
            self._record_impact(sender, destination)
            self._emit_impairment("corrupt", sender, destination)
        if plan.delay_prob > 0 and rng.random() < plan.delay_prob:
            extra = rng.randint(1, plan.max_delay_rounds)
            # Normal delivery happens at round_no + 1; hold for `extra` more.
            self._held_messages.append(
                (self.round_no + 1 + extra, sender, destination, payload)
            )
            stats.delayed += 1
            self._record_impact(sender, destination)
            self._emit_impairment("delay", sender, destination, delay=extra)
            return
        super()._enqueue(sender, destination, payload)
        if plan.dup_prob > 0 and rng.random() < plan.dup_prob:
            stats.duplicated += 1
            self._record_impact(sender, destination, lossy=False)
            self._emit_impairment("dup", sender, destination)
            super()._enqueue(sender, destination, payload)

    def _begin_round(self) -> None:
        """Release held (delayed) messages due this round.

        Releases bypass the impairment pipeline (the message was already
        impaired once) but still honor the physical state at release time:
        a sender crashed or a link cut while the message was in flight
        silences it, exactly as the base network would have.
        """
        if not self._held_messages:
            return
        due = [h for h in self._held_messages if h[0] <= self.round_no]
        if not due:
            return
        self._held_messages = [h for h in self._held_messages if h[0] > self.round_no]
        for _due_round, sender, destination, payload in due:
            if sender in self._crashed:
                continue
            if frozenset((sender, destination)) in self._failed_links:
                continue
            self._outbox.append((sender, destination, payload, self._seq))
            self._seq += 1

    def _collect_deliveries(self) -> List[Delivery]:
        deliveries = super()._collect_deliveries()
        plan = self.plan
        if (
            plan.reorder_prob <= 0
            or not plan.active(self.round_no)
            or len(deliveries) < 2
        ):
            return deliveries
        rng = random.Random(_mix(plan.seed, self.round_no, 0x5EC0_0D3B))
        if rng.random() >= plan.reorder_prob:
            return deliveries
        self.chaos_stats.reordered_rounds += 1
        if self.chaos_stats.first_impact_round is None:
            self.chaos_stats.first_impact_round = self.round_no
        flight = _flight.active
        if flight is not None:
            # Whole-round impairment; attributed to the network observer (-1).
            flight.emit(
                EV_CHAOS_IMPAIRMENT, -1, {"type": "reorder"},
                round_no=self.round_no,
            )
        rng.shuffle(deliveries)
        return deliveries
