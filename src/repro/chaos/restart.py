"""Crash-restart behaviors: the durability layer's chaos counterpart.

:class:`CrashRestartBehavior` drives the full crash -> restart -> rejoin
arc against one victim: fail-stop at the injection round, stay down for
``down_rounds``, then restart through
:meth:`~repro.core.runtime.ReboundSystem.restart_from_durable` -- the
node is rebuilt from its verified snapshot + chained log suffix and
rejoins via the blessing flow, with the BTR monitor holding the system to
the ``r_max = 2*d_max + 4`` recovery bound from the restart round.

:class:`LogTamperBehavior` runs the same arc but corrupts the victim's
on-disk event log while the node is down -- truncation, a record
bit-flip, or a chain splice.  The tamper model is an adversary with write
access to the log *file* (not the operator-held head anchor, and not the
HMAC key).  The restore path must refuse the corrupted suffix: the
detection lands in ``system.durability_tamper_detections`` and the node
rejoins from the verified prefix instead of silently replaying forged
records.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.adversary import AdversaryBehavior


class CrashRestartBehavior(AdversaryBehavior):
    """Fail-stop, stay down ``down_rounds`` rounds, restart from durable
    state, and rejoin (see module docstring)."""

    def __init__(self, down_rounds: int = 3):
        super().__init__()
        self.down_rounds = down_rounds
        self._crash_round: Optional[int] = None
        self.restart_round: Optional[int] = None
        #: the RestoreResult of the restart (None until it happens).
        self.restore_result = None

    def activate(self, system, node_id: int) -> None:
        super().activate(system, node_id)
        system.network.crash_node(node_id)
        # inject_now runs between rounds: the crash silences the node from
        # the round about to run.
        self._crash_round = system.round_no + 1

    def on_round(self, round_no: int) -> None:
        if self.detached or self.restart_round is not None:
            return
        if round_no < self._crash_round + self.down_rounds:
            return
        self.before_restart()
        # restart_from_durable evicts this behavior (detach + removal from
        # the active list) as part of the rejoin.
        self.restore_result = self.system.restart_from_durable(self.node_id)
        self.restart_round = self.system.round_no

    def before_restart(self) -> None:
        """Hook for subclasses: runs while the node is still down, just
        before the durable restore (default: nothing)."""


class LogTamperBehavior(CrashRestartBehavior):
    """Crash-restart with the victim's chained log corrupted on disk.

    Modes:
        * ``truncate`` -- drop the trailing log records (caught by the
          head anchor, which still names the tag the chain must reach);
        * ``bitflip`` -- flip one byte inside a record line (caught by
          the per-record HMAC);
        * ``splice`` -- duplicate an existing record at the tail (caught
          by the prev-digest linking).
    """

    MODES = ("truncate", "bitflip", "splice")

    def __init__(self, mode: str = "truncate", down_rounds: int = 3):
        if mode not in self.MODES:
            raise ValueError(f"unknown tamper mode {mode!r} (have {self.MODES})")
        super().__init__(down_rounds=down_rounds)
        self.mode = mode
        self.tampered = False

    def _log_path(self) -> str:
        from repro.durability.store import LOG_NAME

        return os.path.join(
            self.system.config.durability_dir,
            f"node_{self.node_id:04d}",
            LOG_NAME,
        )

    def before_restart(self) -> None:
        path = self._log_path()
        with open(path) as fh:
            lines = [line for line in fh.read().splitlines() if line.strip()]
        if not lines:
            return
        if self.mode == "truncate":
            lines = lines[:-1]
        elif self.mode == "bitflip":
            target = len(lines) // 2
            raw = bytearray(lines[target].encode())
            # Flip a low bit mid-line: lands inside the JSON body, so
            # either the HMAC breaks or the line stops parsing -- both are
            # detections, never a silent replay.
            raw[len(raw) // 2] ^= 0x01
            lines[target] = raw.decode("utf-8", errors="replace")
        elif self.mode == "splice":
            lines.append(lines[len(lines) // 2])
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        self.tampered = True
