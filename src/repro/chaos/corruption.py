"""Transient in-RAM state corruption (docs/PROTOCOL.md §16.2).

These are *not* adversary behaviors: the victim stays a **correct** node
(it follows the protocol faithfully from whatever state it holds), its
state has simply been damaged -- a cosmic-ray bit flip, a wild pointer, a
bad RAM bank.  That is the fault class of the self-stabilizing BRB work
(PAPERS.md): arbitrary transient corruption of local state, distinct from
both Byzantine nodes (PR 3/5's adversaries, injected via
``ReboundSystem.inject_now`` which marks ground-truth faulty) and PR 8's
*on-disk* tamper behaviors (which attack the durable log between crash and
restart).  Injection goes through ``ReboundSystem.corrupt_now``, which
applies the damage without touching the fault ground truth -- the Req-S
question is precisely whether a correct-but-corrupted node converges back
without ever being condemned.

Each corruption targets exactly one audited field, is applied in one shot
(transient, no lifecycle), and derives every choice from a splitmix64 mix
of its seed so campaign cells replay bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.chaos.impairments import _mix

#: registry: name -> class, for campaign/property parametrization.
CORRUPTIONS: Dict[str, type] = {}


def _register(cls):
    CORRUPTIONS[cls.name] = cls
    return cls


class TransientCorruption:
    """Base: a one-shot, seeded mutation of one node's in-RAM state."""

    name = "corruption"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def apply(self, system, node_id: int) -> Dict[str, Any]:
        """Mutate the node's state; returns a small description dict."""
        raise NotImplementedError


@_register
class EvidenceBitFlip(TransientCorruption):
    """Flip one bit in one evidence-store entry's content digest key.

    The store indexes items by canonical digest; flipping a key bit leaves
    the item intact but unlocatable/incoherent -- the classic silent store
    corruption.  Detected by ``EvidenceSet.corrupted_keys`` (the key no
    longer matches the item's re-derived digest); repaired losslessly by
    re-keying."""

    name = "evidence-bitflip"

    def apply(self, system, node_id: int) -> Dict[str, Any]:
        store = system.nodes[node_id].forwarding.evidence
        keys = sorted(store._items)
        if not keys:
            return {"target": "evidence", "flipped": None}
        victim = keys[_mix(self.seed, node_id, 0xB17F) % len(keys)]
        bit = _mix(self.seed, node_id, 0xF11B) % (len(victim) * 8)
        flipped = bytearray(victim)
        flipped[bit // 8] ^= 1 << (bit % 8)
        flipped = bytes(flipped)
        store._items[flipped] = store._items.pop(victim)
        return {"target": "evidence", "flipped": victim.hex()[:8], "bit": bit}


@_register
class EpochDesync(TransientCorruption):
    """Corrupt the memoized epoch digest so the node advertises a stale/
    wrong evidence root in its aggregates (peers fall back to the probe
    path; PR 5 keeps that accurate, but the node itself is desynced).
    Detected by ``EvidenceSet.digest_cache_coherent``."""

    name = "epoch-desync"

    def apply(self, system, node_id: int) -> Dict[str, Any]:
        store = system.nodes[node_id].forwarding.evidence
        root = bytearray(store.digest())  # materializes the memo
        bit = _mix(self.seed, node_id, 0xE90C) % (len(root) * 8)
        root[bit // 8] ^= 1 << (bit % 8)
        store._digest_cache = bytes(root)
        return {"target": "epoch", "bit": bit}


@_register
class ModePointerScramble(TransientCorruption):
    """Point ``current_schedule``/``current_scenario`` at a different tree
    entry.  The node now *reports and compares* against the wrong mode --
    future adoptions short-circuit against a pointer that never matches
    the tree lookup.  Detected by the auditor's mode-pointer invariant
    (``schedule_for(fault_pattern)`` disagrees with the pointer)."""

    name = "mode-scramble"

    def apply(self, system, node_id: int) -> Dict[str, Any]:
        node = system.nodes[node_id]
        tree = node.mode_tree
        correct = tree.schedule_for(node.fault_pattern)
        scenarios = [
            s for s in sorted(
                tree.schedules, key=lambda s: (s.fault_count, sorted(s.nodes))
            )
            if tree.schedules[s] != correct
        ]
        if not scenarios:
            return {"target": "mode", "scrambled": None}
        wrong = scenarios[_mix(self.seed, node_id, 0x5C8A) % len(scenarios)]
        node.current_scenario = wrong
        node.current_schedule = tree.schedules[wrong]
        return {"target": "mode", "scrambled": sorted(wrong.nodes)}


@_register
class QuotaLedgerCorrupt(TransientCorruption):
    """Garbage the admission-quota ledger: scramble the derived caps,
    negate the charge counters, and pollute the suspect set with a
    non-controller id.  Detected by ``AdmissionQuotas.ledger_issues``
    (every field is derivable or bounded by construction)."""

    name = "quota-corrupt"

    def apply(self, system, node_id: int) -> Dict[str, Any]:
        quotas = system.nodes[node_id].forwarding.quotas
        if quotas is None:
            return {"target": "quotas", "skipped": "quotas disabled"}
        mix = _mix(self.seed, node_id, 0x0_07A)
        for kind in sorted(quotas.caps):
            quotas.caps[kind] = (quotas.caps[kind] * (mix % 7)) // 3
        quotas.total_charged = -(quotas.total_charged + 1)
        bogus = max(system.topology.controllers) + 1 + (mix % 3)
        quotas.suspects.add(bogus)
        quotas._refresh_favored()
        return {"target": "quotas", "bogus_suspect": bogus}
