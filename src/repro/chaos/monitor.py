"""The BTR invariant monitor: the paper's requirements as a per-round oracle.

:class:`BTRMonitor` attaches to :meth:`ReboundSystem.run_round` (via
``system.attach_monitor``) and checks, every round:

* **Req. 1 -- bounded detection.**  Every observable fault activation
  (an injected adversary, a cut link, or an applied lossy impairment) is
  reflected in some correct node's failure pattern within ``d_max`` rounds
  of activation.
* **Req. 2 -- bounded recovery.**  Within ``r_max`` rounds of the *last*
  fault activation, all correct controllers agree on a mode whose
  placements exclude every faulty (or environment-silenced) node.
* **Req. 3 -- accuracy.**  Two layers:

  - *hard* (checked in every environment, however hostile): the verifiable
    evidence set -- proofs of misbehavior -- never accuses a correct node;
  - *inference* (checked only in-budget): no correct node's normalized
    failure pattern condemns a correct controller.  Out of budget, the
    LFD fault-budget inference may legitimately overflow; the runtime's
    ``budget_exceeded`` signal covers that case instead.

* **Structural invariants.**  Each node's current mode is exactly its mode
  tree's answer for its local evidence (no desync between evidence and
  schedule), and once recovered, correct nodes never diverge again without
  a new fault event.

Violations are typed :class:`InvariantViolation`\\ s carrying a minimized
repro dict (topology seed, scenario, impairment plan, round) so a failing
campaign cell can be replayed exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import recorder as _flight

#: trailing-window size embedded in violation repro dicts.  Bounded so a
#: campaign's BENCH report stays small even when every equivocate cell
#: carries its (tagged) violations.
TRACE_TAIL_EVENTS = 96


class InvariantViolation(AssertionError):
    """Base class; ``repro`` holds everything needed to replay the run."""

    kind = "invariant"

    def __init__(self, message: str, repro: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.repro = dict(repro or {})

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "message": str(self), "repro": self.repro}


class AccuracyViolation(InvariantViolation):
    """Req. 3: evidence (or in-budget inference) condemned a correct node."""

    kind = "accuracy"


class DetectionTimeoutViolation(InvariantViolation):
    """Req. 1: an observable fault went undetected past ``d_max``."""

    kind = "detection"


class RecoveryTimeoutViolation(InvariantViolation):
    """Req. 2: the system failed to converge within ``r_max``."""

    kind = "recovery"


class StructuralViolation(InvariantViolation):
    """Mode census inconsistent with local evidence, or post-convergence
    divergence without a new fault event."""

    kind = "structural"


class StabilizationViolation(InvariantViolation):
    """Req-S: a divergence the state auditor detected stayed unresolved
    past the documented convergence bound (PROTOCOL.md §16.3)."""

    kind = "stabilization"


class MemoryBoundViolation(InvariantViolation):
    """A correct node's adversary-growable state exceeded its admission
    cap (evidence store, heartbeat store, Rule B suspicions, or pending
    audit buffers) -- the quota layer failed to bound memory."""

    kind = "memory"


class BTRMonitor:
    """Per-round checker of the BTR requirements (see module docstring).

    Args:
        d_max: detection bound in rounds; defaults to the system's
            resolved ``config.d_max``.
        r_max: recovery bound in rounds after the last fault activation;
            defaults to ``2 * d_max + 4``.
        in_budget: whether the environment (adversary + impairments) fits
            the deployment's fault budget.  Out-of-budget runs only arm
            the hard-accuracy and structural-lookup checks.
        require_detection: arm the Req. 1 deadline.  Disable for faults
            with no observable effect (paper Req. 1 explicitly excludes
            those) -- e.g. a corrupted output nobody consumes.
        record_only: collect violations in :attr:`violations` instead of
            raising them (campaign mode).
        context: merged into every violation's repro dict (topology seed,
            scenario name, impairment plan, ...).
    """

    def __init__(
        self,
        d_max: Optional[int] = None,
        r_max: Optional[int] = None,
        in_budget: bool = True,
        require_detection: bool = True,
        record_only: bool = False,
        context: Optional[Dict[str, Any]] = None,
    ):
        self.d_max = d_max
        self.r_max = r_max
        self.in_budget = in_budget
        self.require_detection = require_detection
        self.record_only = record_only
        self.context = dict(context or {})
        self.violations: List[InvariantViolation] = []
        # Fault-activation tracking (element -> activation round).
        self._activations: Dict[Any, int] = {}
        self._known_faulty: Set[int] = set()
        self._known_links: Set[Tuple[int, int]] = set()
        self._reported: Set[Tuple[str, Any]] = set()
        self.detection_round: Optional[int] = None
        self.recovery_round: Optional[int] = None
        self._event_count = 0
        self._cycle_converged: Optional[int] = None
        #: node -> latest grace-opening round (durable restart or auditor
        #: resync); Req. 3 inference checks excuse condemnations of these
        #: nodes for ``d_max + 2`` rounds (see :meth:`note_grace`).
        self._graces: Dict[int, int] = {}
        #: node -> first round its mode/lookup went inconsistent (armed
        #: only while stabilization is on; see _check_structural_lookup).
        self._lookup_bad_since: Dict[int, int] = {}
        self._open_divergences = 0

    # -- plumbing ------------------------------------------------------------

    def _emit(self, violation: InvariantViolation, key: Tuple[str, Any]) -> None:
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(violation)
        if not self.record_only:
            raise violation

    def _repro(self, system, **extra: Any) -> Dict[str, Any]:
        repro = dict(self.context)
        repro["round"] = system.round_no
        network = system.network
        plan = getattr(network, "plan", None)
        if plan is not None and "plan" not in repro:
            repro["plan"] = plan.as_dict()
        flight = _flight.active
        if flight is not None:
            # The trailing event window: what the protocol was doing when
            # the invariant broke, replayable through repro.obs.timeline.
            repro["trace_tail"] = flight.tail(TRACE_TAIL_EVENTS)
        repro.update(extra)
        return repro

    # -- fault bookkeeping -----------------------------------------------------

    def _refresh_activations(self, system) -> None:
        r = system.round_no
        for node in system.true_faulty_nodes - self._known_faulty:
            self._activations[("node", node)] = r
            self._known_faulty.add(node)
        for link in set(system.true_failed_links) - self._known_links:
            self._activations[("link", tuple(link))] = r
            self._known_links.add(tuple(link))
        stats = getattr(system.network, "chaos_stats", None)
        if stats is not None:
            for element, first in stats.first_impact_by_element.items():
                if isinstance(element, tuple):
                    key = ("env-link", element)
                else:
                    key = ("env-node", element)
                self._activations.setdefault(key, first)

    def note_restart(self, node_id: int, round_no: int) -> None:
        """Restart-aware Req. 2 accounting: a durable crash-restart-rejoin
        (``ReboundSystem.restart_from_durable``) is a fresh fault event.

        The rejoin itself is operator-initiated and operator-visible, so
        the Req. 1 detection deadline does not apply (the activation is
        registered pre-detected); what must still hold is Req. 2 -- all
        correct nodes, the rejoined one included, converge within
        ``r_max`` rounds of the restart.  Keying by (node, round) lets a
        node restart more than once, each opening its own window.
        """
        element = ("restart", (node_id, round_no))
        self._activations[element] = round_no
        self._reported.add(("detected", element))
        self.note_grace(node_id, round_no)

    def note_repair(self, node_id: int, round_no: int) -> None:
        """Operator repair+bless accounting (``repair_and_bless``).

        The repair is a fresh, pre-detected fault event: re-admission of
        the repaired node must converge within ``r_max`` like any other
        recovery.  Forgetting the node in ``_known_faulty`` lets a later
        *re*-compromise of the same node register as its own activation
        (the compromise/bless/re-compromise churn cycle), and the shared
        grace window excuses peers that still hold unabsolved accusations
        while the blessing floods."""
        element = ("repair", (node_id, round_no))
        self._activations[element] = round_no
        self._reported.add(("detected", element))
        self._known_faulty.discard(node_id)
        self.note_grace(node_id, round_no)

    def note_grace(self, node_id: int, round_no: int) -> None:
        """Open the shared accusation-grace window for ``node_id``.

        Used by both rejoin paths: a durable crash-restart-rejoin
        (:meth:`note_restart`) and a state-auditor resync
        (:meth:`note_resync`).  In both, the node's pre-event evidence
        legitimately keeps condemning it until its fresh state floods (at
        most ``d_max`` rounds, plus the Rule-A suspension), so Req. 3
        inference checks excuse it for ``d_max + 2`` rounds."""
        self._graces[node_id] = round_no

    def note_resync(self, node_id: int, round_no: int) -> None:
        """A state auditor resynced ``node_id`` (PROTOCOL.md §16.4).

        Unlike a restart this is *not* a new fault activation -- the node
        never left the network and no Req. 2 window reopens; it only
        borrows the shared grace window so Rule B coverage checks do not
        condemn a node mid-resync."""
        self.note_grace(node_id, round_no)

    def _in_grace(self, system, d_max: int) -> Set[int]:
        return {
            node
            for node, opened in self._graces.items()
            if system.round_no <= opened + d_max + 2
        }

    def _env_faulted_nodes(self, system) -> Set[int]:
        stats = getattr(system.network, "chaos_stats", None)
        if stats is None:
            return set()
        return set(stats.impacted_nodes)

    def _correct_set(self, system) -> Set[int]:
        return (
            set(system.topology.controllers)
            - system.true_faulty_nodes
            - self._env_faulted_nodes(system)
        )

    def _resolve_bounds(self, system) -> Tuple[int, int]:
        d_max = self.d_max if self.d_max is not None else system.config.d_max
        r_max = self.r_max if self.r_max is not None else 2 * d_max + 4
        return d_max, r_max

    # -- the oracle ------------------------------------------------------------

    def observe(self, system) -> None:
        """Run every armed invariant check against the round that just
        executed.  Called by ``ReboundSystem.run_round``."""
        self._refresh_activations(system)
        correct = self._correct_set(system)
        self._check_hard_accuracy(system, correct)
        self._check_structural_lookup(system, correct)
        self._check_memory_bounds(system, correct)
        self._check_stabilization(system, correct)
        if not self.in_budget:
            return
        self._check_inference_accuracy(system, correct)
        d_max, r_max = self._resolve_bounds(system)
        if self.require_detection:
            self._check_detection(system, correct, d_max)
        self._check_recovery(system, correct, r_max)

    # Req. 3, hard layer: PoMs never accuse a correct node.  A node the
    # operator just repaired gets the shared grace window: until its
    # blessing floods (at most d_max rounds), peers legitimately still
    # hold unabsolved PoMs from the compromise that was just repaired.
    def _check_hard_accuracy(self, system, correct: Set[int]) -> None:
        d_max, _ = self._resolve_bounds(system)
        in_grace = self._in_grace(system, d_max)
        for node_id in correct:
            accused = system.nodes[node_id].forwarding.evidence.accused_nodes()
            bad = accused & correct - in_grace
            if bad:
                self._emit(
                    AccuracyViolation(
                        f"evidence at node {node_id} accuses correct "
                        f"node(s) {sorted(bad)} via PoM",
                        self._repro(system, observer=node_id,
                                    condemned=sorted(bad), layer="evidence"),
                    ),
                    ("accuracy-evidence", (node_id, tuple(sorted(bad)))),
                )

    # Req. 3, inference layer: normalized patterns stay clean in-budget.
    # A just-restarted node gets a bounded grace window: until its blessing
    # floods (at most d_max rounds, plus the Rule-A suspension), peers
    # legitimately still condemn it from pre-restart evidence.
    def _check_inference_accuracy(self, system, correct: Set[int]) -> None:
        d_max, _ = self._resolve_bounds(system)
        in_grace = self._in_grace(system, d_max)
        for node_id in correct:
            pattern = system.nodes[node_id].fault_pattern
            bad = pattern.nodes & correct - in_grace
            if bad:
                self._emit(
                    AccuracyViolation(
                        f"failure pattern at node {node_id} condemns correct "
                        f"node(s) {sorted(bad)} (fault-budget inference)",
                        self._repro(system, observer=node_id,
                                    condemned=sorted(bad), layer="inference"),
                    ),
                    ("accuracy-inference", (node_id, tuple(sorted(bad)))),
                )

    def _detected(self, system, correct: Set[int], element) -> bool:
        kind, target = element
        for node_id in correct:
            pattern = system.nodes[node_id].fault_pattern
            if kind in ("node", "env-node"):
                if target in pattern.nodes:
                    return True
                if any(target in link for link in pattern.links):
                    return True
            else:
                link = tuple(target)
                if link in pattern.links:
                    return True
                if set(link) & pattern.nodes:
                    return True
        return False

    # Req. 1: bounded detection of every observable activation.
    def _check_detection(self, system, correct: Set[int], d_max: int) -> None:
        r = system.round_no
        for element, activated in self._activations.items():
            key = ("detection", element)
            if key in self._reported:
                continue
            if ("detected", element) in self._reported:
                continue
            if self._detected(system, correct, element):
                self._reported.add(("detected", element))
                if self.detection_round is None:
                    self.detection_round = r
                continue
            if r > activated + d_max:
                self._emit(
                    DetectionTimeoutViolation(
                        f"{element[0]} fault {element[1]} activated at round "
                        f"{activated} still undetected at round {r} "
                        f"(d_max={d_max})",
                        self._repro(system, element=list(map(str, element)),
                                    activated=activated, d_max=d_max),
                    ),
                    key,
                )

    # Req. 2: bounded recovery after the last activation.  Recovered means:
    # every observable activation is reflected in the evidence, all correct
    # nodes agree on the mode, and the agreed schedules place no task on a
    # controller they themselves declare failed.  Transient divergence
    # *inside* the r_max window (evidence still in flight) is legal; past
    # the deadline, never-converged is a recovery timeout and
    # converged-then-regressed (with no new fault event) is structural.
    def _check_recovery(self, system, correct: Set[int], r_max: int) -> None:
        if not self._activations:
            return
        r = system.round_no
        last_event = max(self._activations.values())
        deadline = last_event + r_max
        # A transient corruption is a fault event for recovery-cycle
        # purposes: the victim's mode pointer may legitimately diverge
        # until the audit tick repairs it, so its cycle runs on the Req-S
        # convergence bound rather than r_max.
        corruptions = getattr(system, "transient_corruptions", ())
        if corruptions:
            from repro.stabilize.auditor import convergence_bound

            last_corrupt = max(c["round"] for c in corruptions)
            last_event = max(last_event, last_corrupt)
            deadline = max(
                deadline,
                last_corrupt
                + convergence_bound(
                    system.config.audit_interval, system.config.d_max
                ),
            )
        if self._event_count != len(self._activations) + len(corruptions):
            # A new fault event opens a fresh convergence cycle.
            self._event_count = len(self._activations) + len(corruptions)
            self._cycle_converged = None
        agreed = system.schedules_agree()
        detected_all = (not self.require_detection) or all(
            ("detected", element) in self._reported
            for element in self._activations
        )
        placements_clean = True
        for node_id in correct:
            schedule = system.nodes[node_id].current_schedule
            if schedule is None or any(
                host in schedule.failed_nodes
                for host in schedule.placements.values()
            ):
                placements_clean = False
                break
        recovered = agreed and detected_all and placements_clean
        if recovered:
            if self.recovery_round is None:
                self.recovery_round = r
            if self._cycle_converged is None:
                self._cycle_converged = r
        if r <= deadline or recovered:
            return
        if self._cycle_converged is not None:
            self._emit(
                StructuralViolation(
                    f"schedules diverged at round {r} after convergence at "
                    f"round {self._cycle_converged} with no new fault event",
                    self._repro(system, converged_at=self._cycle_converged,
                                last_event=last_event),
                ),
                ("stability", last_event),
            )
            return
        detail = []
        if not agreed:
            detail.append("correct nodes disagree on the mode")
        if not detected_all:
            detail.append("an activation is still unreflected in evidence")
        if not placements_clean:
            detail.append("placements include declared-failed nodes")
        self._emit(
            RecoveryTimeoutViolation(
                f"not recovered by round {r} (last fault event at "
                f"{last_event}, r_max={r_max}): " + "; ".join(detail),
                self._repro(system, last_event=last_event, r_max=r_max,
                            agreed=agreed, detected_all=detected_all,
                            placements_clean=placements_clean),
            ),
            ("recovery", last_event),
        )

    # Memory: adversary-growable state at every correct node stays under
    # its cap, every round, whatever the environment does.  Armed whenever
    # the quota layer is on (in- and out-of-budget alike: memory bounds,
    # like hard accuracy, must survive arbitrarily hostile environments).
    def _check_memory_bounds(self, system, correct: Set[int]) -> None:
        config = system.config
        if not getattr(config, "quotas_enabled", False):
            return
        from repro.core.quotas import (
            evidence_item_cap,
            heartbeat_record_cap,
        )

        d_max = config.d_max
        if d_max is None:
            return
        n = len(system.topology.controllers)
        ev_cap = evidence_item_cap(n, d_max)
        hb_cap = heartbeat_record_cap(n, d_max)
        for node_id in correct:
            fwd = system.nodes[node_id].forwarding
            checks = [("evidence", len(fwd.evidence), ev_cap)]
            if config.expiry_optimization:
                checks.append(("heartbeat-store", len(fwd.store), hb_cap))
            checks.append(
                ("rule-b-pending", len(fwd._pending_rule_b), n)
            )
            auditing = system.nodes[node_id].auditing
            if auditing.pending_cap is not None:
                for (task_id, copy_idx), rep in auditing._replicas.items():
                    for name, buf in (
                        ("bundles", rep.bundles),
                        ("auths", rep.auths),
                        ("xrep-digests", rep.peer_digests),
                    ):
                        checks.append((
                            f"audit-{name}[{task_id},{copy_idx}]",
                            len(buf),
                            auditing.pending_cap,
                        ))
            for store, size, cap in checks:
                if size > cap:
                    self._emit(
                        MemoryBoundViolation(
                            f"{store} at node {node_id} holds {size} "
                            f"entries, cap {cap}",
                            self._repro(system, observer=node_id,
                                        store=store, size=size, cap=cap),
                        ),
                        ("memory", (node_id, store)),
                    )

    # Structural: each node's mode is exactly its evidence's mode-tree answer.
    # With stabilization on, a transiently corrupted mode pointer is exactly
    # what the auditor exists to fix, so the violation only fires if the
    # inconsistency outlives the Req-S convergence bound; with stabilization
    # off the bound is zero and the check keeps its original semantics.
    def _check_structural_lookup(self, system, correct: Set[int]) -> None:
        grace = 0
        if getattr(system.config, "stabilize_enabled", False):
            from repro.stabilize.auditor import convergence_bound

            grace = convergence_bound(
                system.config.audit_interval, system.config.d_max
            )
        r = system.round_no
        for node_id in correct:
            node = system.nodes[node_id]
            expected = system.mode_tree.schedule_for(node.fault_pattern)
            if node.current_schedule == expected:
                self._lookup_bad_since.pop(node_id, None)
                continue
            first_bad = self._lookup_bad_since.setdefault(node_id, r)
            if r - first_bad < grace:
                continue
            self._emit(
                StructuralViolation(
                    f"node {node_id} runs a mode inconsistent with its "
                    f"own evidence (pattern {node.fault_pattern})",
                    self._repro(system, observer=node_id),
                ),
                ("lookup", node_id),
            )

    # Req-S: every divergence the state auditor detects resolves within the
    # documented convergence bound.  Armed whenever auditors run (in- and
    # out-of-budget alike: self-stabilization, like hard accuracy, must
    # survive any environment).
    def _check_stabilization(self, system, correct: Set[int]) -> None:
        auditors = getattr(system, "auditors", None)
        if not auditors:
            self._open_divergences = 0
            return
        from repro.stabilize.auditor import convergence_bound

        bound = convergence_bound(
            system.config.audit_interval, system.config.d_max
        )
        r = system.round_no
        open_count = 0
        for node_id, auditor in sorted(auditors.items()):
            for record in auditor.divergences:
                if record["resolved_round"] is not None:
                    continue
                open_count += 1
                if node_id not in correct:
                    continue  # a since-compromised node is the budget's problem
                if r - record["detected_round"] <= bound:
                    continue
                self._emit(
                    StabilizationViolation(
                        f"node {node_id} diverged at round "
                        f"{record['detected_round']} "
                        f"({', '.join(record['issues'])}) and is still not "
                        f"quorum-consistent at round {r} (bound {bound})",
                        self._repro(system, observer=node_id,
                                    detected=record["detected_round"],
                                    issues=list(record["issues"]),
                                    bound=bound),
                    ),
                    ("stabilization", (node_id, record["detected_round"])),
                )
        self._open_divergences = open_count

    # -- reporting -------------------------------------------------------------

    #: recovery phases in order; ``gauges()["phase"]`` is an index into
    #: this tuple (numeric so it can ride a metrics time-series).
    PHASES = ("idle", "detecting", "recovering", "recovered")

    def current_phase(self) -> str:
        """Where the system sits in the detect -> recover pipeline.

        ``idle``: no fault activation on record.  ``detecting``: some
        activation is not yet reflected in any correct node's evidence
        (Req. 1 window open).  ``recovering``: everything is detected but
        the current convergence cycle has not closed (Req. 2 window
        open).  ``recovered``: the cycle converged.
        """
        if not self._activations:
            return "idle"
        if any(
            ("detected", element) not in self._reported
            for element in self._activations
        ):
            return "detecting"
        if self._cycle_converged is None:
            return "recovering"
        return "recovered"

    def gauges(self) -> Dict[str, float]:
        """Per-round numeric gauges for the metrics time-series (absent
        rounds read as -1 so the series stays purely numeric)."""
        detection = self.detection_round
        recovery = self.recovery_round
        return {
            "phase": float(self.PHASES.index(self.current_phase())),
            "activations": float(len(self._activations)),
            "violations": float(len(self.violations)),
            "detection_round": float(-1 if detection is None else detection),
            "recovery_round": float(-1 if recovery is None else recovery),
            "open_divergences": float(self._open_divergences),
        }

    def census(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind] = out.get(violation.kind, 0) + 1
        return out
