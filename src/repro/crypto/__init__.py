"""Cryptographic substrate for REBOUND.

Everything here is implemented from scratch (no external crypto libraries):

* :mod:`repro.crypto.primes` -- Miller-Rabin primality testing and prime
  generation, used by the RSA implementation.
* :mod:`repro.crypto.rsa` -- textbook RSA-FDH signatures over SHA-256
  (the paper's prototype uses 512-bit RSA with key rotation, see paper S4).
* :mod:`repro.crypto.multisig` -- a BLS-style multisignature with the exact
  aggregation algebra of Boldyreva's scheme, instantiated in an insecure
  "toy" group (see DESIGN.md S4 for the substitution rationale).
* :mod:`repro.crypto.rotation` -- periodic weak-key rotation signed by a
  strong permanent key (paper S4, "Key rotation").
* :mod:`repro.crypto.cost_model` -- counts cryptographic operations and
  attributes the paper's measured per-operation timings so that simulated
  CPU costs match the evaluation's cost accounting.
* :mod:`repro.crypto.verify_cache` -- process-wide bounded LRU cache of
  verification outcomes (simulator fast path; see docs/PROTOCOL.md).
"""

from repro.crypto.hashing import Authenticator, hash_bytes, hash_hex
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSASignature
from repro.crypto.multisig import (
    MultisigGroup,
    MultisigKeyPair,
    MultisigPublicKey,
    Multisignature,
    verify_multisig_values_batch,
)
from repro.crypto.rotation import KeyRotationManager, RotatingKey
from repro.crypto.cost_model import CryptoCostModel, CryptoCounters
from repro.crypto.verify_cache import VerificationCache

__all__ = [
    "Authenticator",
    "hash_bytes",
    "hash_hex",
    "RSAKeyPair",
    "RSAPublicKey",
    "RSASignature",
    "MultisigGroup",
    "MultisigKeyPair",
    "MultisigPublicKey",
    "Multisignature",
    "verify_multisig_values_batch",
    "KeyRotationManager",
    "RotatingKey",
    "CryptoCostModel",
    "CryptoCounters",
    "VerificationCache",
]
