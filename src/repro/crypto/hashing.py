"""Hashing helpers and authenticators.

REBOUND's auditing layer (paper S3.8) structures messages so that the
signature covers a small, detachable *authenticator* containing a hash of
the message; the authenticator can travel in place of the full message
whenever the contents are not needed (e.g. on the beta->rho paths that carry
a downstream task's view of tau's output back to tau's replicas).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def hash_bytes(*parts: bytes) -> bytes:
    """Return the SHA-256 digest of the concatenation of ``parts``.

    Each part is length-prefixed before hashing so that the encoding is
    injective (``hash_bytes(b"ab", b"c") != hash_bytes(b"a", b"bc")``).
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_hex(*parts: bytes) -> str:
    """Hex form of :func:`hash_bytes`, convenient for logging and dict keys."""
    return hash_bytes(*parts).hex()


def hash_to_int(data: bytes, modulus: int) -> int:
    """Hash ``data`` to an integer in ``[1, modulus)`` (full-domain hash).

    Used by both the RSA-FDH and the multisignature scheme.  The digest is
    expanded with counter-mode SHA-256 until it has enough bits, then reduced
    modulo ``modulus``; the result is forced nonzero.
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1")
    nbytes = (modulus.bit_length() + 7) // 8 + 8
    buf = b""
    counter = 0
    while len(buf) < nbytes:
        buf += hashlib.sha256(counter.to_bytes(4, "big") + data).digest()
        counter += 1
    value = int.from_bytes(buf[:nbytes], "big") % modulus
    return value if value != 0 else 1


@dataclass(frozen=True)
class Authenticator:
    """A signed, detachable digest of a message (paper S3.8).

    Attributes:
        sender: identifier of the node that produced the message.
        round: round number in which the message was produced.
        path_id: identifier of the path the message travelled on.
        digest: SHA-256 digest of the message payload.
        signature: the sender's signature over (sender, round, path_id,
            digest); stored as opaque bytes so the authenticator is agnostic
            to the signature scheme in use.
    """

    sender: int
    round: int
    path_id: int
    digest: bytes
    signature: bytes = b""

    def signed_portion(self) -> bytes:
        """The byte string that the signature must cover."""
        return hash_bytes(
            self.sender.to_bytes(8, "big", signed=False),
            self.round.to_bytes(8, "big", signed=False),
            self.path_id.to_bytes(8, "big", signed=False),
            self.digest,
        )

    def with_signature(self, signature: bytes) -> "Authenticator":
        """Return a copy of this authenticator carrying ``signature``."""
        return Authenticator(
            sender=self.sender,
            round=self.round,
            path_id=self.path_id,
            digest=self.digest,
            signature=signature,
        )

    def matches_payload(self, payload: bytes) -> bool:
        """True if this authenticator's digest matches ``payload``."""
        return self.digest == hash_bytes(payload)


def make_authenticator(
    sender: int, round_no: int, path_id: int, payload: bytes
) -> Authenticator:
    """Build an (unsigned) authenticator for ``payload``."""
    return Authenticator(
        sender=sender, round=round_no, path_id=path_id, digest=hash_bytes(payload)
    )
