"""Cost accounting for cryptographic operations.

The paper's evaluation reports *counts* of cryptographic operations per
round (Fig. 5c, Fig. 8b) and converts them to CPU time using measured
per-operation costs (S4 "Parameters"; S4.1 for the Raspberry Pi platform).
We reproduce that methodology: every signing/verification site in the
protocol stack increments counters on a :class:`CryptoCounters` instance,
and :class:`CryptoCostModel` attributes per-operation timings.

Two calibrated profiles are provided:

* ``x86`` -- the simulation platform of S4: RSA-512 sign 1.17 ms / verify
  1.18 ms; multisig combine 3.34 us; public-key combine 3.28 us.
* ``rpi4`` -- the testbed platform of S4.1: RSA-512 sign ~750 us / verify
  ~49 us.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CryptoCounters:
    """Mutable per-node (or per-system) operation counters."""

    rsa_sign: int = 0
    rsa_verify: int = 0
    ms_sign: int = 0
    ms_verify: int = 0
    ms_combine_sig: int = 0
    ms_combine_key: int = 0

    def merge(self, other: "CryptoCounters") -> None:
        self.rsa_sign += other.rsa_sign
        self.rsa_verify += other.rsa_verify
        self.ms_sign += other.ms_sign
        self.ms_verify += other.ms_verify
        self.ms_combine_sig += other.ms_combine_sig
        self.ms_combine_key += other.ms_combine_key

    def total_signatures(self) -> int:
        return self.rsa_sign + self.ms_sign

    def total_verifications(self) -> int:
        return self.rsa_verify + self.ms_verify

    def as_dict(self) -> Dict[str, int]:
        return {
            "rsa_sign": self.rsa_sign,
            "rsa_verify": self.rsa_verify,
            "ms_sign": self.ms_sign,
            "ms_verify": self.ms_verify,
            "ms_combine_sig": self.ms_combine_sig,
            "ms_combine_key": self.ms_combine_key,
        }

    def copy(self) -> "CryptoCounters":
        return CryptoCounters(**self.as_dict())

    def diff(self, earlier: "CryptoCounters") -> "CryptoCounters":
        """Counters accumulated since ``earlier`` (a snapshot of self)."""
        return CryptoCounters(
            rsa_sign=self.rsa_sign - earlier.rsa_sign,
            rsa_verify=self.rsa_verify - earlier.rsa_verify,
            ms_sign=self.ms_sign - earlier.ms_sign,
            ms_verify=self.ms_verify - earlier.ms_verify,
            ms_combine_sig=self.ms_combine_sig - earlier.ms_combine_sig,
            ms_combine_key=self.ms_combine_key - earlier.ms_combine_key,
        )


# Per-operation costs in seconds.
_PROFILES: Dict[str, Dict[str, float]] = {
    # Paper S4 "Parameters" (simulation platform).
    "x86": {
        "rsa_sign": 1.17e-3,
        "rsa_verify": 1.18e-3,
        "ms_sign": 1.17e-3,
        "ms_verify": 1.18e-3,
        "ms_combine_sig": 3.34e-6,
        "ms_combine_key": 3.28e-6,
    },
    # Paper S4.1 (Raspberry Pi 4 testbed, RSA-512).
    "rpi4": {
        "rsa_sign": 750e-6,
        "rsa_verify": 49e-6,
        "ms_sign": 750e-6,
        "ms_verify": 750e-6,
        "ms_combine_sig": 10e-6,
        "ms_combine_key": 10e-6,
    },
}


@dataclass(frozen=True)
class CryptoCostModel:
    """Attributes wall-clock cost to counted operations.

    Attributes:
        profile: one of ``"x86"`` or ``"rpi4"`` (see module docstring), or a
            custom name previously registered via :meth:`register_profile`.
    """

    profile: str = "x86"

    def costs(self) -> Dict[str, float]:
        try:
            return _PROFILES[self.profile]
        except KeyError:
            raise ValueError(f"unknown crypto cost profile: {self.profile!r}")

    def cpu_seconds(self, counters: CryptoCounters) -> float:
        """Total CPU time attributed to ``counters`` under this profile."""
        costs = self.costs()
        return (
            counters.rsa_sign * costs["rsa_sign"]
            + counters.rsa_verify * costs["rsa_verify"]
            + counters.ms_sign * costs["ms_sign"]
            + counters.ms_verify * costs["ms_verify"]
            + counters.ms_combine_sig * costs["ms_combine_sig"]
            + counters.ms_combine_key * costs["ms_combine_key"]
        )

    @staticmethod
    def register_profile(name: str, costs: Dict[str, float]) -> None:
        """Register a custom cost profile (e.g. for a different CPU)."""
        required = set(_PROFILES["x86"])
        missing = required - set(costs)
        if missing:
            raise ValueError(f"profile missing cost entries: {sorted(missing)}")
        _PROFILES[name] = dict(costs)
